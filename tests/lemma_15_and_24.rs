//! Executable checks for two structural lemmas not covered by the other
//! suites:
//!
//! * **Lemma 15** (§7.3): a faulty process appears in the listen sets of
//!   honest processes in at most two *consecutive* phases of
//!   Algorithm 5's block schedule.
//! * **Lemma 24** (§8.3): with `2k+1 ≤ n−t−k`, the implicit committee
//!   `C` of Algorithm 7 satisfies `|C| ≤ 3k+1`, `|C∩F| ≤ k`, and
//!   `|C∩H| ≥ k+1`.

use ba_core::{misclassified_by, pi_order, truth_vector, BitVec};
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The phases in which `id` falls inside some order's phase block.
fn phases_containing(orders: &[Vec<ProcessId>], id: ProcessId, k: usize) -> BTreeSet<usize> {
    let block = 3 * k + 1;
    let phases = 2 * k + 1;
    let mut out = BTreeSet::new();
    for order in orders {
        for phase in 0..phases {
            if order[block * phase..block * (phase + 1)].contains(&id) {
                out.insert(phase);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Lemma 15, checked combinatorially over random classification
    /// vectors whose total misclassification count respects the k bound:
    /// every faulty process's phase-block appearances across all honest
    /// orderings span at most two consecutive phases.
    #[test]
    fn lemma15_faulty_in_at_most_two_consecutive_phases(
        k in 1usize..3,
        faulty_fracs in proptest::collection::btree_set(0usize..1000, 1..6),
        flips in proptest::collection::vec(
            proptest::collection::vec(0usize..1000, 0..2),
            2..5,
        ),
    ) {
        // Size the system so (2k+1)(3k+1) ≤ n − t − k with t = |F|.
        let t = faulty_fracs.len();
        let n = (2 * k + 1) * (3 * k + 1) + t + k + 2;
        // Map sampled fractions into identifier space (dedup may shrink
        // the fault set; that only loosens the premise).
        let faulty: BTreeSet<ProcessId> = faulty_fracs
            .iter()
            .map(|f| ProcessId((f * n / 1000) as u32))
            .collect();
        let truth = truth_vector(n, &faulty);
        // Build honest classification vectors with few flips each.
        let vecs: Vec<BitVec> = flips
            .iter()
            .map(|cols| {
                let mut c = truth.clone();
                for &col in cols {
                    let col = col * n / 1000;
                    let cur = c.get(col);
                    c.set(col, !cur);
                }
                c
            })
            .collect();
        // Lemma 15's premise: k bounds the total misclassification count.
        let k_a: BTreeSet<ProcessId> = vecs
            .iter()
            .flat_map(|c| misclassified_by(c, &faulty))
            .collect();
        prop_assume!(k_a.len() <= k);
        let orders: Vec<Vec<ProcessId>> = vecs.iter().map(pi_order).collect();
        for &fp in &faulty {
            let phases = phases_containing(&orders, fp, k);
            prop_assert!(
                phases.len() <= 2,
                "{fp} appears in phases {phases:?}"
            );
            if phases.len() == 2 {
                let lo = *phases.iter().next().expect("non-empty");
                let hi = *phases.iter().last().expect("non-empty");
                prop_assert_eq!(hi - lo, 1, "{} in non-consecutive phases {:?}", fp, phases);
            }
        }
    }
}

/// Lemma 24, checked white-box on real Algorithm 7 executions: count who
/// obtained a committee certificate.
#[test]
fn lemma24_committee_composition() {
    use ba_auth::AuthBaWithClassification;
    use ba_crypto::Pki;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    for (n, t, k, f) in [
        (10usize, 3usize, 2usize, 2usize),
        (20, 7, 4, 3),
        (40, 13, 8, 6),
    ] {
        assert!(AuthBaWithClassification::condition_holds(n, t, k));
        let pki = Arc::new(Pki::new(n, 5));
        // Ground truth: the first f identifiers are faulty and silent;
        // honest processes use the *trivial* classification (identity
        // order), so every faulty process is misclassified: kA = f ≤ k.
        assert!(f <= k);
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = ProcessId::all(n)
            .skip(f)
            .map(|id| {
                (
                    id,
                    AuthBaWithClassification::new(
                        id,
                        n,
                        t,
                        k,
                        1,
                        Value(3),
                        Arc::clone(&order),
                        Arc::clone(&pki),
                        pki.signing_key(id.0),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement());

        // White-box committee census among honest processes. (Faulty
        // processes are silent here so none of them is certified; the
        // |C∩F| ≤ k bound is exercised adversarially in the E2/E6
        // suites — this test pins the honest-membership bounds.)
        let honest_certified: Vec<ProcessId> = ProcessId::all(n)
            .skip(f)
            .filter(|&id| {
                runner
                    .process(id)
                    .map(|p| p.certificate().is_some())
                    .unwrap_or(false)
            })
            .collect();
        assert!(
            honest_certified.len() > k,
            "n={n}: only {} honest committee members, need ≥ k+1 = {}",
            honest_certified.len(),
            k + 1
        );
        assert!(
            honest_certified.len() <= 3 * k + 1,
            "n={n}: {} certified exceeds |C| ≤ 3k+1",
            honest_certified.len()
        );
        // Certified processes sit within the first 2k+1 priorities plus
        // the k_H drift allowance (Lemma 6); with the identity order and
        // no honest misclassifications: exactly the first 2k+1 ids.
        for id in &honest_certified {
            assert!(
                (id.index()) < 2 * k + 1,
                "n={n}: {id} certified outside the priority prefix"
            );
        }
    }
}
