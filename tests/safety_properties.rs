//! Property-based safety: for *randomly sampled* systems, fault
//! patterns, prediction budgets, placements and adversaries, Agreement
//! and Strong Unanimity must hold in every sampled execution of both
//! pipelines. This is the repository's broadest randomized attack
//! surface.

use ba_predictions::prelude::*;
use ba_workloads::LiarStyle;
use proptest::prelude::*;

fn placement_strategy() -> impl Strategy<Value = ErrorPlacement> {
    prop_oneof![
        Just(ErrorPlacement::Uniform),
        Just(ErrorPlacement::Concentrated),
        Just(ErrorPlacement::MissedFaultsOnly),
        Just(ErrorPlacement::FalseAccusationsOnly),
        Just(ErrorPlacement::TrustedFaults),
    ]
}

fn fault_placement_strategy() -> impl Strategy<Value = FaultPlacement> {
    prop_oneof![
        Just(FaultPlacement::Head),
        Just(FaultPlacement::Tail),
        Just(FaultPlacement::Spread),
        Just(FaultPlacement::Pairs),
    ]
}

fn adversary_strategy() -> impl Strategy<Value = AdversaryKind> {
    prop_oneof![
        Just(AdversaryKind::Silent),
        Just(AdversaryKind::ClassifyLiar(LiarStyle::AllOnes)),
        Just(AdversaryKind::ClassifyLiar(LiarStyle::AllZeros)),
        Just(AdversaryKind::ClassifyLiar(LiarStyle::Inverted)),
        Just(AdversaryKind::ClassifyLiar(LiarStyle::RandomPerRecipient)),
        Just(AdversaryKind::Replay),
        Just(AdversaryKind::Disruptor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn unauth_pipeline_is_always_safe(
        n in 10usize..20,
        t_frac in 1usize..3,
        f_frac in 0usize..=100,
        budget in 0usize..200,
        placement in placement_strategy(),
        fault_placement in fault_placement_strategy(),
        adversary in adversary_strategy(),
        seed in 0u64..1000,
        unanimous in proptest::bool::ANY,
    ) {
        let t = ((n - 1) / 3).min(t_frac + 1).max(1);
        let f = t * f_frac / 100;
        let mut cfg = ExperimentConfig::new(n, t, f, budget, Pipeline::Unauth);
        cfg.placement = placement;
        cfg.fault_placement = fault_placement;
        cfg.adversary = adversary;
        cfg.seed = seed;
        if unanimous {
            cfg.inputs = InputPattern::Unanimous(9);
        }
        let out = cfg.run();
        prop_assert!(out.agreement, "agreement violated");
        prop_assert!(out.rounds.is_some(), "liveness violated");
        if unanimous {
            prop_assert!(out.validity_ok, "strong unanimity violated");
        }
    }

    #[test]
    fn auth_pipeline_is_always_safe(
        n in 8usize..14,
        f_frac in 0usize..=100,
        budget in 0usize..150,
        placement in placement_strategy(),
        fault_placement in fault_placement_strategy(),
        adversary in adversary_strategy(),
        seed in 0u64..1000,
        unanimous in proptest::bool::ANY,
    ) {
        let t = (n - 1) / 2;
        let f = t * f_frac / 100;
        let mut cfg = ExperimentConfig::new(n, t, f, budget, Pipeline::Auth);
        cfg.placement = placement;
        cfg.fault_placement = fault_placement;
        cfg.adversary = adversary;
        cfg.seed = seed;
        if unanimous {
            cfg.inputs = InputPattern::Unanimous(4);
        }
        let out = cfg.run();
        prop_assert!(out.agreement, "agreement violated");
        prop_assert!(out.rounds.is_some(), "liveness violated");
        if unanimous {
            prop_assert!(out.validity_ok, "strong unanimity violated");
        }
    }
}
