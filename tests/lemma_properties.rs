//! Property tests for the paper's numbered lemmas, over randomly
//! generated classification patterns (no protocol execution — these
//! check the combinatorial statements of §6 directly).

use ba_core::{core_of_window, misclassified_by, pi_order, position_in, truth_vector, BitVec};
use ba_sim::ProcessId;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Generates (n, fault set, a classification with some misclassified
/// processes).
fn classification_scenario() -> impl Strategy<Value = (usize, BTreeSet<ProcessId>, Vec<BitVec>)> {
    (8usize..24).prop_flat_map(|n| {
        let t = (n - 1) / 3;
        (
            Just(n),
            proptest::collection::btree_set(0..n as u32, 0..=t),
            proptest::collection::vec(proptest::collection::vec(0..n, 0..4), 1..4),
        )
            .prop_map(|(n, faulty_raw, flips_per_vec)| {
                let faulty: BTreeSet<ProcessId> = faulty_raw.into_iter().map(ProcessId).collect();
                let truth = truth_vector(n, &faulty);
                let vecs: Vec<BitVec> = flips_per_vec
                    .into_iter()
                    .map(|flips| {
                        let mut c = truth.clone();
                        for i in flips {
                            let cur = c.get(i);
                            c.set(i, !cur);
                        }
                        c
                    })
                    .collect();
                (n, faulty, vecs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Lemma 2: a classification misclassifying m processes shifts the
    /// π-position of every properly-classified process by at most m.
    #[test]
    fn lemma2_position_drift((n, faulty, vecs) in classification_scenario()) {
        let truth = truth_vector(n, &faulty);
        let pt = pi_order(&truth);
        for c in &vecs {
            let mis = misclassified_by(c, &faulty);
            let po = pi_order(c);
            for i in 0..n {
                let id = ProcessId(i as u32);
                if mis.contains(&id) {
                    continue;
                }
                let drift = position_in(&po, id).abs_diff(position_in(&pt, id));
                prop_assert!(drift <= mis.len(), "p{i}: drift {drift} > m {}", mis.len());
            }
        }
    }

    /// Corollary 1: a faulty process within the first n − t − k_A
    /// positions of some vector's π-order is misclassified by it.
    #[test]
    fn corollary1_early_faulty_is_misclassified((n, faulty, vecs) in classification_scenario()) {
        let t = (n - 1) / 3;
        let k_a: BTreeSet<ProcessId> = vecs
            .iter()
            .flat_map(|c| misclassified_by(c, &faulty))
            .collect();
        prop_assume!(n > t + k_a.len());
        for c in &vecs {
            let order = pi_order(c);
            let own_mis = misclassified_by(c, &faulty);
            for &fp in &faulty {
                if position_in(&order, fp) < n - t - k_a.len() {
                    prop_assert!(own_mis.contains(&fp));
                }
            }
        }
    }

    /// Lemma 4: two vectors both misclassifying the same faulty process
    /// place it within k_A − 1 positions of each other.
    #[test]
    fn lemma4_shared_faulty_drift((_n, faulty, vecs) in classification_scenario()) {
        prop_assume!(vecs.len() >= 2);
        let k_a: BTreeSet<ProcessId> = vecs
            .iter()
            .flat_map(|c| misclassified_by(c, &faulty))
            .collect();
        for a in 0..vecs.len() {
            for b in (a + 1)..vecs.len() {
                let (ca, cb) = (&vecs[a], &vecs[b]);
                for &fp in &faulty {
                    let both = misclassified_by(ca, &faulty).contains(&fp)
                        && misclassified_by(cb, &faulty).contains(&fp);
                    if both && !k_a.is_empty() {
                        let drift = position_in(&pi_order(ca), fp)
                            .abs_diff(position_in(&pi_order(cb), fp));
                        prop_assert!(drift < k_a.len());
                    }
                }
            }
        }
    }

    /// Lemma 5: any window [lo, hi) with lo + k_A ≤ hi ≤ n − t − k_A
    /// shares a core of ≥ (hi − lo) − k_A identifiers across all vectors,
    /// and (in this regime) the core contains honest processes only.
    #[test]
    fn lemma5_core_window((n, faulty, vecs) in classification_scenario()) {
        let t = (n - 1) / 3;
        let k_a: BTreeSet<ProcessId> = vecs
            .iter()
            .flat_map(|c| misclassified_by(c, &faulty))
            .collect();
        let k = k_a.len();
        prop_assume!(faulty.len() <= t);
        prop_assume!(n > t + 2 * k);
        let orders: Vec<Vec<ProcessId>> = vecs.iter().map(pi_order).collect();
        let hi = n - t - k;
        for lo in [0usize, hi.saturating_sub(2 * k + 1)] {
            if lo + k > hi {
                continue;
            }
            let core = core_of_window(&orders, lo, hi);
            prop_assert!(
                core.len() >= (hi - lo) - k,
                "core {} < {} - {k}",
                core.len(),
                hi - lo
            );
        }
    }
}
