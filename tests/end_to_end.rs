//! End-to-end integration matrix: both pipelines × adversaries ×
//! prediction placements. Safety (Agreement) and Validity (Strong
//! Unanimity under unanimous inputs) must hold in every single cell;
//! liveness must land within the deterministic schedule.

use ba_core::{AuthWrapper, UnauthWrapper};
use ba_predictions::prelude::*;
use ba_workloads::LiarStyle;

fn matrix() -> Vec<ExperimentConfig> {
    let mut cfgs = Vec::new();
    for pipeline in [Pipeline::Unauth, Pipeline::Auth] {
        let (n, t) = match pipeline {
            Pipeline::Unauth => (16usize, 5usize),
            Pipeline::Auth => (12, 5),
            p => unreachable!("the matrix only exercises the wrapper pipelines: {p:?}"),
        };
        for f in [0usize, 2, t] {
            for budget in [0usize, 10, n * n / 2] {
                for adversary in [
                    AdversaryKind::Silent,
                    AdversaryKind::ClassifyLiar(LiarStyle::Inverted),
                    AdversaryKind::Replay,
                    AdversaryKind::Disruptor,
                ] {
                    for placement in [ErrorPlacement::Uniform, ErrorPlacement::TrustedFaults] {
                        let mut cfg = ExperimentConfig::new(n, t, f, budget, pipeline);
                        cfg.adversary = adversary;
                        cfg.placement = placement;
                        cfg.fault_placement = FaultPlacement::Head;
                        cfg.seed = 17;
                        cfgs.push(cfg);
                    }
                }
            }
        }
    }
    cfgs
}

#[test]
fn agreement_and_liveness_across_the_matrix() {
    for cfg in matrix() {
        let out = cfg.run();
        assert!(
            out.agreement,
            "agreement failed: {:?} f={} B={} {:?} {:?}",
            cfg.pipeline, cfg.f, cfg.budget, cfg.adversary, cfg.placement
        );
        assert!(
            out.rounds.is_some(),
            "liveness failed: {:?} f={} B={} {:?}",
            cfg.pipeline,
            cfg.f,
            cfg.budget,
            cfg.adversary
        );
    }
}

#[test]
fn strong_unanimity_across_the_matrix() {
    for mut cfg in matrix() {
        cfg.inputs = InputPattern::Unanimous(77);
        let out = cfg.run();
        assert!(
            out.validity_ok,
            "validity failed: {:?} f={} B={} {:?}",
            cfg.pipeline, cfg.f, cfg.budget, cfg.adversary
        );
    }
}

#[test]
fn rounds_never_exceed_the_deterministic_schedule() {
    for cfg in matrix() {
        let out = cfg.run();
        let bound = match cfg.pipeline {
            Pipeline::Unauth => UnauthWrapper::schedule(cfg.n, cfg.t).total_steps,
            Pipeline::Auth => AuthWrapper::schedule(cfg.n, cfg.t).total_steps,
            p => unreachable!("the matrix only exercises the wrapper pipelines: {p:?}"),
        };
        assert!(
            out.rounds.unwrap_or(u64::MAX) <= bound,
            "{:?}: {} > {}",
            cfg.pipeline,
            out.rounds.unwrap_or(u64::MAX),
            bound
        );
    }
}

#[test]
fn messages_respect_the_dolev_reischuk_floor() {
    // Theorem 14: even perfect predictions cannot beat Ω(n + t²).
    for pipeline in [Pipeline::Unauth, Pipeline::Auth] {
        let (n, t) = (16usize, 5usize);
        let mut cfg = ExperimentConfig::new(n, t, t, 0, pipeline);
        cfg.inputs = InputPattern::Unanimous(3);
        let out = cfg.run();
        assert!(out.messages >= message_lower_bound(n, t));
    }
}

#[test]
fn decisions_are_identical_across_seeds_for_fixed_config() {
    let mut cfg = ExperimentConfig::new(16, 5, 3, 20, Pipeline::Unauth);
    cfg.adversary = AdversaryKind::Disruptor;
    let a = cfg.run();
    let b = cfg.run();
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.messages, b.messages);
}
