//! Edge-of-parameter-space integration tests: minimal systems, zero
//! tolerance, saturated budgets, extreme fault counts, and mid-run
//! crash injection. These are the configurations where off-by-one
//! errors in quorum thresholds, block layouts, and schedule arithmetic
//! would surface.

use ba_core::{AuthWrapper, BitVec, PredictionMatrix, UnauthWrapper};
use ba_crypto::Pki;
use ba_predictions::prelude::*;
use ba_sim::CrashAdversary;
use ba_workloads::UnauthDisruptor;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[test]
fn minimal_unauth_system_n4_t1() {
    // The smallest system with Byzantine tolerance: n = 4, t = 1.
    for f in [0usize, 1] {
        let mut cfg = ExperimentConfig::new(4, 1, f, 4, Pipeline::Unauth);
        cfg.inputs = InputPattern::Unanimous(2);
        let out = cfg.run();
        assert!(out.validity_ok, "n=4 t=1 f={f}");
    }
}

#[test]
fn minimal_auth_system_n3_t1() {
    // Authenticated: n = 3, t = 1 (impossible without signatures).
    for f in [0usize, 1] {
        let mut cfg = ExperimentConfig::new(3, 1, f, 2, Pipeline::Auth);
        cfg.inputs = InputPattern::Unanimous(6);
        let out = cfg.run();
        assert!(out.validity_ok, "n=3 t=1 f={f}");
    }
}

#[test]
fn zero_tolerance_still_terminates() {
    // t = 0: one phase, no faults allowed, trivial agreement.
    for pipeline in [Pipeline::Unauth, Pipeline::Auth] {
        let mut cfg = ExperimentConfig::new(5, 0, 0, 0, pipeline);
        cfg.inputs = InputPattern::Unanimous(1);
        let out = cfg.run();
        assert!(out.validity_ok, "{pipeline:?} t=0");
    }
}

#[test]
fn budget_saturation_beyond_matrix_capacity() {
    // B requested far beyond n² bits: generators must saturate, the
    // wrapper must still agree.
    let mut cfg = ExperimentConfig::new(13, 4, 4, 10_000, Pipeline::Unauth);
    cfg.placement = ErrorPlacement::Concentrated;
    let out = cfg.run();
    assert!(out.agreement);
    assert!(out.b_actual <= 13 * 13);
}

#[test]
fn single_honest_survivor_auth() {
    // n = 3, t = 1, f = 1: two honest remain; n − t = 2 quorums must
    // still be reachable by the two honest processes.
    let mut cfg = ExperimentConfig::new(3, 1, 1, 0, Pipeline::Auth);
    cfg.inputs = InputPattern::Unanimous(9);
    let out = cfg.run();
    assert!(out.validity_ok);
}

#[test]
fn crash_mid_run_after_active_disruption() {
    // Failure injection: the coalition disrupts for 40 rounds, then
    // crashes mid-broadcast (delivering only to low identifiers).
    // Safety and liveness must survive the behavioral switch.
    let n = 16;
    let t = 5;
    let f = 4;
    let faulty: BTreeSet<ProcessId> = (0..f as u32).map(ProcessId).collect();
    let matrix = PredictionMatrix::perfect(n, &faulty);
    let honest: BTreeMap<ProcessId, UnauthWrapper> = ProcessId::all(n)
        .filter(|p| !faulty.contains(p))
        .enumerate()
        .map(|(slot, id)| {
            (
                id,
                UnauthWrapper::new(
                    id,
                    n,
                    t,
                    Value(1 + (slot % 2) as u64),
                    matrix.row(id).clone(),
                ),
            )
        })
        .collect();
    let disruptor = UnauthDisruptor::new(n, t, faulty.iter().copied().collect());
    let adversary = CrashAdversary::new(disruptor, 40, 8);
    let budget = UnauthWrapper::schedule(n, t).total_steps + 4;
    let mut runner = ba_sim::Runner::with_ids(n, honest, adversary);
    let report = runner.run(budget);
    assert!(report.agreement(), "crash-after-disruption broke agreement");
}

#[test]
fn all_zero_and_all_one_predictions_coexist() {
    // Half the honest processes trust everyone, half trust no one — the
    // most divergent prediction split. Classification voting must still
    // produce agreement-compatible orderings.
    let n = 12;
    let t = 3;
    let rows: Vec<BitVec> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                BitVec::ones(n)
            } else {
                BitVec::zeros(n)
            }
        })
        .collect();
    let matrix = PredictionMatrix::from_rows(rows);
    let honest: BTreeMap<ProcessId, UnauthWrapper> = ProcessId::all(n)
        .take(n - 2)
        .enumerate()
        .map(|(slot, id)| {
            (
                id,
                UnauthWrapper::new(
                    id,
                    n,
                    t,
                    Value(1 + (slot % 2) as u64),
                    matrix.row(id).clone(),
                ),
            )
        })
        .collect();
    let budget = UnauthWrapper::schedule(n, t).total_steps + 4;
    let mut runner = ba_sim::Runner::with_ids(n, honest, ba_sim::SilentAdversary);
    let report = runner.run(budget);
    assert!(report.agreement());
}

#[test]
fn wrapper_survives_maximum_tolerated_faults_both_pipelines() {
    // f = t exactly, split inputs, worst-case adversary.
    let mut unauth = ExperimentConfig::new(16, 5, 5, 64, Pipeline::Unauth);
    unauth.adversary = AdversaryKind::Disruptor;
    unauth.fault_placement = FaultPlacement::Head;
    unauth.placement = ErrorPlacement::TrustedFaults;
    let out = unauth.run();
    assert!(out.agreement, "unauth f=t");

    let mut auth = ExperimentConfig::new(13, 6, 6, 64, Pipeline::Auth);
    auth.adversary = AdversaryKind::Disruptor;
    auth.fault_placement = FaultPlacement::Head;
    auth.placement = ErrorPlacement::TrustedFaults;
    let out = auth.run();
    assert!(out.agreement, "auth f=t (t < n/2)");
}

#[test]
fn auth_wrapper_with_tiny_committee_prefix() {
    // n barely above 2k+1 at phase 1: committee voting degenerates to
    // nearly the whole system; certificates must still form.
    let n = 4;
    let t = 1;
    let faulty: BTreeSet<ProcessId> = BTreeSet::new();
    let pki = Arc::new(Pki::new(n, 9));
    let matrix = PredictionMatrix::perfect(n, &faulty);
    let honest: BTreeMap<ProcessId, AuthWrapper> = ProcessId::all(n)
        .map(|id| {
            (
                id,
                AuthWrapper::new(
                    id,
                    n,
                    t,
                    Value(5),
                    matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            )
        })
        .collect();
    let budget = AuthWrapper::schedule(n, t).total_steps + 4;
    let mut runner = ba_sim::Runner::with_ids(n, honest, ba_sim::SilentAdversary);
    let report = runner.run(budget);
    assert!(report.agreement());
    assert_eq!(report.decision(), Some(&Value(5)));
}

#[test]
fn repeated_runs_share_no_state() {
    // Two consecutive runs of the same config must not influence each
    // other through globals (there are none — this pins that down).
    let cfg = ExperimentConfig::new(10, 3, 2, 15, Pipeline::Unauth);
    let outs: Vec<_> = (0..3).map(|_| cfg.run()).collect();
    assert!(outs.windows(2).all(|w| w[0].rounds == w[1].rounds));
    assert!(outs.windows(2).all(|w| w[0].messages == w[1].messages));
}
