//! Conformance suite for the `ProtocolDriver` execution API: every
//! `Pipeline` variant must reach agreement — and unanimity-validity —
//! under both the weakest (`Silent`) and strongest (`Disruptor`)
//! execution-scale adversaries, across multiple seeds; the parallel
//! grid sweep must be indistinguishable from serial execution; and the
//! resilient family must show its defining graceful round degradation
//! (a staircase in `B`, never a lane cliff) with quadratic-shaped
//! communication above the Civit et al. floor.

use ba_predictions::prelude::*;

const SEEDS: std::ops::Range<u64> = 0..5;

fn conformance_config(pipeline: Pipeline, adversary: AdversaryKind, seed: u64) -> ExperimentConfig {
    let n = 13;
    ExperimentConfig::builder()
        .n(n)
        .faults(2, FaultPlacement::Spread)
        .budget(6, ErrorPlacement::Uniform)
        .pipeline(pipeline)
        .inputs(InputPattern::Unanimous(7))
        .adversary(adversary)
        .seed(seed)
        .build()
}

#[test]
fn every_pipeline_agrees_under_silent_and_disruptor() {
    for pipeline in Pipeline::ALL {
        for adversary in [AdversaryKind::Silent, AdversaryKind::Disruptor] {
            for seed in SEEDS {
                let out = conformance_config(pipeline, adversary, seed).run();
                assert!(
                    out.agreement,
                    "{pipeline:?} broke agreement under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.validity_ok,
                    "{pipeline:?} broke unanimity-validity under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.rounds.is_some(),
                    "{pipeline:?} lost liveness under {adversary:?} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn every_pipeline_agrees_on_split_inputs() {
    for pipeline in Pipeline::ALL {
        for seed in SEEDS {
            let out = conformance_config(pipeline, AdversaryKind::Silent, seed)
                .with_inputs(InputPattern::Split)
                .run();
            assert!(out.agreement, "{pipeline:?} split inputs (seed {seed})");
        }
    }
}

#[test]
fn pipelines_are_deterministic_per_seed() {
    for pipeline in Pipeline::ALL {
        let cfg = conformance_config(pipeline, AdversaryKind::Disruptor, 3);
        assert_eq!(cfg.run(), cfg.run(), "{pipeline:?} must be deterministic");
    }
}

#[test]
fn unauth_wrapper_beats_its_baseline_once_faults_dominate() {
    // The headline claim is asymptotic — `O(min{B/n + 1, f})` vs the
    // baseline's `Θ(f)` — so the crossover appears once `f` is large
    // enough to outweigh the wrapper's constant: at n = 40 with f = 10
    // silent faults and perfect predictions, the wrapper must decide
    // strictly earlier than phase-king's `f + 2` early-stopping phases.
    let make = |pipeline| {
        ExperimentConfig::builder()
            .n(40)
            .t(12)
            .faults(10, FaultPlacement::Head)
            .pipeline(pipeline)
            .build()
            .run()
    };
    let wrapper = make(Pipeline::Unauth);
    let baseline = make(Pipeline::PhaseKing);
    assert!(wrapper.agreement && baseline.agreement);
    assert!(
        wrapper.rounds.unwrap() < baseline.rounds.unwrap(),
        "wrapper ({:?} rounds) must beat phase-king ({:?} rounds) at B = 0, f = 10",
        wrapper.rounds,
        baseline.rounds
    );
}

#[test]
fn dolev_strong_baseline_runs_in_exactly_t_plus_one_rounds() {
    // The authenticated baseline has no early stopping: its round count
    // is the `t + 1` chain length regardless of the actual fault count,
    // which is the curve the auth wrapper's constant is traded against.
    for (n, t) in [(13usize, 4usize), (40, 13)] {
        let out = ExperimentConfig::builder()
            .n(n)
            .t(t)
            .faults(2, FaultPlacement::Spread)
            .pipeline(Pipeline::TruncatedDolevStrong)
            .build()
            .run();
        assert!(out.agreement);
        assert_eq!(
            out.rounds,
            Some(t as u64 + 1),
            "full Dolev–Strong at n = {n}"
        );
    }
}

#[test]
fn comm_eff_fast_lane_is_asymptotically_cheaper_than_dolev_strong() {
    // The Dzulfikar–Gilbert claim, measured: with accurate predictions
    // and a fixed fault count, the committee fast lane spends
    // Θ(n · f) constant-size messages while the Dolev–Strong baseline
    // spends Ω(n²) chain batches — so the totals must separate at
    // every n and the advantage must *grow* with n.
    let totals = |pipeline: Pipeline, n: usize| {
        let out = ExperimentConfig::builder()
            .n(n)
            .faults(2, FaultPlacement::Spread)
            .pipeline(pipeline)
            .inputs(InputPattern::Unanimous(3))
            .build()
            .run();
        assert!(out.agreement, "{pipeline:?} broke agreement at n = {n}");
        (out.messages_total, out.bytes_total)
    };
    let mut ratios = Vec::new();
    for n in [16, 32, 64] {
        let (ce_msgs, ce_bytes) = totals(Pipeline::CommEff, n);
        let (ds_msgs, ds_bytes) = totals(Pipeline::TruncatedDolevStrong, n);
        assert!(
            ce_msgs < ds_msgs,
            "n = {n}: comm-eff sent {ce_msgs} messages vs dolev-strong {ds_msgs}"
        );
        assert!(
            ce_bytes < ds_bytes,
            "n = {n}: comm-eff sent {ce_bytes} bytes vs dolev-strong {ds_bytes}"
        );
        ratios.push(ds_msgs as f64 / ce_msgs as f64);
    }
    assert!(
        ratios.windows(2).all(|w| w[0] < w[1]),
        "the message advantage must grow with n (got ratios {ratios:?})"
    );
}

#[test]
fn resilient_agrees_at_scale_under_silent_and_disruptor() {
    // The sixth family must hold agreement, unanimity-validity, and
    // liveness at n ∈ {16, 32, 64} under both the weakest and the
    // strongest execution-scale adversary, through the same generic
    // driver path as everyone else.
    for n in [16usize, 32, 64] {
        for adversary in [AdversaryKind::Silent, AdversaryKind::Disruptor] {
            for seed in 0..3 {
                let out = ExperimentConfig::builder()
                    .n(n)
                    .faults(4, FaultPlacement::Spread)
                    .budget(n, ErrorPlacement::Uniform)
                    .pipeline(Pipeline::Resilient)
                    .inputs(InputPattern::Unanimous(7))
                    .adversary(adversary)
                    .seed(seed)
                    .build()
                    .run();
                assert!(
                    out.agreement,
                    "resilient broke agreement at n = {n} under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.validity_ok,
                    "resilient broke unanimity at n = {n} under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.rounds.is_some(),
                    "resilient lost liveness at n = {n} under {adversary:?} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn resilient_rounds_degrade_gracefully_with_the_error_budget() {
    // The family's defining property: as the error budget B promotes
    // faulty identifiers up the throne order, rounds climb a staircase
    // — monotone-ish, several intermediate levels, unit-phase-scale
    // steps — instead of the fast-lane/fallback cliff (CommEff jumps
    // from 5 rounds straight to the full fallback budget; here no
    // adjacent step may exceed three phases). Split inputs + the
    // worst-case disruptor realize the curve: every phase whose king
    // the budget corrupted is a stalled phase.
    let n = 16;
    let f = 5;
    let cap = n * (n - f);
    let budgets: Vec<usize> = (0..=8).map(|i| i * cap / 8).collect();
    let curve: Vec<f64> = budgets
        .iter()
        .map(|&b| {
            let cfg = ExperimentConfig::builder()
                .n(n)
                .faults(f, FaultPlacement::Spread)
                .budget(b, ErrorPlacement::Concentrated)
                .pipeline(Pipeline::Resilient)
                .inputs(InputPattern::Split)
                .adversary(AdversaryKind::Disruptor)
                .build();
            let summary = sweep_seeds(&cfg, 0..4);
            assert!(summary.always_agreed, "agreement must survive B = {b}");
            summary
                .rounds_mean
                .expect("liveness must survive every budget")
        })
        .collect();
    assert!(
        curve.windows(2).all(|w| w[1] >= w[0]),
        "mean rounds must be monotone in B, got {curve:?}"
    );
    let spread = curve.last().unwrap() - curve.first().unwrap();
    assert!(
        spread >= 10.0,
        "the budget must actually cost phases (spread {spread}, curve {curve:?})"
    );
    let max_step = curve.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
    assert!(
        max_step <= 15.0,
        "degradation must be gradual, not a lane cliff (step {max_step}, curve {curve:?})"
    );
    let mut levels: Vec<u64> = curve.iter().map(|r| (r * 4.0) as u64).collect();
    levels.dedup();
    assert!(
        levels.len() >= 4,
        "a graceful curve passes through intermediate levels, got {curve:?}"
    );
}

#[test]
fn resilient_communication_is_quadratic_shaped_above_the_floor() {
    // Civit–Gilbert–Guerraoui: all Byzantine agreement problems are
    // expensive — quadratic communication is unavoidable, predictions
    // or not. The resilient pipeline's classification exchange alone is
    // all-to-all, so its totals must sit above the Theorem 14 floor and
    // fit a ~n² power law; sanity both ways (no silent undercount, no
    // runaway blowup).
    let mut samples = Vec::new();
    for n in [16usize, 32, 64] {
        let cfg = ExperimentConfig::builder()
            .n(n)
            .faults(2, FaultPlacement::Spread)
            .pipeline(Pipeline::Resilient)
            .inputs(InputPattern::Unanimous(3))
            .build();
        let t = cfg.t;
        let out = cfg.run();
        assert!(out.agreement);
        assert!(
            out.messages_total >= message_lower_bound(n, t),
            "n = {n}: below the Theorem 14 floor"
        );
        assert!(
            out.messages_total >= ((n - 2) * (n - 1)) as u64,
            "n = {n}: the classification exchange alone is all-to-all"
        );
        samples.push((n as f64, out.bytes_total as f64));
    }
    let p = ba_workloads::fit_power_law(&samples).expect("three sizes");
    assert!(
        (1.5..=2.6).contains(&p),
        "byte totals should scale ~quadratically, fit exponent {p}"
    );
}

#[test]
fn signed_comm_eff_keeps_a_uniform_lane_choice_under_full_equivocation() {
    // The signed certify contract at scale: under the full
    // signature-equivocation menu (forged tags, replayed honest
    // signatures, conflicting own-key reports, withheld genuine
    // certificates — the `Disruptor` mapping), every honest process
    // must make the *same* lane choice. A split would strand the
    // fallback half below quorum and show up as lost liveness — which
    // is exactly how the unsigned variant's pinned split manifests —
    // so agreement + liveness here prove uniformity. With accurate
    // predictions the committee is honest and the equivocator is fully
    // neutralized: the fast lane must conclude on schedule.
    for n in [16usize, 32, 64] {
        for (budget, seed) in [(0usize, 0u64), (0, 1), (n, 0), (n, 1)] {
            let out = ExperimentConfig::builder()
                .n(n)
                .faults(2, FaultPlacement::Spread)
                .budget(budget, ErrorPlacement::Uniform)
                .pipeline(Pipeline::CommEffSigned)
                .inputs(InputPattern::Unanimous(7))
                .adversary(AdversaryKind::Disruptor)
                .seed(seed)
                .build()
                .run();
            assert!(
                out.agreement,
                "signed comm-eff broke agreement at n = {n}, B = {budget} (seed {seed})"
            );
            assert!(
                out.validity_ok,
                "signed comm-eff broke unanimity at n = {n}, B = {budget} (seed {seed})"
            );
            assert!(
                out.rounds.is_some(),
                "a split lane choice loses liveness; none allowed at n = {n}, B = {budget}"
            );
            if budget == 0 {
                assert_eq!(
                    out.rounds,
                    Some(5),
                    "accurate predictions neutralize the equivocator: uniform *fast* lane at n = {n}"
                );
            }
        }
    }
}

#[test]
fn signed_resilient_agrees_within_t_plus_two_phases_with_no_suffix() {
    // The signed classification-exchange contract at scale: under the
    // per-recipient signature equivocator and the signed schedule-aware
    // disruptor alike, the suffix-free `t + 2`-phase budget must
    // suffice — the unsigned variant needs up to `2t + 3` phases for
    // the same liveness. The driver's round budget *is* the suffix-free
    // schedule, so deciding at all proves the claim; the explicit bound
    // is asserted on top for clarity.
    for n in [16usize, 32, 64] {
        let t = (n - 1) / 3;
        let signed_budget = 2 + 5 * (t as u64 + 2) + 2;
        for adversary in [
            AdversaryKind::ClassifyLiar(LiarStyle::RandomPerRecipient),
            AdversaryKind::Disruptor,
        ] {
            for seed in 0..2 {
                let out = ExperimentConfig::builder()
                    .n(n)
                    .faults(4, FaultPlacement::Spread)
                    .budget(n, ErrorPlacement::Uniform)
                    .pipeline(Pipeline::ResilientSigned)
                    .inputs(InputPattern::Unanimous(7))
                    .adversary(adversary)
                    .seed(seed)
                    .build()
                    .run();
                assert!(
                    out.agreement,
                    "signed resilient broke agreement at n = {n} under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.validity_ok,
                    "signed resilient broke unanimity at n = {n} under {adversary:?} (seed {seed})"
                );
                let rounds = out.rounds.unwrap_or_else(|| {
                    panic!("signed resilient lost liveness at n = {n} under {adversary:?}")
                });
                assert!(
                    rounds <= signed_budget,
                    "n = {n}: decided at round {rounds}, beyond the suffix-free \
                     t + 2 = {} phase budget ({signed_budget} rounds)",
                    t + 2
                );
            }
        }
    }
}

#[test]
fn signed_pipelines_pay_exactly_the_per_message_signature_model() {
    // Per message kind, signed = unsigned + the 20-byte signature — no
    // hidden framing anywhere in the signed envelope.
    use ba_predictions::ba_commeff::signed::{AckBody, ReportBody, SubmitBody};
    use ba_predictions::ba_commeff::{CommEffMsg, CommEffSignedMsg};
    use ba_predictions::ba_crypto::{Pki, Signed};
    use ba_predictions::ba_resilient::signed::ClassifyBody;
    use ba_predictions::ba_resilient::{ResilientMsg, ResilientSignedMsg};
    use ba_predictions::prelude::WireSize;
    use std::sync::Arc;

    let pki = Pki::new(16, 1);
    let key = pki.signing_key(0);
    let sig = 20u64;
    let pairs: Vec<(u64, u64)> = vec![
        (
            CommEffSignedMsg::Submit(Signed::new(SubmitBody { value: Value(3) }, &key))
                .wire_bytes(),
            CommEffMsg::Submit(Value(3)).wire_bytes(),
        ),
        (
            CommEffSignedMsg::Report(Signed::new(ReportBody { value: Value(3) }, &key))
                .wire_bytes(),
            CommEffMsg::Report(Value(3)).wire_bytes(),
        ),
        (
            CommEffSignedMsg::Ack(Signed::new(
                AckBody {
                    value: Value(3),
                    happy: true,
                },
                &key,
            ))
            .wire_bytes(),
            CommEffMsg::Ack {
                value: Value(3),
                happy: true,
            }
            .wire_bytes(),
        ),
        (
            ResilientSignedMsg::Classify(Arc::new(Signed::new(
                ClassifyBody {
                    bits: BitVec::ones(16),
                },
                &key,
            )))
            .wire_bytes(),
            ResilientMsg::Classify(Arc::new(BitVec::ones(16))).wire_bytes(),
        ),
    ];
    for (signed_bytes, unsigned_bytes) in pairs {
        assert_eq!(
            signed_bytes,
            unsigned_bytes + sig,
            "signed message kinds must cost exactly the signature more"
        );
    }
    // And at run level: the signed pipelines' totals strictly exceed
    // their unsigned counterparts' on the same workload (signatures on
    // every fast-lane/classify message, plus the echo rounds).
    for (signed, unsigned) in [
        (Pipeline::CommEffSigned, Pipeline::CommEff),
        (Pipeline::ResilientSigned, Pipeline::Resilient),
    ] {
        let run = |p| conformance_config(p, AdversaryKind::Silent, 0).run();
        let s = run(signed);
        let u = run(unsigned);
        assert!(s.agreement && u.agreement);
        assert!(
            s.bytes_total > u.bytes_total,
            "{signed:?} must out-spend {unsigned:?} in bytes ({} vs {})",
            s.bytes_total,
            u.bytes_total
        );
    }
}

#[test]
fn silent_adversary_never_increases_honest_message_totals() {
    // Silence is the least disruptive execution-scale behaviour: for
    // every pipeline, honest processes must spend at least as many
    // messages (and bytes) against the worst-case disruptor as against
    // silence on the otherwise-identical workload.
    //
    // One documented exception: `CommEffSigned`'s *byte* totals. Its
    // certify certificates carry every happy acknowledgement an
    // aggregator verified, so an equivocator that sours some
    // acknowledgements shrinks the certificates (and the echo round)
    // without changing the round count or the lane choice — honest
    // bytes can legitimately drop under attack. Message counts still
    // obey the rule for every family.
    for pipeline in Pipeline::ALL {
        for seed in SEEDS {
            let silent = conformance_config(pipeline, AdversaryKind::Silent, seed).run();
            let disrupted = conformance_config(pipeline, AdversaryKind::Disruptor, seed).run();
            assert!(
                silent.messages_total <= disrupted.messages_total,
                "{pipeline:?} (seed {seed}): silent cost {} messages, disruptor {}",
                silent.messages_total,
                disrupted.messages_total
            );
            if pipeline != Pipeline::CommEffSigned {
                assert!(
                    silent.bytes_total <= disrupted.bytes_total,
                    "{pipeline:?} (seed {seed}): silent cost {} bytes, disruptor {}",
                    silent.bytes_total,
                    disrupted.bytes_total
                );
            }
        }
    }
}

#[test]
fn every_pipeline_reports_nonzero_communication() {
    for pipeline in Pipeline::ALL {
        let out = conformance_config(pipeline, AdversaryKind::Silent, 0).run();
        assert!(out.messages_total > 0, "{pipeline:?} sent no messages");
        assert!(out.bytes_total > 0, "{pipeline:?} sent no bytes");
        assert!(
            out.bytes_total >= out.messages_total,
            "{pipeline:?}: every message costs at least one byte"
        );
    }
}

#[test]
fn parallel_sweep_counts_messages_and_bytes_identically_to_serial() {
    let grid = SweepGrid::new(
        ExperimentConfig::builder()
            .n(13)
            .faults(2, FaultPlacement::Spread)
            .build(),
    )
    .ns([10, 13])
    .budgets([0, 8])
    .pipelines(Pipeline::ALL)
    .seeds(0..3);
    let parallel = sweep_grid(&grid);
    let serial = ba_workloads::sweep_grid_serial(&grid);
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.summary.messages_max, s.summary.messages_max);
        assert_eq!(p.summary.messages_mean, s.summary.messages_mean);
        assert_eq!(p.summary.bytes_max, s.summary.bytes_max);
        assert_eq!(p.summary.bytes_mean, s.summary.bytes_mean);
    }
}

#[test]
fn parallel_sweep_grid_is_byte_identical_to_serial() {
    let grid = SweepGrid::new(
        ExperimentConfig::builder()
            .n(13)
            .faults(2, FaultPlacement::Spread)
            .build(),
    )
    .ns([10, 13])
    .budgets([0, 8])
    .fs([0, 2])
    .pipelines(Pipeline::ALL)
    .seeds(0..3);

    let parallel = sweep_grid(&grid);
    let serial = ba_workloads::sweep_grid_serial(&grid);
    assert!(!parallel.is_empty());
    assert_eq!(
        format!("{parallel:?}"),
        format!("{serial:?}"),
        "parallel and serial sweeps must produce identical results"
    );
    assert_eq!(grid_to_json(&parallel), grid_to_json(&serial));
}

#[test]
fn grid_json_is_stable_across_runs() {
    let grid = SweepGrid::new(ExperimentConfig::builder().n(10).build())
        .pipelines(Pipeline::ALL)
        .seeds(0..2);
    assert_eq!(
        grid_to_json(&sweep_grid(&grid)),
        grid_to_json(&sweep_grid(&grid)),
        "grid output must be reproducible"
    );
}
