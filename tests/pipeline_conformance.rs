//! Conformance suite for the `ProtocolDriver` execution API: every
//! `Pipeline` variant must reach agreement — and unanimity-validity —
//! under both the weakest (`Silent`) and strongest (`Disruptor`)
//! execution-scale adversaries, across multiple seeds; and the parallel
//! grid sweep must be indistinguishable from serial execution.

use ba_predictions::prelude::*;

const SEEDS: std::ops::Range<u64> = 0..5;

fn conformance_config(pipeline: Pipeline, adversary: AdversaryKind, seed: u64) -> ExperimentConfig {
    let n = 13;
    ExperimentConfig::builder()
        .n(n)
        .faults(2, FaultPlacement::Spread)
        .budget(6, ErrorPlacement::Uniform)
        .pipeline(pipeline)
        .inputs(InputPattern::Unanimous(7))
        .adversary(adversary)
        .seed(seed)
        .build()
}

#[test]
fn every_pipeline_agrees_under_silent_and_disruptor() {
    for pipeline in Pipeline::ALL {
        for adversary in [AdversaryKind::Silent, AdversaryKind::Disruptor] {
            for seed in SEEDS {
                let out = conformance_config(pipeline, adversary, seed).run();
                assert!(
                    out.agreement,
                    "{pipeline:?} broke agreement under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.validity_ok,
                    "{pipeline:?} broke unanimity-validity under {adversary:?} (seed {seed})"
                );
                assert!(
                    out.rounds.is_some(),
                    "{pipeline:?} lost liveness under {adversary:?} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn every_pipeline_agrees_on_split_inputs() {
    for pipeline in Pipeline::ALL {
        for seed in SEEDS {
            let out = conformance_config(pipeline, AdversaryKind::Silent, seed)
                .with_inputs(InputPattern::Split)
                .run();
            assert!(out.agreement, "{pipeline:?} split inputs (seed {seed})");
        }
    }
}

#[test]
fn pipelines_are_deterministic_per_seed() {
    for pipeline in Pipeline::ALL {
        let cfg = conformance_config(pipeline, AdversaryKind::Disruptor, 3);
        assert_eq!(cfg.run(), cfg.run(), "{pipeline:?} must be deterministic");
    }
}

#[test]
fn unauth_wrapper_beats_its_baseline_once_faults_dominate() {
    // The headline claim is asymptotic — `O(min{B/n + 1, f})` vs the
    // baseline's `Θ(f)` — so the crossover appears once `f` is large
    // enough to outweigh the wrapper's constant: at n = 40 with f = 10
    // silent faults and perfect predictions, the wrapper must decide
    // strictly earlier than phase-king's `f + 2` early-stopping phases.
    let make = |pipeline| {
        ExperimentConfig::builder()
            .n(40)
            .t(12)
            .faults(10, FaultPlacement::Head)
            .pipeline(pipeline)
            .build()
            .run()
    };
    let wrapper = make(Pipeline::Unauth);
    let baseline = make(Pipeline::PhaseKing);
    assert!(wrapper.agreement && baseline.agreement);
    assert!(
        wrapper.rounds.unwrap() < baseline.rounds.unwrap(),
        "wrapper ({:?} rounds) must beat phase-king ({:?} rounds) at B = 0, f = 10",
        wrapper.rounds,
        baseline.rounds
    );
}

#[test]
fn dolev_strong_baseline_runs_in_exactly_t_plus_one_rounds() {
    // The authenticated baseline has no early stopping: its round count
    // is the `t + 1` chain length regardless of the actual fault count,
    // which is the curve the auth wrapper's constant is traded against.
    for (n, t) in [(13usize, 4usize), (40, 13)] {
        let out = ExperimentConfig::builder()
            .n(n)
            .t(t)
            .faults(2, FaultPlacement::Spread)
            .pipeline(Pipeline::TruncatedDolevStrong)
            .build()
            .run();
        assert!(out.agreement);
        assert_eq!(
            out.rounds,
            Some(t as u64 + 1),
            "full Dolev–Strong at n = {n}"
        );
    }
}

#[test]
fn parallel_sweep_grid_is_byte_identical_to_serial() {
    let grid = SweepGrid::new(
        ExperimentConfig::builder()
            .n(13)
            .faults(2, FaultPlacement::Spread)
            .build(),
    )
    .ns([10, 13])
    .budgets([0, 8])
    .fs([0, 2])
    .pipelines(Pipeline::ALL)
    .seeds(0..3);

    let parallel = sweep_grid(&grid);
    let serial = ba_workloads::sweep_grid_serial(&grid);
    assert!(!parallel.is_empty());
    assert_eq!(
        format!("{parallel:?}"),
        format!("{serial:?}"),
        "parallel and serial sweeps must produce identical results"
    );
    assert_eq!(grid_to_json(&parallel), grid_to_json(&serial));
}

#[test]
fn grid_json_is_stable_across_runs() {
    let grid = SweepGrid::new(ExperimentConfig::builder().n(10).build())
        .pipelines(Pipeline::ALL)
        .seeds(0..2);
    assert_eq!(
        grid_to_json(&sweep_grid(&grid)),
        grid_to_json(&sweep_grid(&grid)),
        "grid output must be reproducible"
    );
}
