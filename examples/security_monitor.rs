//! The paper's motivating scenario (§1): a network-security monitoring
//! service — think Darktrace/Vectra/Zeek — feeds each replica of a
//! critical distributed system a noisy classification of which peers look
//! malicious. How much does agreement latency improve as the monitor's
//! accuracy improves?
//!
//! We model the monitor with two knobs:
//! * `miss_rate` — probability a faulty process goes undetected in one
//!   prediction string (a false negative, contributing to `B_F`);
//! * `fp_rate` — probability an honest process is wrongly flagged
//!   (a false positive, contributing to `B_H`).
//!
//! ```sh
//! cargo run --release --example security_monitor
//! ```

use ba_core::{PredictionMatrix, UnauthWrapper};
use ba_predictions::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Builds monitor output: each honest process receives an independent
/// noisy reading of the same underlying detector.
fn monitor_predictions(
    n: usize,
    faulty: &BTreeSet<ProcessId>,
    miss_rate: f64,
    fp_rate: f64,
    seed: u64,
) -> PredictionMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = PredictionMatrix::perfect(n, faulty);
    for row in ProcessId::all(n) {
        if faulty.contains(&row) {
            continue;
        }
        for col in 0..n {
            let is_faulty = faulty.contains(&ProcessId(col as u32));
            let flip = if is_faulty {
                rng.gen_bool(miss_rate)
            } else {
                rng.gen_bool(fp_rate)
            };
            if flip {
                let cur = m.row(row).get(col);
                m.row_mut(row).set(col, !cur);
            }
        }
    }
    m
}

fn run_with_monitor(
    n: usize,
    t: usize,
    faulty: &BTreeSet<ProcessId>,
    m: &PredictionMatrix,
) -> (u64, u64, usize) {
    let mut honest = BTreeMap::new();
    for id in ProcessId::all(n).filter(|p| !faulty.contains(p)) {
        honest.insert(
            id,
            UnauthWrapper::new(id, n, t, Value(7), m.row(id).clone()),
        );
    }
    let max = UnauthWrapper::schedule(n, t).total_steps + 4;
    let mut runner = Runner::with_ids(n, honest, SilentAdversary);
    let report = runner.run(max);
    assert!(report.agreement(), "agreement must hold at any noise level");
    assert_eq!(report.decision(), Some(&Value(7)), "validity");
    let b = m.total_errors(faulty);
    (
        report.last_decision_round.expect("all decided"),
        report.honest_messages_until_decision,
        b,
    )
}

fn main() {
    println!("Security-monitor scenario: agreement latency vs monitor quality\n");
    let (n, t, f) = (24, 7, 5);
    let faulty = faults(n, f, FaultPlacement::Spread);

    let mut table = Table::new(
        &format!("n = {n}, t = {t}, f = {f}, unauthenticated pipeline"),
        &["monitor", "miss%", "fp%", "B", "rounds", "messages"],
    );
    let profiles = [
        ("ideal detector", 0.00, 0.00),
        ("strong commercial", 0.05, 0.02),
        ("mediocre", 0.20, 0.10),
        ("coin-flipping", 0.50, 0.50),
        ("adversarially wrong", 1.00, 1.00),
    ];
    let mut rows = Vec::new();
    for (name, miss, fp) in profiles {
        let m = monitor_predictions(n, &faulty, miss, fp, 0xfeed);
        let (rounds, msgs, b) = run_with_monitor(n, t, &faulty, &m);
        table.row([
            name.to_string(),
            format!("{:.0}", miss * 100.0),
            format!("{:.0}", fp * 100.0),
            b.to_string(),
            rounds.to_string(),
            msgs.to_string(),
        ]);
        rows.push((name, rounds));
    }
    table.print();

    let ideal = rows.first().expect("profiles non-empty").1;
    let worst = rows.last().expect("profiles non-empty").1;
    println!(
        "An ideal monitor decided in {ideal} rounds; a maximally wrong one \
         degraded gracefully to {worst} rounds — never losing agreement, \
         exactly the contract of Theorem 11."
    );
}
