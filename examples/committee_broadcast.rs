//! Drive the paper's authenticated building blocks directly: committee
//! certificates (Definition 1), message chains (Definition 2), and
//! Byzantine Broadcast with an Implicit Committee (Algorithm 6).
//!
//! This is the API a systems builder would reuse outside the full
//! agreement stack — e.g. to disseminate a configuration from a leader
//! set while tolerating `k` compromised members.
//!
//! ```sh
//! cargo run --release --example committee_broadcast
//! ```

use ba_auth::bb_committee::{CommitteeMode, ParallelBroadcast};
use ba_auth::chains::{committee_bytes, CommitteeCert, MessageChain};
use ba_crypto::{Pki, Signature};
use ba_predictions::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 7;
    let t = 2;
    let session = 42;
    let pki = Arc::new(Pki::new(n, 0xC0FFEE));

    // --- Definition 1: committee certificates -------------------------
    // p0 collects t + 1 = 3 membership votes and assembles a certificate.
    let votes: Vec<Signature> = (0..=t as u32)
        .map(|voter| pki.signing_key(voter).sign(&committee_bytes(session, 0)))
        .collect();
    let cert = CommitteeCert::assemble(0, &votes, t).expect("t + 1 votes collected");
    assert!(cert.verify(session, t, &pki));
    println!(
        "committee certificate for p0: {} signatures, verifies ✓",
        cert.sigs.len()
    );

    // A stolen certificate (re-pointed at p5) must fail.
    let stolen = CommitteeCert {
        member: 5,
        sigs: cert.sigs.clone(),
    };
    assert!(!stolen.verify(session, t, &pki));
    println!("re-pointed certificate rejected ✓");

    // --- Definition 2: message chains ---------------------------------
    let chain = MessageChain::start(
        session,
        0,
        Value(99),
        &pki.signing_key(0),
        Some(cert.clone()),
    )
    .extend(
        session,
        0,
        &pki.signing_key(1),
        Some({
            let votes: Vec<Signature> = (0..=t as u32)
                .map(|v| pki.signing_key(v).sign(&committee_bytes(session, 1)))
                .collect();
            CommitteeCert::assemble(1, &votes, t).expect("votes")
        }),
    );
    assert!(chain.verify(session, 0, t, true, &pki));
    println!("length-{} message chain verifies ✓", chain.len());
    let mut tampered = chain.clone();
    tampered.value = Value(100);
    assert!(!tampered.verify(session, 0, t, true, &pki));
    println!("value-tampered chain rejected ✓");

    // --- Algorithm 6 at scale: n parallel broadcasts -------------------
    // Universal-committee mode (every process implicitly certified),
    // fault budget k = t: this is n parallel Dolev–Strong instances.
    let procs: Vec<ParallelBroadcast> = (0..n as u32)
        .map(|i| {
            ParallelBroadcast::new(
                ProcessId(i),
                n,
                t,
                t,
                session + 1,
                CommitteeMode::Universal,
                Value(10 + u64::from(i)),
                None,
                Arc::clone(&pki),
                pki.signing_key(i),
            )
        })
        .collect();
    let mut runner = Runner::new(n, procs, SilentAdversary);
    let report = runner.run(ParallelBroadcast::rounds(t) + 2);
    let view = report.outputs.values().next().expect("all finished");
    println!(
        "\nAlgorithm 6 (k = {t}): every process delivered {:?} in {} rounds, {} messages",
        view.iter().map(|v| v.map(|x| x.0)).collect::<Vec<_>>(),
        report.last_decision_round.expect("finished"),
        report.honest_messages,
    );
    for outs in report.outputs.values() {
        assert_eq!(outs, view, "committee agreement");
    }
    println!(
        "all {} processes hold identical delivery vectors ✓",
        report.outputs.len()
    );
}
