//! Quickstart: run Byzantine agreement with predictions end to end.
//!
//! Sets up 16 processes (up to t = 5 Byzantine, f = 3 actually faulty),
//! gives every honest process a mostly-correct prediction of who is
//! faulty, runs the unauthenticated pipeline (Theorem 11), and prints the
//! outcome next to a run with garbage predictions and the prediction-free
//! baseline intuition.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ba_predictions::prelude::*;

fn main() {
    println!("Byzantine Agreement with Predictions — quickstart\n");
    let (n, t, f) = (16, 5, 3);

    // A prediction with a small error budget: B = 8 wrong bits spread
    // uniformly across the honest processes' prediction strings.
    let good = ExperimentConfig::builder()
        .n(n)
        .t(t)
        .faults(f, FaultPlacement::Spread)
        .budget(8, ErrorPlacement::Uniform)
        .inputs(InputPattern::Unanimous(42))
        .build();
    let good_out = good.run();

    // The same system fed pure noise: every bit of every prediction
    // string is fair game (B saturates the matrix).
    let noisy = good
        .clone()
        .with_budget(n * n)
        .with_placement(ErrorPlacement::Concentrated);
    let noisy_out = noisy.run();

    let mut table = Table::new(
        &format!("n = {n}, t = {t}, f = {f}, unanimous inputs"),
        &[
            "predictions",
            "B",
            "k_A",
            "rounds",
            "messages",
            "agreement",
            "validity",
        ],
    );
    table.row([
        "mostly right".to_string(),
        good_out.b_actual.to_string(),
        good_out.k_a.to_string(),
        format!("{:?}", good_out.rounds.unwrap()),
        good_out.messages.to_string(),
        good_out.agreement.to_string(),
        good_out.validity_ok.to_string(),
    ]);
    table.row([
        "garbage".to_string(),
        noisy_out.b_actual.to_string(),
        noisy_out.k_a.to_string(),
        format!("{:?}", noisy_out.rounds.unwrap()),
        noisy_out.messages.to_string(),
        noisy_out.agreement.to_string(),
        noisy_out.validity_ok.to_string(),
    ]);
    table.print();

    assert!(good_out.agreement && good_out.validity_ok);
    assert!(noisy_out.agreement && noisy_out.validity_ok);
    assert!(good_out.rounds.unwrap() <= noisy_out.rounds.unwrap());
    println!(
        "Good predictions decided in {} rounds; garbage predictions degraded \
         gracefully to {} rounds — and agreement held in both.",
        good_out.rounds.unwrap(),
        noisy_out.rounds.unwrap()
    );
    println!(
        "\nTheorem 13 floor for these parameters: ≥ {} rounds (B = {}); \
         Theorem 14 floor: ≥ {} messages.",
        round_lower_bound(n, t, f, good_out.b_actual),
        good_out.b_actual,
        message_lower_bound(n, t),
    );
}
