//! Machine-readable sweep output: run a pipeline × n × B × f grid in
//! parallel and emit the aggregated points as JSON, so benchmark
//! trajectory files (`BENCH_*.json`) are produced by the repository
//! itself instead of ad-hoc scripts.
//!
//! ```sh
//! cargo run --release --example sweep_grid_json            # print to stdout
//! cargo run --release --example sweep_grid_json BENCH_SWEEP.json
//! ```

use ba_predictions::prelude::*;

fn main() {
    // The canonical bench grid — shared with bench_trajectory_diff so
    // the produced file and the baseline diff always describe the same
    // cells.
    let grid = SweepGrid::bench_default();
    let points = sweep_grid(&grid);
    assert!(
        points.iter().all(|p| p.summary.always_agreed),
        "every cell must keep agreement"
    );
    let json = grid_to_json(&points);

    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write JSON output");
            eprintln!("wrote {} grid points to {path}", points.len());
        }
        None => println!("{json}"),
    }
}
