//! Compare the paper's two pipelines on the same workloads.
//!
//! The unauthenticated pipeline (Theorem 11, `t < n/3`) can only exploit
//! predictions while `B = O(n^{3/2})`; the authenticated one (Theorem 12,
//! `t < (1/2 − ε)n`) keeps profiting up to `B = Θ(n²)` and tolerates more
//! faults — at the cost of signatures everywhere. This example runs both
//! on identical fault/prediction workloads (within the resilience each
//! supports) and prints the side-by-side.
//!
//! ```sh
//! cargo run --release --example pipelines_compared
//! ```

use ba_predictions::prelude::*;

fn main() {
    let n = 24;
    println!("Pipelines compared at n = {n}\n");

    // Common ground: t below n/3 so both pipelines run.
    let t_common = 7;
    let mut table = Table::new(
        &format!("same workload, t = {t_common} (both pipelines legal)"),
        &["pipeline", "B", "f", "rounds", "messages", "agreement"],
    );
    for (budget, f) in [(0usize, 2usize), (48, 2), (0, 6), (96, 6)] {
        for pipeline in [Pipeline::Unauth, Pipeline::Auth] {
            let mut cfg = ExperimentConfig::new(n, t_common, f, budget, pipeline);
            cfg.seed = 3;
            let out = cfg.run();
            assert!(out.agreement);
            table.row([
                format!("{pipeline:?}"),
                out.b_actual.to_string(),
                f.to_string(),
                out.rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                out.messages.to_string(),
                out.agreement.to_string(),
            ]);
        }
    }
    table.print();

    // The authenticated pipeline's exclusive regime: t = 11 > n/3.
    let t_auth = 11;
    let mut high = Table::new(
        &format!("beyond n/3: t = {t_auth} (authenticated only)"),
        &["pipeline", "B", "f", "rounds", "messages", "agreement"],
    );
    for (budget, f) in [(0usize, 4usize), (64, 10)] {
        let mut cfg = ExperimentConfig::new(n, t_auth, f, budget, Pipeline::Auth);
        cfg.seed = 5;
        let out = cfg.run();
        assert!(out.agreement);
        high.row([
            "Auth".to_string(),
            out.b_actual.to_string(),
            f.to_string(),
            out.rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            out.messages.to_string(),
            out.agreement.to_string(),
        ]);
    }
    high.print();

    println!(
        "The authenticated pipeline pays signature-sized messages but\n\
         tolerates nearly half the system being Byzantine and keeps\n\
         profiting from predictions at error budgets where the\n\
         unauthenticated conciliation machinery has given up."
    );
}
