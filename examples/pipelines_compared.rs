//! Compare every pipeline — the paper's two wrappers, the
//! prediction-free baselines, and both follow-up families — on the
//! same workloads.
//!
//! The unauthenticated pipeline (Theorem 11, `t < n/3`) can only exploit
//! predictions while `B = O(n^{3/2})`; the authenticated one (Theorem 12,
//! `t < (1/2 − ε)n`) keeps profiting up to `B = Θ(n²)` and tolerates more
//! faults — at the cost of signatures everywhere. The baselines
//! (`Pipeline::PhaseKing`, `Pipeline::TruncatedDolevStrong`) are what
//! the wrappers must never lose to asymptotically; `Pipeline::CommEff`
//! (Dzulfikar–Gilbert) shows the same prediction advantage with far
//! less communication — watch its bytes column against everyone
//! else's — and `Pipeline::Resilient` (Dallot et al.) trades that
//! economy for *graceful* rounds: its cost climbs one phase per faulty
//! identifier the error budget corrupts instead of cliff-switching into
//! a fallback. All six run through the same `ProtocolDriver` path on
//! identical fault workloads.
//!
//! ```sh
//! cargo run --release --example pipelines_compared
//! ```
//!
//! Note the baselines' B column reads "-": they never see the
//! prediction matrix, which is exactly their role in the comparison.

use ba_predictions::prelude::*;

fn row_for(table: &mut Table, cfg: &ExperimentConfig) {
    let out = cfg.run();
    assert!(out.agreement);
    table.row([
        cfg.pipeline.name().to_string(),
        if cfg.pipeline.driver().uses_predictions() {
            out.b_actual.to_string()
        } else {
            "-".to_string()
        },
        cfg.f.to_string(),
        out.rounds
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into()),
        out.messages.to_string(),
        out.bytes.to_string(),
        out.agreement.to_string(),
    ]);
}

fn main() {
    let n = 24;
    println!("Pipelines compared at n = {n}");
    driver_table().print();

    // Common ground: t below n/3 so every pipeline runs.
    let t_common = 7;
    let mut table = Table::new(
        &format!("same workload, t = {t_common} (all six pipelines legal)"),
        &[
            "pipeline",
            "B",
            "f",
            "rounds",
            "messages",
            "bytes",
            "agreement",
        ],
    );
    for (budget, f) in [(0usize, 2usize), (48, 2), (0, 6), (96, 6)] {
        for pipeline in Pipeline::ALL {
            let cfg = ExperimentConfig::builder()
                .n(n)
                .t(t_common)
                .faults(f, FaultPlacement::Spread)
                .budget(budget, ErrorPlacement::Uniform)
                .pipeline(pipeline)
                .seed(3)
                .build();
            row_for(&mut table, &cfg);
        }
    }
    table.print();

    // Beyond n/3: only the authenticated family (wrapper and its
    // Dolev–Strong baseline) is defined.
    let t_auth = 11;
    let mut high = Table::new(
        &format!("beyond n/3: t = {t_auth} (authenticated family only)"),
        &[
            "pipeline",
            "B",
            "f",
            "rounds",
            "messages",
            "bytes",
            "agreement",
        ],
    );
    for (budget, f) in [(0usize, 4usize), (64, 10)] {
        for pipeline in [Pipeline::Auth, Pipeline::TruncatedDolevStrong] {
            let cfg = ExperimentConfig::builder()
                .n(n)
                .t(t_auth)
                .faults(f, FaultPlacement::Spread)
                .budget(budget, ErrorPlacement::Uniform)
                .pipeline(pipeline)
                .seed(5)
                .build();
            row_for(&mut high, &cfg);
        }
    }
    high.print();

    println!(
        "The authenticated pipeline pays signature-sized messages but\n\
         tolerates nearly half the system being Byzantine and keeps\n\
         profiting from predictions at error budgets where the\n\
         unauthenticated conciliation machinery has given up. The\n\
         baseline rows show the prediction-free floor each wrapper is\n\
         measured against."
    );
}
