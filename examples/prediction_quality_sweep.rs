//! Sweep the prediction error budget `B` and watch the round complexity
//! follow the paper's `O(min{B/n + 1, f})` curve, with the Theorem 13
//! lower bound printed alongside.
//!
//! ```sh
//! cargo run --release --example prediction_quality_sweep
//! ```

use ba_predictions::prelude::*;

fn main() {
    let (n, t, f) = (24, 7, 6);
    println!("Prediction-quality sweep (n = {n}, t = {t}, f = {f})\n");

    let mut table = Table::new(
        "rounds vs B — unauthenticated pipeline (Theorem 11)",
        &["B", "B/n", "k_A", "rounds", "LB (Thm 13)", "agreement"],
    );
    for budget in [0usize, 6, 12, 24, 48, 96, 192, 384, 576] {
        let cfg = ExperimentConfig::new(n, t, f, budget, Pipeline::Unauth)
            .with_placement(ErrorPlacement::Concentrated)
            .with_seed(11);
        let out = cfg.run();
        table.row([
            out.b_actual.to_string(),
            (out.b_actual / n).to_string(),
            out.k_a.to_string(),
            out.rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            round_lower_bound(n, t, f, out.b_actual).to_string(),
            out.agreement.to_string(),
        ]);
        assert!(out.agreement);
    }
    table.print();

    println!(
        "Reading the table: rounds grow with B (more misclassified\n\
         processes, k_A ≈ B/(n/2 − f), so larger guess-and-double budgets\n\
         are needed) until the early-stopping term min{{·, f}} caps the\n\
         damage. The LB column is the paper's round lower bound for the\n\
         same (n, t, f, B) — measured rounds stay within a constant-ish\n\
         factor of it, which is Theorem 13's tightness claim."
    );
}
