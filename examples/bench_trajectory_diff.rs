//! Benchmark-trajectory regression gate: compare a freshly produced
//! sweep grid against the committed `BENCH_baseline.json`.
//!
//! ```sh
//! cargo run --release --example bench_trajectory_diff                # regenerate + diff
//! cargo run --release --example bench_trajectory_diff BENCH_ci.json  # diff an existing file
//! cargo run --release --example bench_trajectory_diff FRESH.json BASELINE.json
//! ```
//!
//! Cells are keyed by `(pipeline, n, f, budget)`; for each key present
//! in both files the summaries are compared field by field, and added /
//! removed cells are listed. The watched cells — rounds, message and
//! byte counts, agreement/validity, `k_A` — are **deterministic**
//! (seed-exact simulation), so any drift is a real behaviour change
//! and the diff exits non-zero: this is a failing regression gate, per
//! the ROADMAP's "grow the diff into a regression gate" item. Wall
//! time is deliberately not in the grid, so timing noise cannot trip
//! the gate (it stays warn-only territory, reported by the bench
//! harnesses instead). A missing baseline file only warns, so ad-hoc
//! checkouts without the committed baseline still run. Refresh the
//! baseline alongside intended changes with
//! `cargo run --release --example sweep_grid_json BENCH_baseline.json`.

use ba_predictions::prelude::*;

/// Splits a JSON array of objects into the objects' raw text (depth
/// scan; no string in the grid JSON contains braces).
fn split_objects(json: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in json.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&json[start.expect("open brace")..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Extracts the raw value of a top-level `"key":` in `obj` (numbers,
/// strings, bools, null, or a nested object).
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            ',' | '}' | ']' if depth == 0 => return Some(&rest[..i]),
            _ => {}
        }
    }
    Some(rest)
}

fn cell_key(obj: &str) -> String {
    let get = |k| field(obj, k).unwrap_or("?").trim().to_string();
    format!(
        "pipeline={} n={} f={} budget={}",
        get("pipeline"),
        get("n"),
        get("f"),
        get("budget")
    )
}

fn grid_json() -> String {
    // The same canonical grid `examples/sweep_grid_json.rs` emits, so a
    // no-argument run always diffs like-for-like cells.
    grid_to_json(&sweep_grid(&SweepGrid::bench_default()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let fresh = match args.next() {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read fresh grid {path}: {e}")),
        None => grid_json(),
    };
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let Ok(baseline) = std::fs::read_to_string(&baseline_path) else {
        println!("WARN: no committed baseline at {baseline_path}; nothing to diff against");
        return;
    };

    let fresh_cells: Vec<&str> = split_objects(&fresh);
    let base_cells: Vec<&str> = split_objects(&baseline);
    let fresh_map: std::collections::BTreeMap<String, &str> =
        fresh_cells.iter().map(|o| (cell_key(o), *o)).collect();
    let base_map: std::collections::BTreeMap<String, &str> =
        base_cells.iter().map(|o| (cell_key(o), *o)).collect();

    let watched = [
        "rounds_max",
        "rounds_mean",
        "messages_mean",
        "bytes_mean",
        "k_a_mean",
        "always_agreed",
        "always_valid",
    ];
    let mut drifted = 0usize;
    for (key, fresh_obj) in &fresh_map {
        match base_map.get(key) {
            None => {
                drifted += 1;
                println!("WARN: new cell (not in baseline): {key}");
            }
            Some(base_obj) => {
                let fs = field(fresh_obj, "summary").unwrap_or("");
                let bs = field(base_obj, "summary").unwrap_or("");
                let changes: Vec<String> = watched
                    .iter()
                    .filter_map(|k| {
                        let (f, b) = (field(fs, k)?.trim(), field(bs, k)?.trim());
                        (f != b).then(|| format!("{k}: {b} -> {f}"))
                    })
                    .collect();
                if !changes.is_empty() {
                    drifted += 1;
                    println!("WARN: drift at {key}: {}", changes.join(", "));
                }
            }
        }
    }
    for key in base_map.keys() {
        if !fresh_map.contains_key(key) {
            drifted += 1;
            println!("WARN: cell disappeared from the grid: {key}");
        }
    }
    if drifted == 0 {
        println!(
            "trajectory clean: {} cells match {baseline_path}",
            fresh_map.len()
        );
    } else {
        println!(
            "FAIL: trajectory drift in {drifted}/{} cells vs {baseline_path} — the watched cells \
             are deterministic, so this is a real behaviour change; refresh the baseline with \
             `cargo run --release --example sweep_grid_json BENCH_baseline.json` if it is intended",
            fresh_map.len()
        );
        std::process::exit(1);
    }
}
