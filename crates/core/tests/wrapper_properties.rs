//! Property-based verification of the Algorithm 1 wrapper's internal
//! contracts: classification feeds π(c) correctly, schedules are
//! consistent, and the wrapper's safety survives prediction matrices of
//! arbitrary shape (not just budgeted ones).

use ba_core::{
    phase_budget, phase_count, pi_order, truth_vector, BitVec, Classify, PredictionMatrix,
    SlotKind, UnauthWrapper,
};
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn arbitrary_matrix(n: usize) -> impl Strategy<Value = PredictionMatrix> {
    proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, n), n).prop_map(
        |rows| {
            PredictionMatrix::from_rows(rows.into_iter().map(|r| BitVec::from_bools(&r)).collect())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The wrapper satisfies Agreement and Termination for *arbitrary*
    /// prediction matrices — the matrix is adversary-chosen state, not
    /// trusted input.
    #[test]
    fn wrapper_safe_under_arbitrary_predictions(
        matrix in arbitrary_matrix(13),
        f in 0usize..4,
        unanimous in proptest::bool::ANY,
    ) {
        let n = 13;
        let t = 4;
        let faulty: BTreeSet<ProcessId> = (0..f as u32).map(ProcessId).collect();
        let honest: BTreeMap<ProcessId, UnauthWrapper> = ProcessId::all(n)
            .filter(|p| !faulty.contains(p))
            .enumerate()
            .map(|(slot, id)| {
                let v = if unanimous { Value(3) } else { Value(1 + (slot % 2) as u64) };
                (id, UnauthWrapper::new(id, n, t, v, matrix.row(id).clone()))
            })
            .collect();
        let budget = UnauthWrapper::schedule(n, t).total_steps + 4;
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(budget);
        prop_assert!(report.agreement(), "agreement under arbitrary predictions");
        if unanimous {
            prop_assert_eq!(report.decision(), Some(&Value(3)));
        }
    }

    /// Classification tally is symmetric: with all-honest voters the
    /// resulting vectors are identical across processes, and each bit
    /// reflects the strict majority of prediction bits.
    #[test]
    fn classification_majority_is_exact(
        matrix in arbitrary_matrix(9),
    ) {
        let n = 9;
        let honest: BTreeMap<ProcessId, Classify> = ProcessId::all(n)
            .map(|id| (id, Classify::new(id, n, matrix.row(id).clone())))
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(3);
        let first = report.outputs.values().next().expect("decided").clone();
        for c in report.outputs.values() {
            prop_assert_eq!(c, &first, "all-honest classification must be identical");
        }
        let threshold = Classify::threshold(n);
        for j in 0..n {
            let votes = ProcessId::all(n).filter(|&i| matrix.row(i).get(j)).count();
            prop_assert_eq!(first.get(j), votes >= threshold, "bit {}", j);
        }
    }

    /// π(c) is a permutation, lists classified-honest ids first, and is
    /// monotone within each class.
    #[test]
    fn pi_order_is_a_classified_permutation(
        bits in proptest::collection::vec(proptest::bool::ANY, 3..40),
    ) {
        let c = BitVec::from_bools(&bits);
        let order = pi_order(&c);
        let n = bits.len();
        let as_set: BTreeSet<ProcessId> = order.iter().copied().collect();
        prop_assert_eq!(as_set.len(), n, "permutation");
        let honest_count = c.count_ones();
        for (pos, id) in order.iter().enumerate() {
            prop_assert_eq!(c.get(id.index()), pos < honest_count);
        }
        for w in order[..honest_count].windows(2) {
            prop_assert!(w[0] < w[1], "honest prefix ascending");
        }
        for w in order[honest_count..].windows(2) {
            prop_assert!(w[0] < w[1], "faulty suffix ascending");
        }
    }

    /// Schedule structure: phases follow ⌈log₂ t⌉ + 1 with doubling
    /// budgets, slots tile the timeline, Class slots appear only while
    /// structurally valid.
    #[test]
    fn schedule_structure(n in 10usize..60, t_raw in 1usize..20) {
        let t = t_raw.min((n - 1) / 3).max(1);
        let s = UnauthWrapper::schedule(n, t);
        prop_assert_eq!(s.phases, phase_count(t));
        for w in s.slots.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "slots must tile");
        }
        for slot in &s.slots {
            if let SlotKind::Class { phase, k } = slot.kind {
                prop_assert_eq!(k, phase_budget(phase));
                prop_assert!((2 * k + 1) * (3 * k + 1) <= n, "invalid Class slot scheduled");
            }
        }
    }

    /// The perfect-prediction truth vector classifies exactly the fault
    /// set, so downstream orderings push precisely the faulty ids last.
    #[test]
    fn truth_vector_round_trip(
        faulty_raw in proptest::collection::btree_set(0u32..20, 0..7),
    ) {
        let n = 20;
        let faulty: BTreeSet<ProcessId> = faulty_raw.into_iter().map(ProcessId).collect();
        let c = truth_vector(n, &faulty);
        let order = pi_order(&c);
        let tail: BTreeSet<ProcessId> = order[n - faulty.len()..].iter().copied().collect();
        prop_assert_eq!(tail, faulty);
    }
}
