//! Algorithm 1 — Byzantine Agreement with Predictions, unauthenticated
//! pipeline (§5, §9, Theorem 11).
//!
//! `ba-with-predictions(xᵢ, aᵢ)` for `t < n/3`:
//!
//! ```text
//!  1: cᵢ ← classify(aᵢ)                                  (Algorithm 2)
//!  4: for φ ← 1 to ⌈log₂ t⌉ + 1:
//!  6:   (vᵢ, gᵢ) ← graded-consensus(vᵢ)                  (substitution S2)
//!  7:   v'ᵢ ← ba-early-stopping(vᵢ, T)                   (substitution S4)
//!  8:   if gᵢ = 0 then vᵢ ← v'ᵢ
//!  9:   (vᵢ, gᵢ) ← graded-consensus(vᵢ)
//! 10:   v'ᵢ ← ba-with-classification(vᵢ, cᵢ, 2^{φ−1}, T) (Algorithm 5)
//! 11:   if gᵢ = 0 then vᵢ ← v'ᵢ
//! 12:   (vᵢ, gᵢ) ← graded-consensus(vᵢ)
//! 13:   if decidedᵢ then return decisionᵢ
//! 14:   if gᵢ = 1 then { decisionᵢ ← vᵢ; decidedᵢ ← true }
//! 17: return decisionᵢ
//! ```
//!
//! Safety rests *only* on the unconditional graded consensus: the
//! early-stopping and classification sub-protocols may return garbage in
//! phases whose preconditions fail, but a garbage value is adopted only
//! at grade 0, and grade-1 coherence pins every adopted decision
//! (Lemmas 28–31 of the paper). Performance comes from whichever
//! sub-protocol's condition fires first — `O(min{B/n + 1, f})` phases'
//! worth of doubling budgets (Theorem 11).

use crate::bitvec::BitVec;
use crate::classify::Classify;
use crate::ordering::pi_order;
use crate::schedule::{Schedule, Slot, SlotKind};
use ba_early::{EsUnauth, EsUnauthMsg};
use ba_graded::{UnauthGcMsg, UnauthGraded};
use ba_sim::{forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Value, WireSize};
use ba_unauth::{Alg5Msg, UnauthBaWithClassification};
use std::sync::Arc;

/// Messages of the unauthenticated wrapper, tagged by slot.
#[derive(Clone, Debug)]
pub enum UnauthWrapperMsg {
    /// Algorithm 2 traffic.
    Classify(Arc<BitVec>),
    /// Graded-consensus traffic of one slot.
    Gc {
        /// Slot index.
        slot: u16,
        /// Inner payload.
        inner: Arc<UnauthGcMsg>,
    },
    /// Early-stopping traffic of one slot.
    Es {
        /// Slot index.
        slot: u16,
        /// Inner payload.
        inner: Arc<EsUnauthMsg>,
    },
    /// Algorithm 5 traffic of one slot.
    Class {
        /// Slot index.
        slot: u16,
        /// Inner payload.
        inner: Arc<Alg5Msg>,
    },
}

/// A discriminant byte, the slot tag where present, and the inner
/// payload.
impl WireSize for UnauthWrapperMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            UnauthWrapperMsg::Classify(bits) => bits.wire_bytes(),
            UnauthWrapperMsg::Gc { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
            UnauthWrapperMsg::Es { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
            UnauthWrapperMsg::Class { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
        }
    }
}

enum Active {
    Classify(Classify),
    Gc(UnauthGraded),
    Es(EsUnauth),
    Class(UnauthBaWithClassification),
    /// Before the first slot starts.
    None,
}

/// One process's state machine for the full unauthenticated
/// `ba-with-predictions`.
///
/// The schedule (and therefore the exact number of rounds) is a pure
/// function of `(n, t)`: [`UnauthWrapper::schedule`].
pub struct UnauthWrapper {
    me: ProcessId,
    n: usize,
    t: usize,
    schedule: Schedule,
    cursor: usize,
    value: Value,
    grade: u8,
    decision: Option<Value>,
    decision_phase: Option<u16>,
    order: Option<Arc<Vec<ProcessId>>>,
    classification: Option<BitVec>,
    active: Active,
    returned: bool,
}

impl std::fmt::Debug for UnauthWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnauthWrapper")
            .field("me", &self.me)
            .field("value", &self.value)
            .field("decision", &self.decision)
            .field("returned", &self.returned)
            .finish_non_exhaustive()
    }
}

impl UnauthWrapper {
    /// The deterministic schedule for a system of `n` processes with
    /// fault bound `t`.
    pub fn schedule(n: usize, t: usize) -> Schedule {
        Schedule::build(
            t,
            UnauthGraded::ROUNDS,
            |k| EsUnauth::rounds(n, t, k),
            |k| {
                UnauthBaWithClassification::is_structurally_valid(n, k)
                    .then(|| UnauthBaWithClassification::rounds(k))
            },
        )
    }

    /// Creates the state machine for process `me`.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` (Theorem 11's resilience) and the
    /// prediction has `n` bits.
    pub fn new(me: ProcessId, n: usize, t: usize, input: Value, prediction: BitVec) -> Self {
        assert!(3 * t < n, "the unauthenticated pipeline needs 3t < n");
        assert_eq!(prediction.len(), n);
        let schedule = Self::schedule(n, t);
        let mut w = UnauthWrapper {
            me,
            n,
            t,
            schedule,
            cursor: 0,
            value: input,
            grade: 0,
            decision: None,
            decision_phase: None,
            order: None,
            classification: None,
            active: Active::None,
            returned: false,
        };
        w.active = Active::Classify(Classify::new(me, n, prediction));
        w
    }

    /// The classification vector `cᵢ` (available once Algorithm 2 has
    /// run).
    pub fn classification(&self) -> Option<&BitVec> {
        self.classification.as_ref()
    }

    /// The phase in which this process decided, if it has.
    pub fn decision_phase(&self) -> Option<u16> {
        self.decision_phase
    }

    fn drive(
        &mut self,
        local: u64,
        inbox: &[Envelope<UnauthWrapperMsg>],
        out: &mut Outbox<UnauthWrapperMsg>,
    ) {
        let slot_idx = self.schedule.slots[self.cursor].idx;
        match &mut self.active {
            Active::Classify(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    UnauthWrapperMsg::Classify(x) => Some(Arc::clone(x)),
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, UnauthWrapperMsg::Classify);
            }
            Active::Gc(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    UnauthWrapperMsg::Gc { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| UnauthWrapperMsg::Gc {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::Es(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    UnauthWrapperMsg::Es { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| UnauthWrapperMsg::Es {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::Class(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    UnauthWrapperMsg::Class { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| UnauthWrapperMsg::Class {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::None => {}
        }
    }

    /// Applies the wrapper's per-slot transition (the numbered lines of
    /// Algorithm 1). Returns `true` if the process returned.
    fn finalize_slot(&mut self) -> bool {
        let slot: Slot = self.schedule.slots[self.cursor];
        let active = std::mem::replace(&mut self.active, Active::None);
        match (slot.kind, active) {
            (SlotKind::Classify, Active::Classify(sub)) => {
                let c = sub.output().expect("classification ready");
                self.order = Some(Arc::new(pi_order(&c)));
                self.classification = Some(c);
            }
            (SlotKind::GcA { .. } | SlotKind::GcB { .. }, Active::Gc(sub)) => {
                let g = sub.output().expect("graded consensus ready");
                self.value = g.value;
                self.grade = g.paper_grade();
            }
            (SlotKind::Es { .. }, Active::Es(sub)) => {
                let v = sub.output().expect("early stopping ready");
                if self.grade == 0 {
                    self.value = v;
                }
            }
            (SlotKind::Class { .. }, Active::Class(sub)) => {
                let o = sub.output().expect("Algorithm 5 ready");
                if self.grade == 0 {
                    self.value = o.value;
                }
            }
            (SlotKind::GcC { phase }, Active::Gc(sub)) => {
                let g = sub.output().expect("graded consensus ready");
                self.value = g.value;
                if self.decision.is_some() {
                    self.returned = true; // line 13
                    return true;
                }
                if g.paper_grade() == 1 {
                    self.decision = Some(g.value); // lines 14–16
                    self.decision_phase = Some(phase);
                }
            }
            (kind, _) => unreachable!("slot {kind:?} finalized with mismatched sub-protocol"),
        }
        false
    }

    fn start_slot(&mut self) {
        let slot = self.schedule.slots[self.cursor];
        self.active = match slot.kind {
            SlotKind::Classify => unreachable!("classify is constructed up front"),
            SlotKind::GcA { .. } | SlotKind::GcB { .. } | SlotKind::GcC { .. } => {
                Active::Gc(UnauthGraded::new(self.me, self.n, self.t, self.value))
            }
            SlotKind::Es { k, .. } => {
                Active::Es(EsUnauth::new(self.me, self.n, self.t, k, self.value))
            }
            SlotKind::Class { k, .. } => {
                let order = Arc::clone(self.order.as_ref().expect("classified before phase 1"));
                Active::Class(UnauthBaWithClassification::new(
                    self.me, self.n, k, self.value, order,
                ))
            }
        };
    }
}

impl Process for UnauthWrapper {
    type Msg = UnauthWrapperMsg;
    type Output = Value;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<UnauthWrapperMsg>],
        out: &mut Outbox<UnauthWrapperMsg>,
    ) {
        if self.returned {
            return;
        }
        let slot = self.schedule.slots[self.cursor];
        if round == slot.end {
            // The slot's output step: feed it this step's inbox, read the
            // result, and (in the same step) start the next slot.
            self.drive(round - slot.start, inbox, out);
            if self.finalize_slot() {
                return;
            }
            if self.cursor + 1 == self.schedule.slots.len() {
                // Line 17: the schedule is exhausted.
                if self.decision.is_none() {
                    self.decision = Some(self.value);
                }
                self.returned = true;
                return;
            }
            self.cursor += 1;
            self.start_slot();
            self.drive(0, inbox, out);
        } else {
            debug_assert!(round >= slot.start && round < slot.end);
            self.drive(round - slot.start, inbox, out);
        }
    }

    fn output(&self) -> Option<Value> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.returned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::PredictionMatrix;
    use ba_sim::{Runner, SilentAdversary};
    use std::collections::BTreeSet;

    fn run(
        n: usize,
        t: usize,
        faulty: &[u32],
        inputs: &[u64],
        matrix: &PredictionMatrix,
        max_rounds: u64,
    ) -> ba_sim::RunReport<Value> {
        let faulty: BTreeSet<ProcessId> = faulty.iter().copied().map(ProcessId).collect();
        let mut honest = std::collections::BTreeMap::new();
        let mut next_input = inputs.iter().copied();
        for id in ProcessId::all(n) {
            if faulty.contains(&id) {
                continue;
            }
            let v = Value(next_input.next().expect("enough inputs"));
            honest.insert(id, UnauthWrapper::new(id, n, t, v, matrix.row(id).clone()));
        }
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        runner.run(max_rounds)
    }

    #[test]
    fn unanimity_with_perfect_predictions_decides_fast() {
        let n = 16;
        let t = 5;
        let f: BTreeSet<ProcessId> = [14u32, 15].into_iter().map(ProcessId).collect();
        let m = PredictionMatrix::perfect(n, &f);
        let report = run(n, t, &[14, 15], &[7; 14], &m, 400);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(7)));
    }

    #[test]
    fn mixed_inputs_agree_with_perfect_predictions() {
        let n = 16;
        let t = 5;
        let f: BTreeSet<ProcessId> = [13u32, 15].into_iter().map(ProcessId).collect();
        let m = PredictionMatrix::perfect(n, &f);
        let inputs: Vec<u64> = (0..14).map(|i| i % 2).collect();
        let report = run(n, t, &[13, 15], &inputs, &m, 400);
        assert!(report.agreement());
        let d = report.decision().unwrap();
        assert!(*d == Value(0) || *d == Value(1), "validity of domain");
    }

    #[test]
    fn garbage_predictions_still_terminate_and_agree() {
        // Predictions are pure noise (all-zeros: everyone suspected);
        // the early-stopping path must carry the day.
        let n = 16;
        let t = 5;
        let rows = vec![BitVec::zeros(n); n];
        let m = PredictionMatrix::from_rows(rows);
        let inputs: Vec<u64> = (0..14).map(|i| i % 3).collect();
        let report = run(n, t, &[7, 11], &inputs, &m, 600);
        assert!(report.agreement(), "graceful degradation");
    }

    #[test]
    fn schedule_is_deterministic_and_finite() {
        let s1 = UnauthWrapper::schedule(16, 5);
        let s2 = UnauthWrapper::schedule(16, 5);
        assert_eq!(s1.total_steps, s2.total_steps);
        assert_eq!(s1.slots.len(), s2.slots.len());
        assert!(s1.total_steps < 1000);
    }

    #[test]
    fn decision_never_changes_after_set() {
        let n = 16;
        let t = 5;
        let f = BTreeSet::new();
        let m = PredictionMatrix::perfect(n, &f);
        let report = run(n, t, &[], &[4; 16], &m, 400);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(4)));
    }
}
