//! The priority ordering `π(c)` and its positional lemmas (§6).
//!
//! For a classification vector `c`, `π(c)` lists the identifiers
//! classified honest in increasing order, followed by the identifiers
//! classified faulty in increasing order. The paper's Lemmas 2–6 bound
//! how far positions can drift between the orderings of different honest
//! processes as a function of the number of misclassified processes —
//! that drift analysis is what makes the per-phase listen blocks of
//! Algorithms 5 and 7 overlap in large honest cores.
//!
//! The lemma statements are encoded here as checkable functions; the unit
//! tests and the crate's property suite exercise them on adversarial
//! classification patterns.

use crate::bitvec::BitVec;
use ba_sim::ProcessId;
use std::collections::BTreeSet;

/// Computes `π(c)`: honest-classified identifiers ascending, then
/// faulty-classified ascending.
///
/// # Examples
///
/// ```
/// use ba_core::{pi_order, BitVec};
/// use ba_sim::ProcessId;
///
/// let c = BitVec::from_bools(&[true, false, true, false]);
/// let order: Vec<u32> = pi_order(&c).into_iter().map(|p| p.0).collect();
/// assert_eq!(order, vec![0, 2, 1, 3]);
/// ```
pub fn pi_order(c: &BitVec) -> Vec<ProcessId> {
    let n = c.len();
    let mut order = Vec::with_capacity(n);
    order.extend((0..n).filter(|&i| c.get(i)).map(|i| ProcessId(i as u32)));
    order.extend((0..n).filter(|&i| !c.get(i)).map(|i| ProcessId(i as u32)));
    order
}

/// Zero-based position of `id` in an ordering.
///
/// # Panics
///
/// Panics if `id` is absent (orderings are permutations by construction).
pub fn position_in(order: &[ProcessId], id: ProcessId) -> usize {
    order
        .iter()
        .position(|&p| p == id)
        .expect("orderings are permutations of all identifiers")
}

/// The correct classification vector `ĉ` for a fault set.
pub fn truth_vector(n: usize, faulty: &BTreeSet<ProcessId>) -> BitVec {
    let mut c = BitVec::ones(n);
    for f in faulty {
        c.set(f.index(), false);
    }
    c
}

/// The set of processes misclassified by `c` relative to ground truth
/// (`δ(c, ĉ)` counts them, Lemma 2's `m`).
pub fn misclassified_by(c: &BitVec, faulty: &BTreeSet<ProcessId>) -> BTreeSet<ProcessId> {
    (0..c.len())
        .filter_map(|i| {
            let id = ProcessId(i as u32);
            let wrong = c.get(i) == faulty.contains(&id);
            wrong.then_some(id)
        })
        .collect()
}

/// Lemma 5's *core set*: the identifiers present in the (0-based,
/// half-open) position window `[lo, hi)` of **every** given ordering.
///
/// The lemma guarantees `|core| ≥ (hi − lo) − k_A` whenever
/// `lo + k_A ≤ hi ≤ n − t − k_A` (1-based: `ℓ + k_A − 1 < r ≤ n−t−k_A`);
/// the tests verify exactly that.
pub fn core_of_window(orders: &[Vec<ProcessId>], lo: usize, hi: usize) -> BTreeSet<ProcessId> {
    let mut iter = orders.iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    let mut core: BTreeSet<ProcessId> = first[lo..hi].iter().copied().collect();
    for order in iter {
        let window: BTreeSet<ProcessId> = order[lo..hi].iter().copied().collect();
        core.retain(|id| window.contains(id));
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn pi_order_of_truth_lists_honest_first() {
        let f = faults(&[1, 4]);
        let c = truth_vector(6, &f);
        let order: Vec<u32> = pi_order(&c).into_iter().map(|p| p.0).collect();
        assert_eq!(order, vec![0, 2, 3, 5, 1, 4]);
    }

    #[test]
    fn lemma2_position_drift_bounded_by_misclassifications() {
        // c misclassifies m processes; for every properly classified i,
        // |pos_π(c)(i) − pos_π(ĉ)(i)| ≤ m.
        let n = 10;
        let f = faults(&[7, 8, 9]);
        let truth = truth_vector(n, &f);
        let mut c = truth.clone();
        // Misclassify honest p2 as faulty and faulty p8 as honest: m = 2.
        c.set(2, false);
        c.set(8, true);
        let m = misclassified_by(&c, &f).len();
        assert_eq!(m, 2);
        let (po, pt) = (pi_order(&c), pi_order(&truth));
        for i in 0..n {
            let id = ProcessId(i as u32);
            if misclassified_by(&c, &f).contains(&id) {
                continue;
            }
            let drift = position_in(&po, id).abs_diff(position_in(&pt, id));
            assert!(drift <= m, "p{i} drifted {drift} > m = {m}");
        }
    }

    #[test]
    fn corollary1_early_faulty_position_implies_misclassified() {
        // If a faulty process sits within the first n − t − k_A positions
        // of some honest ordering, that ordering misclassifies it.
        let n = 10;
        let t = 3;
        let f = faults(&[7, 8, 9]);
        let mut c = truth_vector(n, &f);
        c.set(8, true); // p8 misclassified as honest
        let k_a = misclassified_by(&c, &f).len();
        let order = pi_order(&c);
        for &fp in &f {
            let pos = position_in(&order, fp);
            if pos < n - t - k_a {
                assert!(
                    misclassified_by(&c, &f).contains(&fp),
                    "{fp} early but properly classified"
                );
            }
        }
    }

    #[test]
    fn lemma4_shared_misclassified_faulty_drift() {
        // Two classifications both trusting the faulty p8: their
        // positions for p8 differ by at most k_A − 1.
        let n = 10;
        let f = faults(&[7, 8, 9]);
        let mut c1 = truth_vector(n, &f);
        c1.set(8, true);
        let mut c2 = truth_vector(n, &f);
        c2.set(8, true);
        c2.set(0, false); // extra misclassification in c2
        let k_a: BTreeSet<ProcessId> = misclassified_by(&c1, &f)
            .union(&misclassified_by(&c2, &f))
            .copied()
            .collect();
        let drift = position_in(&pi_order(&c1), ProcessId(8))
            .abs_diff(position_in(&pi_order(&c2), ProcessId(8)));
        assert!(drift < k_a.len());
    }

    #[test]
    fn lemma5_core_set_size_bound() {
        // Window [lo, hi) with hi ≤ n − t − k_A: every set of honest
        // orderings shares ≥ (hi−lo) − k_A identifiers in the window.
        let n = 12;
        let t = 3;
        let f = faults(&[9, 10, 11]);
        let mut c1 = truth_vector(n, &f);
        let mut c2 = truth_vector(n, &f);
        let c3 = truth_vector(n, &f);
        c1.set(2, false); // c1 suspects honest p2
        c2.set(10, true); // c2 trusts faulty p10
        let all: BTreeSet<ProcessId> = [&c1, &c2, &c3]
            .iter()
            .flat_map(|c| misclassified_by(c, &f))
            .collect();
        let k_a = all.len();
        assert_eq!(k_a, 2);
        let orders = vec![pi_order(&c1), pi_order(&c2), pi_order(&c3)];
        let (lo, hi) = (0, n - t - k_a); // maximal window
        let core = core_of_window(&orders, lo, hi);
        assert!(
            core.len() >= (hi - lo) - k_a,
            "core {} < window {} - k_A {}",
            core.len(),
            hi - lo,
            k_a
        );
        // And the core is honest-only in this regime.
        assert!(core.iter().all(|id| !f.contains(id)));
    }

    #[test]
    fn lemma6_prefix_membership_bound() {
        // At most r + k_H processes can see themselves among the first r
        // positions of their own ordering.
        let n = 12;
        let f = faults(&[9, 10, 11]);
        let r = 5;
        // Each honest process uses a classification suspecting one other
        // honest process (a rotating pattern): k_H grows but stays small.
        let mut count = 0;
        let mut k_h: BTreeSet<ProcessId> = BTreeSet::new();
        for i in 0..9u32 {
            let mut c = truth_vector(n, &f);
            let suspect = (i + 1) % 9;
            c.set(suspect as usize, false);
            k_h.insert(ProcessId(suspect));
            let order = pi_order(&c);
            if position_in(&order, ProcessId(i)) < r {
                count += 1;
            }
        }
        assert!(count <= r + k_h.len());
    }

    #[test]
    fn core_of_empty_orderings_is_empty() {
        assert!(core_of_window(&[], 0, 0).is_empty());
    }
}
