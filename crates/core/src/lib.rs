//! # ba-core — Byzantine Agreement with Predictions
//!
//! The primary contribution of *Byzantine Agreement with Predictions*
//! (Ben-David, Dzulfikar, Ellen, Gilbert — PODC 2025): synchronous
//! Byzantine agreement whose round complexity degrades gracefully with
//! the quality of an untrusted *classification prediction* — `n` bits per
//! process guessing who is faulty, with at most `B` incorrect bits in
//! total across honest processes.
//!
//! * `O(min{B/n + 1, f})` rounds when predictions are useful;
//! * never worse than a prediction-free early-stopping protocol;
//! * `Ω(n²)` messages regardless (predictions provably cannot help
//!   message complexity — Theorem 14).
//!
//! ## Modules
//!
//! | module | paper artifact |
//! |---|---|
//! | [`bitvec`], [`prediction`] | prediction strings and the error budget `B` (§3) |
//! | [`classify`] | Algorithm 2 — majority-vote classification (§6) |
//! | [`ordering`] | the priority order `π(c)` and Lemmas 2–6 (§6) |
//! | [`schedule`] | the guess-and-double phase layout (§5) |
//! | [`wrapper_unauth`] | Algorithm 1 over the unauthenticated pipeline (Theorem 11, `t < n/3`) |
//! | [`wrapper_auth`] | Algorithm 1 over the authenticated pipeline (Theorem 12, `t < n/2`) |
//!
//! ## Quickstart
//!
//! ```
//! use ba_core::{PredictionMatrix, UnauthWrapper};
//! use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
//! use std::collections::BTreeSet;
//!
//! // 8 processes, one (silent) fault, perfect predictions.
//! let n = 8;
//! let t = 2;
//! let faulty: BTreeSet<ProcessId> = [ProcessId(7)].into_iter().collect();
//! let predictions = PredictionMatrix::perfect(n, &faulty);
//!
//! let honest: std::collections::BTreeMap<_, _> = ProcessId::all(n)
//!     .filter(|id| !faulty.contains(id))
//!     .map(|id| {
//!         let w = UnauthWrapper::new(id, n, t, Value(42), predictions.row(id).clone());
//!         (id, w)
//!     })
//!     .collect();
//! let mut runner = Runner::with_ids(n, honest, SilentAdversary);
//! let report = runner.run(500);
//! assert!(report.agreement());
//! assert_eq!(report.decision(), Some(&Value(42)));
//! ```

pub mod bitvec;
pub mod classify;
pub mod ordering;
pub mod prediction;
pub mod schedule;
pub mod suspects;
pub mod wrapper_auth;
pub mod wrapper_unauth;

pub use bitvec::BitVec;
pub use classify::{Classify, ClassifyMsg, MisclassificationReport};
pub use ordering::{core_of_window, misclassified_by, pi_order, position_in, truth_vector};
pub use prediction::PredictionMatrix;
pub use schedule::{phase_budget, phase_count, Schedule, Slot, SlotKind};
pub use suspects::{matrix_from_suspect_lists, SuspectList};
pub use wrapper_auth::{AuthWrapper, AuthWrapperMsg};
pub use wrapper_unauth::{UnauthWrapper, UnauthWrapperMsg};
