//! A compact bit vector for prediction and classification strings.
//!
//! Prediction strings `aᵢ` and classification vectors `cᵢ` are `n`-bit
//! strings (§3). At benchmark scale (`n` in the hundreds, `n²` bits of
//! prediction state per execution) a packed representation keeps the
//! harness memory-friendly.

/// A fixed-length packed bit vector.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// A 4-byte length prefix plus the packed bits.
impl ba_sim::WireSize for BitVec {
    fn wire_bytes(&self) -> u64 {
        4 + self.len.div_ceil(8) as u64
    }
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Builds from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips bit `i`, returning its new value.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn tail_masking_keeps_count_exact() {
        let o = BitVec::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.hamming(&BitVec::zeros(65)), 65);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(10);
        v.set(3, true);
        assert!(v.get(3));
        assert!(!v.flip(3));
        assert!(!v.get(3));
        assert!(v.flip(9));
    }

    #[test]
    fn from_bools_matches_iter() {
        let bits = [true, false, true, true, false];
        let v = BitVec::from_bools(&bits);
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 2, 3]);
    }

    #[test]
    fn hamming_distance() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        BitVec::zeros(4).get(4);
    }
}
