//! Algorithm 1 — Byzantine Agreement with Predictions, authenticated
//! pipeline (§5, §9, Theorem 12).
//!
//! The same guess-and-double wrapper as
//! [`wrapper_unauth`](crate::wrapper_unauth), instantiated with the
//! authenticated components for `t < (1/2 − ε)n`:
//!
//! * graded consensus → [`ba_graded::AuthGraded`] (substitution S3,
//!   5 rounds);
//! * early-stopping BA → [`ba_early::TruncatedDs`] (substitution S5,
//!   `k + 1` rounds);
//! * conditional BA → [`ba_auth::AuthBaWithClassification`]
//!   (Algorithm 7, `k + 3` rounds).
//!
//! Because Algorithm 7 only needs `2k + 1 ≤ n − t − k`, the prediction
//! budget keeps paying off up to `B = Θ(n²)` — the paper's headline
//! difference from the unauthenticated pipeline, reproduced by bench E2.
//!
//! Every signature in every slot is domain-separated by the slot index
//! (the session tag), so harvesting signatures from one sub-protocol and
//! replaying them into another is useless.

use crate::bitvec::BitVec;
use crate::classify::Classify;
use crate::ordering::pi_order;
use crate::schedule::{Schedule, Slot, SlotKind};
use ba_auth::bb_committee::BbBatch;
use ba_auth::{Alg7Msg, AuthBaWithClassification};
use ba_crypto::{Pki, SigningKey};
use ba_early::TruncatedDs;
use ba_graded::{AuthGcMsg, AuthGraded};
use ba_sim::{forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Value, WireSize};
use std::sync::Arc;

/// Messages of the authenticated wrapper, tagged by slot.
#[derive(Clone, Debug)]
pub enum AuthWrapperMsg {
    /// Algorithm 2 traffic.
    Classify(Arc<BitVec>),
    /// Authenticated graded-consensus traffic of one slot.
    Gc {
        /// Slot index (= session tag).
        slot: u16,
        /// Inner payload.
        inner: Arc<AuthGcMsg>,
    },
    /// Truncated-Dolev–Strong traffic of one slot.
    Es {
        /// Slot index (= session tag).
        slot: u16,
        /// Inner payload.
        inner: Arc<BbBatch>,
    },
    /// Algorithm 7 traffic of one slot.
    Class {
        /// Slot index (= session tag).
        slot: u16,
        /// Inner payload.
        inner: Arc<Alg7Msg>,
    },
}

/// A discriminant byte, the slot tag where present, and the inner
/// payload.
impl WireSize for AuthWrapperMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            AuthWrapperMsg::Classify(bits) => bits.wire_bytes(),
            AuthWrapperMsg::Gc { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
            AuthWrapperMsg::Es { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
            AuthWrapperMsg::Class { slot, inner } => slot.wire_bytes() + inner.wire_bytes(),
        }
    }
}

enum Active {
    Classify(Classify),
    Gc(AuthGraded),
    Es(TruncatedDs),
    Class(AuthBaWithClassification),
    None,
}

/// One process's state machine for the authenticated
/// `ba-with-predictions`.
pub struct AuthWrapper {
    me: ProcessId,
    n: usize,
    t: usize,
    pki: Arc<Pki>,
    key: SigningKey,
    schedule: Schedule,
    cursor: usize,
    value: Value,
    grade: u8,
    decision: Option<Value>,
    decision_phase: Option<u16>,
    order: Option<Arc<Vec<ProcessId>>>,
    classification: Option<BitVec>,
    active: Active,
    returned: bool,
}

impl std::fmt::Debug for AuthWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthWrapper")
            .field("me", &self.me)
            .field("value", &self.value)
            .field("decision", &self.decision)
            .field("returned", &self.returned)
            .finish_non_exhaustive()
    }
}

impl AuthWrapper {
    /// The deterministic schedule for `(n, t)`.
    pub fn schedule(n: usize, t: usize) -> Schedule {
        Schedule::build(
            t,
            AuthGraded::ROUNDS,
            |k| TruncatedDs::rounds(k.min(t)),
            |k| (2 * k < n).then(|| AuthBaWithClassification::rounds(k)),
        )
    }

    /// Creates the state machine for process `me`.
    ///
    /// # Panics
    ///
    /// Panics unless `2t < n` and the prediction has `n` bits.
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        input: Value,
        prediction: BitVec,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert!(2 * t < n, "the authenticated pipeline needs t < n/2");
        assert_eq!(prediction.len(), n);
        assert_eq!(key.id(), me.0);
        let schedule = Self::schedule(n, t);
        let mut w = AuthWrapper {
            me,
            n,
            t,
            pki,
            key,
            schedule,
            cursor: 0,
            value: input,
            grade: 0,
            decision: None,
            decision_phase: None,
            order: None,
            classification: None,
            active: Active::None,
            returned: false,
        };
        w.active = Active::Classify(Classify::new(me, n, prediction));
        w
    }

    /// The classification vector `cᵢ` (available once Algorithm 2 ran).
    pub fn classification(&self) -> Option<&BitVec> {
        self.classification.as_ref()
    }

    /// The phase in which this process decided, if it has.
    pub fn decision_phase(&self) -> Option<u16> {
        self.decision_phase
    }

    fn drive(
        &mut self,
        local: u64,
        inbox: &[Envelope<AuthWrapperMsg>],
        out: &mut Outbox<AuthWrapperMsg>,
    ) {
        let slot_idx = self.schedule.slots[self.cursor].idx;
        match &mut self.active {
            Active::Classify(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    AuthWrapperMsg::Classify(x) => Some(Arc::clone(x)),
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, AuthWrapperMsg::Classify);
            }
            Active::Gc(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    AuthWrapperMsg::Gc { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| AuthWrapperMsg::Gc {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::Es(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    AuthWrapperMsg::Es { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| AuthWrapperMsg::Es {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::Class(sub) => {
                let s = sub_inbox(inbox, |m| match m {
                    AuthWrapperMsg::Class { slot, inner } if *slot == slot_idx => {
                        Some(Arc::clone(inner))
                    }
                    _ => None,
                });
                let mut so = Outbox::new(self.me, self.n);
                sub.step(local, &s, &mut so);
                forward_sub(so, out, |inner| AuthWrapperMsg::Class {
                    slot: slot_idx,
                    inner,
                });
            }
            Active::None => {}
        }
    }

    fn finalize_slot(&mut self) -> bool {
        let slot: Slot = self.schedule.slots[self.cursor];
        let active = std::mem::replace(&mut self.active, Active::None);
        match (slot.kind, active) {
            (SlotKind::Classify, Active::Classify(sub)) => {
                let c = sub.output().expect("classification ready");
                self.order = Some(Arc::new(pi_order(&c)));
                self.classification = Some(c);
            }
            (SlotKind::GcA { .. } | SlotKind::GcB { .. }, Active::Gc(sub)) => {
                let g = sub.output().expect("graded consensus ready");
                self.value = g.value;
                self.grade = g.paper_grade();
            }
            (SlotKind::Es { .. }, Active::Es(sub)) => {
                let v = sub.output().expect("early stopping ready");
                if self.grade == 0 {
                    self.value = v;
                }
            }
            (SlotKind::Class { .. }, Active::Class(sub)) => {
                let v = sub.output().expect("Algorithm 7 ready");
                if self.grade == 0 {
                    self.value = v;
                }
            }
            (SlotKind::GcC { phase }, Active::Gc(sub)) => {
                let g = sub.output().expect("graded consensus ready");
                self.value = g.value;
                if self.decision.is_some() {
                    self.returned = true;
                    return true;
                }
                if g.paper_grade() == 1 {
                    self.decision = Some(g.value);
                    self.decision_phase = Some(phase);
                }
            }
            (kind, _) => unreachable!("slot {kind:?} finalized with mismatched sub-protocol"),
        }
        false
    }

    fn start_slot(&mut self) {
        let slot = self.schedule.slots[self.cursor];
        let session = u64::from(slot.idx);
        self.active = match slot.kind {
            SlotKind::Classify => unreachable!("classify is constructed up front"),
            SlotKind::GcA { .. } | SlotKind::GcB { .. } | SlotKind::GcC { .. } => {
                Active::Gc(AuthGraded::new(
                    self.me,
                    self.n,
                    self.t,
                    session,
                    self.value,
                    Arc::clone(&self.pki),
                    self.key.clone(),
                ))
            }
            SlotKind::Es { k, .. } => Active::Es(TruncatedDs::new(
                self.me,
                self.n,
                self.t,
                k.min(self.t),
                session,
                self.value,
                Arc::clone(&self.pki),
                self.key.clone(),
            )),
            SlotKind::Class { k, .. } => {
                let order = Arc::clone(self.order.as_ref().expect("classified before phase 1"));
                Active::Class(AuthBaWithClassification::new(
                    self.me,
                    self.n,
                    self.t,
                    k,
                    session,
                    self.value,
                    order,
                    Arc::clone(&self.pki),
                    self.key.clone(),
                ))
            }
        };
    }
}

impl Process for AuthWrapper {
    type Msg = AuthWrapperMsg;
    type Output = Value;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<AuthWrapperMsg>],
        out: &mut Outbox<AuthWrapperMsg>,
    ) {
        if self.returned {
            return;
        }
        let slot = self.schedule.slots[self.cursor];
        if round == slot.end {
            self.drive(round - slot.start, inbox, out);
            if self.finalize_slot() {
                return;
            }
            if self.cursor + 1 == self.schedule.slots.len() {
                if self.decision.is_none() {
                    self.decision = Some(self.value);
                }
                self.returned = true;
                return;
            }
            self.cursor += 1;
            self.start_slot();
            self.drive(0, inbox, out);
        } else {
            debug_assert!(round >= slot.start && round < slot.end);
            self.drive(round - slot.start, inbox, out);
        }
    }

    fn output(&self) -> Option<Value> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.returned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::PredictionMatrix;
    use ba_sim::{Runner, SilentAdversary};
    use std::collections::BTreeSet;

    fn run(
        n: usize,
        t: usize,
        faulty: &[u32],
        inputs: &[u64],
        matrix: &PredictionMatrix,
        max_rounds: u64,
    ) -> ba_sim::RunReport<Value> {
        let faulty: BTreeSet<ProcessId> = faulty.iter().copied().map(ProcessId).collect();
        let pki = Arc::new(Pki::new(n, 1234));
        let mut honest = std::collections::BTreeMap::new();
        let mut next_input = inputs.iter().copied();
        for id in ProcessId::all(n) {
            if faulty.contains(&id) {
                continue;
            }
            let v = Value(next_input.next().expect("enough inputs"));
            honest.insert(
                id,
                AuthWrapper::new(
                    id,
                    n,
                    t,
                    v,
                    matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        runner.run(max_rounds)
    }

    #[test]
    fn unanimity_beyond_one_third_faults() {
        // t = 4 of n = 10 — impossible for the unauthenticated pipeline.
        let n = 10;
        let t = 4;
        let f: BTreeSet<ProcessId> = [6u32, 7, 8, 9].into_iter().map(ProcessId).collect();
        let m = PredictionMatrix::perfect(n, &f);
        let report = run(n, t, &[6, 7, 8, 9], &[3; 6], &m, 600);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(3)));
    }

    #[test]
    fn mixed_inputs_agree_with_perfect_predictions() {
        let n = 10;
        let t = 3;
        let f: BTreeSet<ProcessId> = [4u32, 9].into_iter().map(ProcessId).collect();
        let m = PredictionMatrix::perfect(n, &f);
        let inputs: Vec<u64> = (0..8).map(|i| i % 2).collect();
        let report = run(n, t, &[4, 9], &inputs, &m, 600);
        assert!(report.agreement());
    }

    #[test]
    fn garbage_predictions_still_agree() {
        let n = 10;
        let t = 3;
        let rows = vec![BitVec::zeros(n); n];
        let m = PredictionMatrix::from_rows(rows);
        let inputs: Vec<u64> = (0..8).map(|i| i % 2).collect();
        let report = run(n, t, &[0, 5], &inputs, &m, 600);
        assert!(report.agreement(), "graceful degradation");
    }

    #[test]
    fn schedule_class_slots_survive_to_larger_k_than_unauth() {
        // The headline asymmetry: Algorithm 7 slots exist while
        // 2k+1 ≤ n; Algorithm 5 slots need (2k+1)(3k+1) ≤ n.
        let n = 32;
        let auth = AuthWrapper::schedule(n, 10);
        let unauth = crate::wrapper_unauth::UnauthWrapper::schedule(n, 10);
        let max_k = |s: &crate::schedule::Schedule| {
            s.slots
                .iter()
                .filter_map(|s| match s.kind {
                    SlotKind::Class { k, .. } => Some(k),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(max_k(&auth) > max_k(&unauth));
    }
}
