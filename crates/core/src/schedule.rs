//! The guess-and-double phase schedule of Algorithm 1 (§5).
//!
//! The wrapper runs `⌈log₂ t⌉ + 1` phases; phase `φ` (1-based) uses the
//! error budget `k = 2^{φ−1}` and consists of five sub-protocol slots:
//! graded consensus, early-stopping BA (time-boxed), graded consensus,
//! conditional BA with classification (time-boxed), graded consensus. A
//! classification slot (Algorithm 2) precedes phase 1.
//!
//! All processes derive the identical schedule from `(n, t)` and the
//! pipeline's round costs, so the lockstep windows line up exactly — the
//! paper's "every process synchronously spends T time on the
//! sub-protocol" (§5, footnote 4). Sub-protocols whose structural
//! preconditions cannot hold at a given `k` (e.g. Algorithm 5's
//! `(2k+1)(3k+1) ≤ n` block layout) are *skipped deterministically*,
//! which every process again computes identically.
//!
//! Slot boundaries overlap by one step: a `d`-round slot starting at step
//! `b` produces its output while receiving step `b + d`'s messages, the
//! same step in which the next slot broadcasts for the first time.

/// What runs in one schedule slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Algorithm 2, once, up front.
    Classify,
    /// Graded consensus protecting validity before the early-stopping BA
    /// (line 6).
    GcA {
        /// 1-based phase number.
        phase: u16,
    },
    /// Early-stopping BA with fault budget `k` (line 7).
    Es {
        /// 1-based phase number.
        phase: u16,
        /// Fault budget `k = 2^{φ−1}` (capped at `t`).
        k: usize,
    },
    /// Graded consensus between the two conditional BAs (line 9).
    GcB {
        /// 1-based phase number.
        phase: u16,
    },
    /// Conditional BA with classification and error budget `k` (line 10).
    Class {
        /// 1-based phase number.
        phase: u16,
        /// Error budget `k = 2^{φ−1}`.
        k: usize,
    },
    /// Graded consensus checking for agreement (line 12).
    GcC {
        /// 1-based phase number.
        phase: u16,
    },
}

/// One scheduled slot.
#[derive(Clone, Copy, Debug)]
pub struct Slot {
    /// What runs.
    pub kind: SlotKind,
    /// Unique index — doubles as the session tag binding the slot's
    /// signatures in authenticated pipelines.
    pub idx: u16,
    /// First step (the slot's round-1 sends happen here).
    pub start: u64,
    /// Output step (= the next slot's `start`).
    pub end: u64,
}

/// The complete deterministic schedule of one wrapper execution.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Slots in execution order.
    pub slots: Vec<Slot>,
    /// Number of phases `⌈log₂ t⌉ + 1`.
    pub phases: u16,
    /// Total steps: the last slot's `end` (the final output step).
    pub total_steps: u64,
}

/// `⌈log₂ t⌉ + 1`, with the degenerate cases `t ∈ {0, 1}` mapped to one
/// phase.
pub fn phase_count(t: usize) -> u16 {
    if t <= 1 {
        1
    } else {
        (usize::BITS - (t - 1).leading_zeros()) as u16 + 1
    }
}

/// The error budget of a 1-based phase: `k = 2^{φ−1}`.
pub fn phase_budget(phase: u16) -> usize {
    1usize << (phase - 1)
}

impl Schedule {
    /// Builds the schedule from the pipeline's round costs.
    ///
    /// * `gc_rounds` — rounds of one graded consensus;
    /// * `es_rounds(k)` — rounds of the early-stopping BA at budget `k`;
    /// * `class_rounds(k)` — rounds of the conditional BA at budget `k`,
    ///   or `None` when the slot must be skipped at this `k`.
    pub fn build(
        t: usize,
        gc_rounds: u64,
        es_rounds: impl Fn(usize) -> u64,
        class_rounds: impl Fn(usize) -> Option<u64>,
    ) -> Self {
        let phases = phase_count(t);
        let mut slots = Vec::new();
        let mut cursor = 0u64;
        let mut idx = 0u16;
        let push =
            |kind: SlotKind, dur: u64, cursor: &mut u64, idx: &mut u16, slots: &mut Vec<Slot>| {
                slots.push(Slot {
                    kind,
                    idx: *idx,
                    start: *cursor,
                    end: *cursor + dur,
                });
                *cursor += dur;
                *idx += 1;
            };
        push(SlotKind::Classify, 1, &mut cursor, &mut idx, &mut slots);
        for phase in 1..=phases {
            let k = phase_budget(phase);
            push(
                SlotKind::GcA { phase },
                gc_rounds,
                &mut cursor,
                &mut idx,
                &mut slots,
            );
            push(
                SlotKind::Es { phase, k },
                es_rounds(k),
                &mut cursor,
                &mut idx,
                &mut slots,
            );
            push(
                SlotKind::GcB { phase },
                gc_rounds,
                &mut cursor,
                &mut idx,
                &mut slots,
            );
            if let Some(dur) = class_rounds(k) {
                push(
                    SlotKind::Class { phase, k },
                    dur,
                    &mut cursor,
                    &mut idx,
                    &mut slots,
                );
            }
            push(
                SlotKind::GcC { phase },
                gc_rounds,
                &mut cursor,
                &mut idx,
                &mut slots,
            );
        }
        Schedule {
            slots,
            phases,
            total_steps: cursor,
        }
    }

    /// The slot active at `step` (the one whose `[start, end)` window
    /// contains it), if any.
    pub fn slot_at(&self, step: u64) -> Option<&Slot> {
        self.slots.iter().find(|s| s.start <= step && step < s.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_count_matches_ceil_log2_plus_one() {
        assert_eq!(phase_count(0), 1);
        assert_eq!(phase_count(1), 1);
        assert_eq!(phase_count(2), 2);
        assert_eq!(phase_count(3), 3, "⌈log₂ 3⌉ + 1 = 3");
        assert_eq!(phase_count(4), 3);
        assert_eq!(phase_count(5), 4);
        assert_eq!(phase_count(16), 5);
        assert_eq!(phase_count(17), 6);
    }

    #[test]
    fn budgets_double() {
        assert_eq!(phase_budget(1), 1);
        assert_eq!(phase_budget(2), 2);
        assert_eq!(phase_budget(5), 16);
    }

    #[test]
    fn slots_are_contiguous_and_indexed() {
        let s = Schedule::build(
            4,
            2,
            |k| 5 * (k as u64 + 2),
            |k| Some(5 * (2 * k as u64 + 1)),
        );
        assert_eq!(s.phases, 3);
        // Classify + 3 phases × 5 slots.
        assert_eq!(s.slots.len(), 1 + 3 * 5);
        for (i, w) in s.slots.windows(2).enumerate() {
            assert_eq!(w[0].end, w[1].start, "gap after slot {i}");
        }
        let idxs: Vec<u16> = s.slots.iter().map(|s| s.idx).collect();
        let expect: Vec<u16> = (0..s.slots.len() as u16).collect();
        assert_eq!(idxs, expect);
        assert_eq!(s.total_steps, s.slots.last().unwrap().end);
    }

    #[test]
    fn skipped_class_slots_are_absent_consistently() {
        let s = Schedule::build(8, 2, |_| 10, |k| (k <= 2).then_some(5));
        let class_phases: Vec<u16> = s
            .slots
            .iter()
            .filter_map(|s| match s.kind {
                SlotKind::Class { phase, .. } => Some(phase),
                _ => None,
            })
            .collect();
        assert_eq!(class_phases, vec![1, 2], "k = 4, 8 skipped");
    }

    #[test]
    fn slot_at_finds_the_window() {
        let s = Schedule::build(2, 2, |_| 5, |_| Some(5));
        let slot = s.slot_at(0).unwrap();
        assert_eq!(slot.kind, SlotKind::Classify);
        let slot = s.slot_at(1).unwrap();
        assert!(matches!(slot.kind, SlotKind::GcA { phase: 1 }));
        assert!(s.slot_at(s.total_steps).is_none());
    }
}
