//! Classification predictions and their error accounting (§3).
//!
//! Each process `pᵢ` receives an `n`-bit prediction string `aᵢ`:
//! `aᵢ[j] = 1` predicts `pⱼ` honest, `aᵢ[j] = 0` predicts `pⱼ` faulty.
//! The quality measure is the number `B` of incorrect bits across the
//! prediction strings *of honest processes*:
//!
//! * `B_F` — bits that predict a faulty process as honest (missed
//!   detections);
//! * `B_H` — bits that predict an honest process as faulty (false
//!   accusations);
//! * `B = B_F + B_H`.
//!
//! Bits handed to faulty processes are not counted (the adversary may
//! ignore them anyway).

use crate::bitvec::BitVec;
use ba_sim::ProcessId;
use std::collections::BTreeSet;

/// The per-process prediction strings of one execution.
#[derive(Clone, Debug)]
pub struct PredictionMatrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl PredictionMatrix {
    /// The all-correct prediction for a given fault set.
    pub fn perfect(n: usize, faulty: &BTreeSet<ProcessId>) -> Self {
        let mut truth = BitVec::ones(n);
        for f in faulty {
            truth.set(f.index(), false);
        }
        PredictionMatrix {
            n,
            rows: vec![truth; n],
        }
    }

    /// The all-ones ("everyone honest") prediction — what a system
    /// without a monitoring service would assume.
    pub fn all_honest(n: usize) -> Self {
        PredictionMatrix {
            n,
            rows: vec![BitVec::ones(n); n],
        }
    }

    /// Builds from explicit rows (row `i` is `aᵢ`).
    ///
    /// # Panics
    ///
    /// Panics unless there are `n` rows of `n` bits.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "rows must be n×n");
        PredictionMatrix { n, rows }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The prediction string handed to `pᵢ`.
    pub fn row(&self, i: ProcessId) -> &BitVec {
        &self.rows[i.index()]
    }

    /// Mutable access (used by error-injection generators).
    pub fn row_mut(&mut self, i: ProcessId) -> &mut BitVec {
        &mut self.rows[i.index()]
    }

    /// Counts `(B_F, B_H)` for a given fault set, over honest rows only.
    pub fn error_counts(&self, faulty: &BTreeSet<ProcessId>) -> (usize, usize) {
        let mut bf = 0;
        let mut bh = 0;
        for i in 0..self.n {
            if faulty.contains(&ProcessId(i as u32)) {
                continue;
            }
            let row = &self.rows[i];
            for j in 0..self.n {
                let predicted_honest = row.get(j);
                let is_faulty = faulty.contains(&ProcessId(j as u32));
                match (predicted_honest, is_faulty) {
                    (true, true) => bf += 1,
                    (false, false) => bh += 1,
                    _ => {}
                }
            }
        }
        (bf, bh)
    }

    /// Total incorrect bits `B = B_F + B_H`.
    pub fn total_errors(&self, faulty: &BTreeSet<ProcessId>) -> usize {
        let (bf, bh) = self.error_counts(faulty);
        bf + bh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn perfect_prediction_has_zero_errors() {
        let f = faults(&[1, 3]);
        let m = PredictionMatrix::perfect(5, &f);
        assert_eq!(m.error_counts(&f), (0, 0));
        assert!(!m.row(ProcessId(0)).get(1));
        assert!(m.row(ProcessId(0)).get(2));
    }

    #[test]
    fn all_honest_counts_missed_faults_per_honest_row() {
        let f = faults(&[1, 3]);
        let m = PredictionMatrix::all_honest(5);
        // 3 honest rows × 2 missed faults = 6 B_F errors.
        assert_eq!(m.error_counts(&f), (6, 0));
        assert_eq!(m.total_errors(&f), 6);
    }

    #[test]
    fn false_accusations_count_as_bh() {
        let f = faults(&[4]);
        let mut m = PredictionMatrix::perfect(5, &f);
        // p0 wrongly suspects honest p2.
        m.row_mut(ProcessId(0)).set(2, false);
        assert_eq!(m.error_counts(&f), (0, 1));
    }

    #[test]
    fn faulty_rows_do_not_count() {
        let f = faults(&[0]);
        let mut m = PredictionMatrix::perfect(4, &f);
        // Garbage in the faulty process's own row is free.
        *m.row_mut(ProcessId(0)) = BitVec::zeros(4);
        assert_eq!(m.total_errors(&f), 0);
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn from_rows_validates_shape() {
        let _ =
            PredictionMatrix::from_rows(vec![BitVec::zeros(3), BitVec::zeros(2), BitVec::zeros(3)]);
    }
}
