//! Algorithm 2 — classification by majority voting (§6).
//!
//! Each honest process broadcasts its prediction string; `pᵢ` then
//! classifies `pⱼ` as honest iff at least `⌈(n+1)/2⌉` of the received
//! `n`-bit vectors (its own included) predict `pⱼ` honest.
//!
//! The payoff (Lemma 1, re-verified by this module's property tests and
//! the E7 bench harness): if `f < εn` for a constant `ε < 1/2`, at most
//! `B / (⌈n/2⌉ − f) = O(B/n)` processes are *misclassified by at least
//! one honest process* — prediction noise gets compressed by a factor of
//! `n/2 − f` before it can affect agreement.

use crate::bitvec::BitVec;
use ba_sim::{Envelope, Outbox, Process, ProcessId};
use std::collections::BTreeSet;

/// The single message of Algorithm 2: the sender's raw prediction string.
pub type ClassifyMsg = BitVec;

/// One process's state machine for Algorithm 2 (one round).
#[derive(Clone, Debug)]
pub struct Classify {
    me: ProcessId,
    n: usize,
    prediction: BitVec,
    out: Option<BitVec>,
}

impl Classify {
    /// Number of communication rounds.
    pub const ROUNDS: u64 = 1;

    /// Creates the state machine with this process's prediction string.
    ///
    /// # Panics
    ///
    /// Panics unless the prediction has exactly `n` bits.
    pub fn new(me: ProcessId, n: usize, prediction: BitVec) -> Self {
        assert_eq!(prediction.len(), n, "prediction must have n bits");
        Classify {
            me,
            n,
            prediction,
            out: None,
        }
    }

    /// This process's identifier.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The voting threshold `⌈(n+1)/2⌉`.
    pub fn threshold(n: usize) -> usize {
        n.div_ceil(2) + usize::from(n.is_multiple_of(2))
    }

    /// Pure voting rule: classification from a set of received vectors.
    ///
    /// Non-`n`-bit vectors have already been discarded by the caller.
    pub fn tally(n: usize, vectors: &[&BitVec]) -> BitVec {
        let threshold = Self::threshold(n);
        let mut c = BitVec::zeros(n);
        for j in 0..n {
            let votes = vectors.iter().filter(|v| v.get(j)).count();
            if votes >= threshold {
                c.set(j, true);
            }
        }
        c
    }
}

impl Process for Classify {
    type Msg = ClassifyMsg;
    type Output = BitVec;

    fn step(&mut self, round: u64, inbox: &[Envelope<ClassifyMsg>], out: &mut Outbox<ClassifyMsg>) {
        match round {
            0 => out.broadcast(self.prediction.clone()),
            1 => {
                // One vector per sender (first message wins); malformed
                // vectors are discarded, and a sender that failed to send
                // simply contributes no votes (§6: faulty processes "may
                // fail to send an n-bit vector").
                let mut seen: BTreeSet<ProcessId> = BTreeSet::new();
                let mut vectors: Vec<&BitVec> = Vec::with_capacity(self.n);
                for env in inbox {
                    if env.payload.len() == self.n && seen.insert(env.from) {
                        vectors.push(&env.payload);
                    }
                }
                self.out = Some(Self::tally(self.n, &vectors));
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<BitVec> {
        self.out.clone()
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

/// Misclassification accounting against ground truth, used throughout the
/// lemma tests and the experiment harness.
#[derive(Clone, Debug)]
pub struct MisclassificationReport {
    /// Honest processes misclassified (as faulty) by ≥ 1 honest process
    /// — contributes `k_H`.
    pub misclassified_honest: BTreeSet<ProcessId>,
    /// Faulty processes misclassified (as honest) by ≥ 1 honest process
    /// — contributes `k_F`.
    pub misclassified_faulty: BTreeSet<ProcessId>,
}

impl MisclassificationReport {
    /// Computes the report from the honest classification vectors.
    pub fn compute(
        n: usize,
        faulty: &BTreeSet<ProcessId>,
        honest_classifications: &[(ProcessId, &BitVec)],
    ) -> Self {
        let mut mh = BTreeSet::new();
        let mut mf = BTreeSet::new();
        for (owner, c) in honest_classifications {
            debug_assert!(!faulty.contains(owner));
            for j in 0..n {
                let id = ProcessId(j as u32);
                let classified_honest = c.get(j);
                match (classified_honest, faulty.contains(&id)) {
                    (true, true) => {
                        mf.insert(id);
                    }
                    (false, false) => {
                        mh.insert(id);
                    }
                    _ => {}
                }
            }
        }
        MisclassificationReport {
            misclassified_honest: mh,
            misclassified_faulty: mf,
        }
    }

    /// `k_A = k_H + k_F`: the total number of misclassified processes
    /// (each counted once).
    pub fn k_a(&self) -> usize {
        self.misclassified_honest.len() + self.misclassified_faulty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::PredictionMatrix;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};

    fn run_classify(
        n: usize,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
    ) -> Vec<(ProcessId, BitVec)> {
        let honest: std::collections::BTreeMap<ProcessId, Classify> = ProcessId::all(n)
            .filter(|id| !faulty.contains(id))
            .map(|id| (id, Classify::new(id, n, matrix.row(id).clone())))
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(4);
        report.outputs.into_iter().collect()
    }

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn threshold_is_strict_majority() {
        assert_eq!(Classify::threshold(4), 3, "⌈5/2⌉ = 3");
        assert_eq!(Classify::threshold(5), 3);
        assert_eq!(Classify::threshold(6), 4);
        assert_eq!(Classify::threshold(7), 4);
    }

    #[test]
    fn perfect_predictions_classify_perfectly() {
        let n = 7;
        let f = faults(&[2, 5]);
        let m = PredictionMatrix::perfect(n, &f);
        let outs = run_classify(n, &f, &m);
        for (_, c) in &outs {
            for j in 0..n {
                assert_eq!(c.get(j), !f.contains(&ProcessId(j as u32)));
            }
        }
        let refs: Vec<(ProcessId, &BitVec)> = outs.iter().map(|(i, c)| (*i, c)).collect();
        let report = MisclassificationReport::compute(n, &f, &refs);
        assert_eq!(report.k_a(), 0);
    }

    #[test]
    fn observation1_faulty_needs_majority_of_wrong_bits() {
        // n = 7, f = 1 (p6). To misclassify p6 as honest at some honest
        // process, ⌈(n+1)/2⌉ − f = 4 − 1 = 3 honest rows must wrongly
        // trust it. Two wrong rows are not enough.
        let n = 7;
        let f = faults(&[6]);
        let mut m = PredictionMatrix::perfect(n, &f);
        m.row_mut(ProcessId(0)).set(6, true);
        m.row_mut(ProcessId(1)).set(6, true);
        let outs = run_classify(n, &f, &m);
        for (_, c) in &outs {
            assert!(!c.get(6), "two wrong rows cannot flip a faulty process");
        }
        // A third wrong row (plus the faulty vote itself) can.
        m.row_mut(ProcessId(2)).set(6, true);
        let adv_vec = BitVec::ones(n);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ClassifyMsg>| {
            if ctx.round == 0 {
                ctx.broadcast(ProcessId(6), adv_vec.clone());
            }
        });
        let honest: std::collections::BTreeMap<ProcessId, Classify> = ProcessId::all(n)
            .filter(|id| !f.contains(id))
            .map(|id| (id, Classify::new(id, n, m.row(id).clone())))
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(4);
        assert!(
            report.outputs.values().any(|c| c.get(6)),
            "3 wrong honest rows + the faulty vote reach the threshold"
        );
    }

    #[test]
    fn observation2_honest_needs_wrong_bits_to_be_suspected() {
        // n = 7, f = 1: flipping p0 to "faulty" at some process needs
        // ⌈n/2⌉ − f = 3 wrong honest rows (the faulty voter helps by
        // withholding support).
        let n = 7;
        let f = faults(&[6]);
        let mut m = PredictionMatrix::perfect(n, &f);
        for i in [1u32, 2, 3] {
            m.row_mut(ProcessId(i)).set(0, false);
        }
        // Faulty p6 stays silent: p0 receives 6 vectors, 3 say honest.
        let outs = run_classify(n, &f, &m);
        assert!(
            outs.iter().any(|(_, c)| !c.get(0)),
            "3 accusations + silent fault suspend p0 somewhere"
        );
    }

    #[test]
    fn lemma1_bound_on_misclassified_processes() {
        // Random-ish error injection within budget B, then check
        // k_A ≤ B / (⌈n/2⌉ − f).
        let n = 21;
        let f = faults(&[18, 19, 20]);
        for b_budget in [0usize, 5, 10, 20, 40, 80] {
            let mut m = PredictionMatrix::perfect(n, &f);
            // Deterministic error placement: flip bits round-robin across
            // honest rows, concentrated per target to maximize damage.
            let mut remaining = b_budget;
            let mut target = 0usize;
            'outer: while remaining > 0 {
                for row in 0..n - 3 {
                    if remaining == 0 {
                        break 'outer;
                    }
                    let r = ProcessId(row as u32);
                    let bit = m.row(r).get(target);
                    m.row_mut(r).set(target, !bit);
                    remaining -= 1;
                }
                target = (target + 1) % n;
            }
            let b = m.total_errors(&f);
            assert_eq!(b, b_budget);
            let outs = run_classify(n, &f, &m);
            let refs: Vec<(ProcessId, &BitVec)> = outs.iter().map(|(i, c)| (*i, c)).collect();
            let report = MisclassificationReport::compute(n, &f, &refs);
            let denom = n.div_ceil(2) - 3;
            assert!(
                report.k_a() <= b / denom.max(1) + 1,
                "B = {b}: k_A = {} exceeds Lemma 1 bound",
                report.k_a()
            );
        }
    }

    #[test]
    fn malformed_vectors_are_discarded() {
        let n = 5;
        let f = faults(&[4]);
        let m = PredictionMatrix::perfect(n, &f);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, ClassifyMsg>| {
            if ctx.round == 0 {
                // Wrong-length vector: must count as no vote at all.
                ctx.broadcast(ProcessId(4), BitVec::ones(3));
            }
        });
        let honest: std::collections::BTreeMap<ProcessId, Classify> = ProcessId::all(n)
            .filter(|id| !f.contains(id))
            .map(|id| (id, Classify::new(id, n, m.row(id).clone())))
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(4);
        for c in report.outputs.values() {
            assert!(!c.get(4), "malformed vote cannot rescue the faulty process");
            assert!(c.get(0));
        }
    }

    #[test]
    fn one_round_one_broadcast_each() {
        let n = 6;
        let f = BTreeSet::new();
        let m = PredictionMatrix::perfect(n, &f);
        let honest: std::collections::BTreeMap<ProcessId, Classify> = ProcessId::all(n)
            .map(|id| (id, Classify::new(id, n, m.row(id).clone())))
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(4);
        assert_eq!(report.honest_messages, (n * (n - 1)) as u64);
        assert_eq!(report.last_decision_round, Some(1));
    }
}
