//! Suspect-list predictions — an extension beyond the paper (§11 names
//! "other types of predictions" as future work).
//!
//! Real security monitors (the paper's motivating Darktrace/Vectra/Zeek
//! examples) rarely emit a full `n`-bit classification; they emit a
//! *short list of suspects* with the implicit assumption that everyone
//! else is clean — exactly the encoding the paper notes in §1: "a list of
//! processes that appear malicious, with the default assumption that the
//! remainder are honest".
//!
//! [`SuspectList`] is that native format, with a lossless conversion to
//! the classification strings the algorithms consume. Error accounting
//! carries over: a suspect list with `m` wrong entries yields a
//! classification string with exactly `m` wrong bits, so every theorem's
//! `B` budget applies unchanged to suspect-list deployments.

use crate::bitvec::BitVec;
use crate::prediction::PredictionMatrix;
use ba_sim::ProcessId;
use std::collections::BTreeSet;

/// A monitor-style prediction: the identifiers flagged as malicious;
/// everyone absent from the list is implicitly predicted honest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuspectList {
    suspects: BTreeSet<ProcessId>,
}

impl SuspectList {
    /// An empty list (everyone predicted honest).
    pub fn new() -> Self {
        SuspectList {
            suspects: BTreeSet::new(),
        }
    }

    /// Builds from flagged identifiers.
    pub fn from_suspects<I: IntoIterator<Item = ProcessId>>(ids: I) -> Self {
        SuspectList {
            suspects: ids.into_iter().collect(),
        }
    }

    /// Flags `id` as suspicious. Returns whether it was newly flagged.
    pub fn flag(&mut self, id: ProcessId) -> bool {
        self.suspects.insert(id)
    }

    /// Clears a flag. Returns whether it was present.
    pub fn clear(&mut self, id: ProcessId) -> bool {
        self.suspects.remove(&id)
    }

    /// Whether `id` is flagged.
    pub fn is_suspect(&self, id: ProcessId) -> bool {
        self.suspects.contains(&id)
    }

    /// Number of flagged identifiers.
    pub fn len(&self) -> usize {
        self.suspects.len()
    }

    /// Whether the list flags nobody.
    pub fn is_empty(&self) -> bool {
        self.suspects.is_empty()
    }

    /// Iterates over flagged identifiers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.suspects.iter().copied()
    }

    /// The classification prediction string this list encodes for a
    /// system of `n` processes: bit `j` is 0 iff `pⱼ` is flagged.
    pub fn to_prediction(&self, n: usize) -> BitVec {
        let mut bits = BitVec::ones(n);
        for s in &self.suspects {
            if s.index() < n {
                bits.set(s.index(), false);
            }
        }
        bits
    }

    /// Recovers the list encoded by a prediction string.
    pub fn from_prediction(bits: &BitVec) -> Self {
        SuspectList {
            suspects: (0..bits.len())
                .filter(|&i| !bits.get(i))
                .map(|i| ProcessId(i as u32))
                .collect(),
        }
    }

    /// Number of wrong entries relative to a ground-truth fault set:
    /// flagged-but-honest (false positives) plus unflagged-but-faulty
    /// (missed detections). Equals the Hamming error of
    /// [`to_prediction`](Self::to_prediction) against the truth vector.
    pub fn errors(&self, n: usize, faulty: &BTreeSet<ProcessId>) -> usize {
        let fp = self
            .suspects
            .iter()
            .filter(|s| s.index() < n && !faulty.contains(s))
            .count();
        let fnr = faulty
            .iter()
            .filter(|f| f.index() < n && !self.suspects.contains(f))
            .count();
        fp + fnr
    }
}

/// Builds a full prediction matrix from per-process suspect lists (the
/// deployment-shaped entry point: one monitor reading per process).
pub fn matrix_from_suspect_lists(n: usize, lists: &[SuspectList]) -> PredictionMatrix {
    assert_eq!(lists.len(), n, "one suspect list per process");
    PredictionMatrix::from_rows(lists.iter().map(|l| l.to_prediction(n)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn flag_clear_roundtrip() {
        let mut l = SuspectList::new();
        assert!(l.flag(ProcessId(3)));
        assert!(!l.flag(ProcessId(3)), "double flag is idempotent");
        assert!(l.is_suspect(ProcessId(3)));
        assert!(l.clear(ProcessId(3)));
        assert!(l.is_empty());
    }

    #[test]
    fn prediction_encoding_roundtrip() {
        let l = SuspectList::from_suspects([ProcessId(1), ProcessId(4)]);
        let bits = l.to_prediction(6);
        assert!(!bits.get(1) && !bits.get(4));
        assert!(bits.get(0) && bits.get(5));
        assert_eq!(SuspectList::from_prediction(&bits), l);
    }

    #[test]
    fn error_accounting_matches_bitwise_hamming() {
        let f = faults(&[2, 5]);
        // Flags p2 (correct), p0 (false positive), misses p5.
        let l = SuspectList::from_suspects([ProcessId(2), ProcessId(0)]);
        assert_eq!(l.errors(6, &f), 2);
        let truth = crate::ordering::truth_vector(6, &f);
        assert_eq!(l.to_prediction(6).hamming(&truth), 2);
    }

    #[test]
    fn out_of_range_suspects_are_harmless() {
        let l = SuspectList::from_suspects([ProcessId(99)]);
        let bits = l.to_prediction(4);
        assert_eq!(bits.count_ones(), 4);
        assert_eq!(l.errors(4, &BTreeSet::new()), 0);
    }

    #[test]
    fn matrix_from_lists_shapes_correctly() {
        let n = 4;
        let lists: Vec<SuspectList> = (0..n)
            .map(|i| SuspectList::from_suspects([ProcessId((i as u32 + 1) % n as u32)]))
            .collect();
        let m = matrix_from_suspect_lists(n, &lists);
        assert!(!m.row(ProcessId(0)).get(1));
        assert!(m.row(ProcessId(0)).get(0));
    }

    #[test]
    #[should_panic(expected = "one suspect list per process")]
    fn matrix_requires_n_lists() {
        let _ = matrix_from_suspect_lists(3, &[SuspectList::new()]);
    }
}
