//! Property-based verification of Theorem 5 (Algorithm 5) and of the
//! sub-protocol contracts of Algorithms 3 and 4 under randomized
//! Byzantine behaviour.

use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, Value};
use ba_unauth::{
    Alg5Msg, ConcMsg, CoreSetGcMsg, CoreSetGraded, ListenSet, UnauthBaWithClassification,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Random per-recipient chaos over Algorithm 5's message space.
fn alg5_chaos(seed: u64, n: usize, k: usize) -> impl FnMut(&mut AdversaryCtx<'_, Alg5Msg>) {
    move |ctx| {
        let faulty: Vec<ProcessId> = ctx.corrupted.iter().copied().collect();
        for (j, from) in faulty.into_iter().enumerate() {
            for to in ProcessId::all(n) {
                let x = seed
                    .wrapping_mul(0x2545f4914f6cdd1d)
                    .wrapping_add(ctx.round * 131 + j as u64 * 17 + u64::from(to.0));
                let phase = ((ctx.round / 5) as u16).min(2 * k as u16);
                let v = Value(x % 3);
                let msg = match x % 5 {
                    0 => Alg5Msg::GcA {
                        phase,
                        inner: Arc::new(CoreSetGcMsg::Input(v)),
                    },
                    1 => Alg5Msg::GcA {
                        phase,
                        inner: Arc::new(CoreSetGcMsg::Binding(v)),
                    },
                    2 => Alg5Msg::Conc {
                        phase,
                        inner: Arc::new(ConcMsg {
                            value: v,
                            listen: vec![from, ProcessId((x % n as u64) as u32)],
                        }),
                    },
                    3 => Alg5Msg::GcB {
                        phase,
                        inner: Arc::new(CoreSetGcMsg::Input(v)),
                    },
                    _ => Alg5Msg::GcB {
                        phase,
                        inner: Arc::new(CoreSetGcMsg::Binding(v)),
                    },
                };
                if !x.is_multiple_of(7) {
                    ctx.send(from, to, msg);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Theorem 5 under chaos: with f ≤ k faults placed anywhere and the
    /// condition (2k+1)(3k+1) ≤ n − t − k, Algorithm 5 satisfies
    /// Agreement, Strong Unanimity, and the 5(2k+1) round bound.
    #[test]
    fn theorem5_agreement_under_randomized_byzantine(
        seed in 0u64..5_000,
        fault_slots in proptest::collection::btree_set(0u32..16, 0..=1),
        unanimous in proptest::bool::ANY,
    ) {
        let (n, t, k) = (16usize, 1usize, 1usize);
        prop_assume!(fault_slots.len() <= t);
        prop_assert!(UnauthBaWithClassification::condition_holds(n, t, k));
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: BTreeMap<ProcessId, UnauthBaWithClassification> = ProcessId::all(n)
            .filter(|p| !fault_slots.contains(&p.0))
            .enumerate()
            .map(|(slot, id)| {
                let v = if unanimous { Value(6) } else { Value(1 + (slot % 2) as u64) };
                (id, UnauthBaWithClassification::new(id, n, k, v, Arc::clone(&order)))
            })
            .collect();
        let adv = FnAdversary::new(alg5_chaos(seed, n, k));
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(UnauthBaWithClassification::rounds(k) + 2);
        prop_assert!(report.all_decided(), "round bound violated");
        let values: Vec<Value> = report.outputs.values().map(|o| o.value).collect();
        prop_assert!(values.windows(2).all(|w| w[0] == w[1]), "agreement violated: {values:?}");
        if unanimous {
            prop_assert_eq!(values[0], Value(6), "strong unanimity violated");
        }
    }

    /// Algorithm 3's coherence under per-recipient equivocation inside
    /// the listen set: if any honest process returns paper-grade 1 on v,
    /// every honest process returns value v.
    #[test]
    fn alg3_coherence_under_equivocation(
        seed in 0u64..5_000,
        inputs in proptest::collection::vec(1u64..3, 5),
    ) {
        let n = 6usize;
        let k = 1usize;
        let listen: ListenSet = (0..4u32).map(ProcessId).collect();
        // p3 (inside L) is faulty.
        let honest: BTreeMap<ProcessId, CoreSetGraded> = [0u32, 1, 2, 4, 5]
            .into_iter()
            .enumerate()
            .map(|(slot, id)| {
                (
                    ProcessId(id),
                    CoreSetGraded::new(ProcessId(id), n, k, Value(inputs[slot]), listen.clone()),
                )
            })
            .collect();
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ba_unauth::CoreSetGcMsg>| {
            for to in ProcessId::all(n) {
                let x = seed.wrapping_add(ctx.round * 7 + u64::from(to.0));
                let v = Value(1 + x % 2);
                let msg = if ctx.round == 0 {
                    CoreSetGcMsg::Input(v)
                } else {
                    CoreSetGcMsg::Binding(v)
                };
                ctx.send(ProcessId(3), to, msg);
            }
        });
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(4);
        prop_assert!(report.all_decided());
        let outs: Vec<_> = report.outputs.values().collect();
        if let Some(committed) = outs.iter().find(|g| g.paper_grade() == 1) {
            for g in &outs {
                prop_assert_eq!(g.value, committed.value, "coherence violated");
            }
        }
    }

    /// Unconditional bounds of Theorem 5: whatever the fault pattern
    /// (even f > k), every honest process returns within 5(2k+1) rounds
    /// having sent at most 5n messages.
    #[test]
    fn alg5_unconditional_round_and_message_bounds(
        seed in 0u64..2_000,
        f in 0usize..6,
    ) {
        let (n, k) = (16usize, 1usize);
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: BTreeMap<ProcessId, UnauthBaWithClassification> = ProcessId::all(n)
            .skip(f)
            .enumerate()
            .map(|(slot, id)| {
                (id, UnauthBaWithClassification::new(id, n, k, Value(slot as u64), Arc::clone(&order)))
            })
            .collect();
        let adv = FnAdversary::new(alg5_chaos(seed, n, k));
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(UnauthBaWithClassification::rounds(k) + 2);
        prop_assert!(report.all_decided(), "must return within 5(2k+1) rounds even when k is wrong");
        for (&id, &count) in &report.messages_per_process {
            prop_assert!(count <= 5 * n as u64, "{id} sent {count} > 5n");
        }
    }
}
