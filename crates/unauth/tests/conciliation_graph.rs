//! Leader-graph tests for Algorithm 4's evaluation rule: cycles,
//! disconnected components, asymmetric claims, and the `y ∈ L_y`
//! broadcaster filter — each pinned against hand-computed minima.

use ba_sim::{ProcessId, Value};
use ba_unauth::{ConcMsg, Conciliation, ListenSet};
use std::collections::BTreeMap;

fn listen(ids: &[u32]) -> ListenSet {
    ids.iter().copied().map(ProcessId).collect()
}

fn claim(value: u64, ids: &[u32]) -> ConcMsg {
    ConcMsg {
        value: Value(value),
        listen: ids.iter().copied().map(ProcessId).collect(),
    }
}

fn conc() -> Conciliation {
    Conciliation::new(ProcessId(0), 8, 1, Value(500), listen(&[0, 1, 2, 3]))
}

#[test]
fn two_cycles_share_minima_through_cross_edges() {
    // 0 ↔ 1 and 2 ↔ 3, plus edge 1 → 2 (1 ∈ L_2): the {2,3} side sees
    // the {0,1} side's minimum; the {0,1} side does not see back.
    let mut claims = BTreeMap::new();
    claims.insert(ProcessId(0), claim(10, &[0, 1]));
    claims.insert(ProcessId(1), claim(20, &[0, 1]));
    claims.insert(ProcessId(2), claim(5, &[1, 2, 3]));
    claims.insert(ProcessId(3), claim(30, &[2, 3]));
    // m[0] = m[1] = min(10, 20) = 10 (2,3 do not reach 0 or 1).
    // m[2] = m[3] = min(5, 30, 10, 20) = 5.
    // Multiset {10, 10, 5, 5} → plurality tie → smallest = 5.
    assert_eq!(conc().evaluate(&claims), Value(5));
}

#[test]
fn disconnected_singleton_contributes_self_min() {
    let mut claims = BTreeMap::new();
    claims.insert(ProcessId(0), claim(10, &[0]));
    claims.insert(ProcessId(1), claim(3, &[1]));
    claims.insert(ProcessId(2), claim(10, &[2]));
    // Each z only reaches itself: multiset {10, 3, 10} → plurality 10.
    assert_eq!(conc().evaluate(&claims), Value(10));
}

#[test]
fn non_self_broadcasters_feed_edges_but_not_values() {
    // y = 1 claims 1 ∉ L_1: its value must not count, but edges through
    // it still carry *other* reachable values.
    let mut claims = BTreeMap::new();
    claims.insert(ProcessId(0), claim(50, &[0, 1])); // edge 1 → 0
    claims.insert(ProcessId(1), claim(1, &[0, 2])); // 1 ∉ L_1: value 1 void; edges 0→1, 2→1
    claims.insert(ProcessId(2), claim(40, &[2]));
    // Reach(0) = {0, 1, 2} (2→1→0); eligible values (y ∈ L_y): 50, 40 → m[0] = 40.
    // Reach(1) = {0, 1, 2} → m[1] = 40. Reach(2) = {2} → 40.
    assert_eq!(conc().evaluate(&claims), Value(40));
}

#[test]
fn minimum_prefers_reachability_over_magnitude() {
    // The global minimum (held by p3) is NOT reachable into any z ∈ L_i
    // positions that matter... here p3 claims an empty-edge profile: no
    // z lists 3 in its L, so 3 reaches nobody; and 3's own m[3] counts
    // only if 3 ∈ T_i ∩ L_i (it is: 3 ∈ L_me) — reach(3) = {3}, value 1.
    let mut claims = BTreeMap::new();
    claims.insert(ProcessId(0), claim(10, &[0, 1]));
    claims.insert(ProcessId(1), claim(20, &[0, 1]));
    claims.insert(ProcessId(3), claim(1, &[3]));
    // m[0] = m[1] = 10; m[3] = 1 → multiset {10, 10, 1} → plurality 10.
    assert_eq!(conc().evaluate(&claims), Value(10));
}

#[test]
fn claims_outside_own_listen_window_are_not_evaluated() {
    // Senders outside the evaluator's L_i contribute edges/values but
    // get no m[z] entry of their own: z ranges over T_i ∩ L_i.
    let mut claims = BTreeMap::new();
    claims.insert(ProcessId(5), claim(1, &[5])); // 5 ∉ L_me = {0,1,2,3}
    claims.insert(ProcessId(0), claim(10, &[0]));
    // Only z = 0 evaluated → 10 (the 1 from p5 unreachable anyway).
    assert_eq!(conc().evaluate(&claims), Value(10));
}

#[test]
fn empty_claims_fall_back_to_own_input() {
    let claims = BTreeMap::new();
    assert_eq!(conc().evaluate(&claims), Value(500));
}

#[test]
fn self_loop_only_graph_is_stable() {
    // Everyone in a self-loop: m[z] = own value; plurality = smallest
    // most frequent.
    let mut claims = BTreeMap::new();
    for (i, v) in [(0u32, 7u64), (1, 7), (2, 9), (3, 9)] {
        claims.insert(ProcessId(i), claim(v, &[i]));
    }
    assert_eq!(conc().evaluate(&claims), Value(7));
}
