//! Algorithm 3 — Unauthenticated Graded Consensus with Core Set (§7.1).
//!
//! Each process `pᵢ` gets an input `vᵢ`, the error bound `k`, and a listen
//! set `Lᵢ` of `3k + 1` identifiers. Messages from processes outside `Lᵢ`
//! are ignored. Strong Unanimity and Coherence are guaranteed *under the
//! core-set condition*: there exists `G ⊆ H`, `|G| ≥ 2k + 1`, with
//! `G ⊆ Lᵢ` for every honest `pᵢ` (Lemmas 7–9 of the paper; the lemma
//! statements are re-verified in this module's tests and in the crate's
//! property suite).
//!
//! Pseudocode transcription:
//!
//! ```text
//! Round 1: if i ∈ Lᵢ then broadcast vᵢ
//!          Rᵢ ← values received from Lᵢ
//!          bᵢ ← v  if some v occurs ≥ 2k+1 times in Rᵢ, else ⊥
//! Round 2: if i ∈ Lᵢ and bᵢ ≠ ⊥ then broadcast bᵢ
//!          R'ᵢ ← values received from Lᵢ
//!          if bᵢ ≠ ⊥ : return (bᵢ, 1) if bᵢ occurs ≥ 2k+1 times in R'ᵢ
//!                      else (bᵢ, 0)
//!          else      : return (v', 0) if some v' occurs ≥ k+1 times in R'ᵢ
//!                      else (vᵢ, 0)
//! ```
//!
//! Output grades are the paper's two-level `{0, 1}` (exposed through
//! [`ba_graded::Graded`] with grade ∈ {0, 2} so the wrapper-facing
//! convention `paper_grade() = 1 ⇔ grade == 2` is uniform across all
//! graded primitives in this repository).

use crate::ListenSet;
use ba_graded::Graded;
use ba_sim::{distinct_values_by_sender, Envelope, Outbox, Process, Tally, Value, WireSize};

/// Messages of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreSetGcMsg {
    /// Round-1 input broadcast.
    Input(Value),
    /// Round-2 binding broadcast.
    Binding(Value),
}

/// A discriminant byte plus the carried value.
impl WireSize for CoreSetGcMsg {
    fn wire_bytes(&self) -> u64 {
        let (CoreSetGcMsg::Input(v) | CoreSetGcMsg::Binding(v)) = self;
        1 + v.wire_bytes()
    }
}

/// One process's state machine for Algorithm 3.
///
/// # Examples
///
/// ```
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use ba_unauth::{CoreSetGraded, ListenSet};
///
/// // n = 5, k = 1, everyone listens to {0,1,2,3} (3k+1 = 4 ids).
/// let listen: ListenSet = (0..4u32).map(ProcessId).collect();
/// let procs: Vec<_> = (0..5u32)
///     .map(|i| CoreSetGraded::new(ProcessId(i), 5, 1, Value(3), listen.clone()))
///     .collect();
/// let mut runner = Runner::new(5, procs, SilentAdversary);
/// let report = runner.run(4);
/// for g in report.outputs.values() {
///     assert_eq!(g.value, Value(3));
///     assert_eq!(g.paper_grade(), 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct CoreSetGraded {
    me: ba_sim::ProcessId,
    k: usize,
    input: Value,
    listen: ListenSet,
    binding: Option<Value>,
    out: Option<Graded>,
}

impl CoreSetGraded {
    /// Number of communication rounds.
    pub const ROUNDS: u64 = 2;

    /// Creates the state machine.
    ///
    /// `listen` is this process's `Lᵢ`; the guarantees require
    /// `|Lᵢ| = 3k + 1` for every honest process, which is asserted here.
    pub fn new(me: ba_sim::ProcessId, n: usize, k: usize, input: Value, listen: ListenSet) -> Self {
        assert_eq!(listen.len(), 3 * k + 1, "Algorithm 3 requires |L| = 3k + 1");
        assert!(listen.iter().all(|p| p.index() < n));
        CoreSetGraded {
            me,
            k,
            input,
            listen,
            binding: None,
            out: None,
        }
    }

    /// The listen set in use.
    pub fn listen_set(&self) -> &ListenSet {
        &self.listen
    }

    /// The binding `bᵢ` after round 1 (for white-box tests).
    pub fn binding(&self) -> Option<Value> {
        self.binding
    }

    fn tally_from_listen(
        &self,
        inbox: &[Envelope<CoreSetGcMsg>],
        want_binding: bool,
    ) -> Tally<Value> {
        let values = distinct_values_by_sender(inbox, |m| match (m, want_binding) {
            (CoreSetGcMsg::Input(v), false) => Some(*v),
            (CoreSetGcMsg::Binding(v), true) => Some(*v),
            _ => None,
        });
        values
            .into_iter()
            .filter(|(from, _)| self.listen.contains(*from))
            .map(|(_, v)| v)
            .collect()
    }
}

impl Process for CoreSetGraded {
    type Msg = CoreSetGcMsg;
    type Output = Graded;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<CoreSetGcMsg>],
        out: &mut Outbox<CoreSetGcMsg>,
    ) {
        let k = self.k;
        match round {
            0 if self.listen.contains(self.me) => {
                out.broadcast(CoreSetGcMsg::Input(self.input));
            }
            1 => {
                let tally = self.tally_from_listen(inbox, false);
                self.binding = tally.first_reaching(2 * k + 1).copied();
                if self.listen.contains(self.me) {
                    if let Some(b) = self.binding {
                        out.broadcast(CoreSetGcMsg::Binding(b));
                    }
                }
            }
            2 => {
                let tally = self.tally_from_listen(inbox, true);
                let graded = match self.binding {
                    Some(b) => {
                        if tally.count(&b) > 2 * k {
                            Graded::new(b, 2)
                        } else {
                            Graded::new(b, 0)
                        }
                    }
                    None => match tally.first_reaching(k + 1) {
                        Some(&v) => Graded::new(v, 0),
                        None => Graded::new(self.input, 0),
                    },
                };
                self.out = Some(graded);
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Graded> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, SilentAdversary};

    fn listen(ids: &[u32]) -> ListenSet {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(n: usize, k: usize, inputs: &[u64], l: &ListenSet) -> Vec<CoreSetGraded> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| CoreSetGraded::new(ProcessId(i as u32), n, k, Value(v), l.clone()))
            .collect()
    }

    #[test]
    fn lemma8_strong_unanimity() {
        // k = 1, |L| = 4, core G = L (all honest): unanimous inputs return
        // (v, paper-grade 1).
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(6, system(6, 1, &[7; 6], &l), SilentAdversary);
        let report = runner.run(4);
        for g in report.outputs.values() {
            assert_eq!(g.value, Value(7));
            assert_eq!(g.paper_grade(), 1);
        }
    }

    #[test]
    fn lemma7_bindings_agree() {
        // Mixed inputs: at most one value can be bound across all honest
        // processes. Inputs: four 1s among the listen set of five... here
        // k=1, |L|=4. L = {0,1,2,3} inputs 1,1,1,9 → counts: 1×3 ≥ 2k+1=3
        // so binding must be 1 (or none), never 9.
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(5, system(5, 1, &[1, 1, 1, 9, 9], &l), SilentAdversary);
        let report = runner.run(4);
        for g in report.outputs.values() {
            assert_ne!(g.value, Value(9));
        }
    }

    #[test]
    fn lemma9_coherence_under_partial_faults() {
        // n = 6, k = 1, L = {0,1,2,3}; p3 is faulty and equivocates in
        // both rounds. If any honest process returns grade 1 on v, every
        // honest process must return value v.
        let l = listen(&[0, 1, 2, 3]);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, CoreSetGcMsg>| match ctx.round {
            0 => {
                ctx.send(ProcessId(3), ProcessId(0), CoreSetGcMsg::Input(Value(4)));
                ctx.send(ProcessId(3), ProcessId(1), CoreSetGcMsg::Input(Value(4)));
                ctx.send(ProcessId(3), ProcessId(2), CoreSetGcMsg::Input(Value(8)));
            }
            1 => {
                ctx.send(ProcessId(3), ProcessId(2), CoreSetGcMsg::Binding(Value(8)));
            }
            _ => {}
        });
        let honest: Vec<CoreSetGraded> = [4u64, 4, 4, /* p3 faulty */ 0, 4, 4]
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(i, &v)| CoreSetGraded::new(ProcessId(i as u32), 6, 1, Value(v), l.clone()))
            .collect();
        let mut map = std::collections::BTreeMap::new();
        for (slot, p) in honest.into_iter().enumerate() {
            let id = if slot < 3 { slot } else { slot + 1 };
            map.insert(ProcessId(id as u32), p);
        }
        let mut runner = Runner::with_ids(6, map, adv);
        let report = runner.run(4);
        let outs: Vec<&Graded> = report.outputs.values().collect();
        if let Some(committed) = outs.iter().find(|g| g.paper_grade() == 1) {
            assert!(outs.iter().all(|g| g.value == committed.value));
        }
    }

    #[test]
    fn messages_only_from_listen_set_members() {
        // Processes outside L never broadcast; members broadcast at most
        // twice.
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(6, system(6, 1, &[5; 6], &l), SilentAdversary);
        let report = runner.run(4);
        for (id, &count) in &report.messages_per_process {
            if l.contains(*id) {
                assert!(count <= 2 * 5, "member {id} sent {count}");
                assert!(count > 0);
            } else {
                assert_eq!(count, 0, "non-member {id} must stay silent");
            }
        }
    }

    #[test]
    fn ignores_messages_from_outside_listen_set() {
        // A faulty process outside L floods value 9; it must not affect
        // outputs even at the k+1 = 2 adoption threshold.
        let l = listen(&[0, 1, 2, 3]);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, CoreSetGcMsg>| {
            if ctx.round <= 1 {
                ctx.broadcast(ProcessId(4), CoreSetGcMsg::Input(Value(9)));
                ctx.broadcast(ProcessId(4), CoreSetGcMsg::Binding(Value(9)));
                ctx.broadcast(ProcessId(5), CoreSetGcMsg::Binding(Value(9)));
            }
        });
        let mut runner = Runner::new(6, system(6, 1, &[2, 2, 2, 2], &l), adv);
        let report = runner.run(4);
        for g in report.outputs.values() {
            assert_eq!((g.value, g.paper_grade()), (Value(2), 1));
        }
    }

    #[test]
    fn adoption_path_uses_k_plus_1_threshold() {
        // p4 (outside L, honest, input 0) has binding = None and must
        // adopt the value echoed by ≥ k+1 listen-set members.
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(5, system(5, 1, &[6, 6, 6, 6, 0], &l), SilentAdversary);
        let report = runner.run(4);
        let g4 = &report.outputs[&ProcessId(4)];
        assert_eq!(g4.value, Value(6));
    }

    #[test]
    #[should_panic(expected = "3k + 1")]
    fn wrong_listen_set_size_rejected() {
        let _ = CoreSetGraded::new(ProcessId(0), 5, 1, Value(0), listen(&[0, 1, 2]));
    }
}
