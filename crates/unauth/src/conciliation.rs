//! Algorithm 4 — Conciliation with Core Set (§7.2).
//!
//! A single round in which listen-set members broadcast `(vᵢ, Lᵢ)`; every
//! process then builds the *leader graph* on the senders it heard from —
//! an edge `(y, z)` whenever `y ∈ L_z` — and, for each `z ∈ Tᵢ ∩ Lᵢ`,
//! computes `mᵢ[z]`, the minimum input among processes `y` with `y ∈ L_y`
//! that reach `z` in the graph. The returned value is the one occurring
//! most often among `{mᵢ[z]}` (ties toward the smallest value; an empty
//! reachable set contributes nothing, and an empty multiset falls back to
//! the process's own input — both edge cases are documented deviations in
//! `DESIGN.md` §3).
//!
//! Guarantees (Lemmas 10–14), *under the conditions* that every honest
//! `Lᵢ` has size `3k+1`, contains only honest processes, and shares a
//! core `G` (`|G| ≥ 2k+1`, `G ⊆ Lᵢ` for all honest `i`):
//!
//! * **Agreement** — all honest processes return the same value;
//! * **Strong Unanimity** — if all honest inputs equal `v`, they return
//!   `v`.

use crate::ListenSet;
use ba_sim::{Envelope, Outbox, Process, ProcessId, Tally, Value, WireSize};
use std::collections::BTreeMap;

/// The single message of Algorithm 4: a member's input and claimed listen
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcMsg {
    /// The sender's current proposal `v`.
    pub value: Value,
    /// The sender's claimed listen set `L` (sorted identifiers).
    pub listen: Vec<ProcessId>,
}

impl WireSize for ConcMsg {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.listen.wire_bytes()
    }
}

/// One process's state machine for Algorithm 4.
///
/// # Examples
///
/// ```
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use ba_unauth::{Conciliation, ListenSet};
///
/// let listen: ListenSet = (0..4u32).map(ProcessId).collect();
/// let procs: Vec<_> = (0..5u32)
///     .map(|i| Conciliation::new(ProcessId(i), 5, 1, Value(i as u64), listen.clone()))
///     .collect();
/// let mut runner = Runner::new(5, procs, SilentAdversary);
/// let report = runner.run(3);
/// // All listen sets honest and identical: agreement on the minimum
/// // reachable input.
/// assert!(report.agreement());
/// ```
#[derive(Clone, Debug)]
pub struct Conciliation {
    me: ProcessId,
    k: usize,
    input: Value,
    listen: ListenSet,
    out: Option<Value>,
}

impl Conciliation {
    /// Number of communication rounds.
    pub const ROUNDS: u64 = 1;

    /// Creates the state machine (requires `|L| = 3k + 1`).
    pub fn new(me: ProcessId, n: usize, k: usize, input: Value, listen: ListenSet) -> Self {
        assert_eq!(listen.len(), 3 * k + 1, "Algorithm 4 requires |L| = 3k + 1");
        assert!(listen.iter().all(|p| p.index() < n));
        Conciliation {
            me,
            k,
            input,
            listen,
            out: None,
        }
    }

    /// The error bound `k` this instance was configured with.
    pub fn error_bound(&self) -> usize {
        self.k
    }

    /// Computes the conciliation value from the received `(v, L)` claims.
    ///
    /// Exposed for white-box tests of the leader-graph construction.
    pub fn evaluate(&self, claims: &BTreeMap<ProcessId, ConcMsg>) -> Value {
        // T_i: senders we heard from. E_i: (y, z) with y ∈ L_z.
        // Predecessor list per z (for reverse reachability).
        let preds: BTreeMap<ProcessId, Vec<ProcessId>> = claims
            .iter()
            .map(|(&z, msg)| {
                let ps = claims
                    .keys()
                    .copied()
                    .filter(|y| *y != z && msg.listen.binary_search(y).is_ok())
                    .collect();
                (z, ps)
            })
            .collect();

        let mut tally: Tally<Value> = Tally::new();
        for z in claims.keys().copied().filter(|z| self.listen.contains(*z)) {
            // Reverse BFS from z: everything that reaches z (reflexively).
            let mut visited: Vec<ProcessId> = vec![z];
            let mut frontier = vec![z];
            while let Some(cur) = frontier.pop() {
                for &y in preds.get(&cur).into_iter().flatten() {
                    if !visited.contains(&y) {
                        visited.push(y);
                        frontier.push(y);
                    }
                }
            }
            // m_i[z] = min input among reaching y with y ∈ L_y.
            let m = visited
                .iter()
                .filter_map(|y| {
                    let claim = &claims[y];
                    claim.listen.binary_search(y).is_ok().then_some(claim.value)
                })
                .min();
            if let Some(m) = m {
                tally.add(m);
            }
        }
        tally.plurality().copied().unwrap_or(self.input)
    }
}

impl Process for Conciliation {
    type Msg = ConcMsg;
    type Output = Value;

    fn step(&mut self, round: u64, inbox: &[Envelope<ConcMsg>], out: &mut Outbox<ConcMsg>) {
        match round {
            0 if self.listen.contains(self.me) => {
                out.broadcast(ConcMsg {
                    value: self.input,
                    listen: self.listen.as_slice().to_vec(),
                });
            }
            1 => {
                // First message per sender wins; listen claims must be
                // sorted for binary search (sort defensively — a faulty
                // sender may claim an unsorted set).
                let mut claims: BTreeMap<ProcessId, ConcMsg> = BTreeMap::new();
                for env in inbox {
                    claims.entry(env.from).or_insert_with(|| {
                        let mut msg = (*env.payload).clone();
                        msg.listen.sort_unstable();
                        msg.listen.dedup();
                        msg
                    });
                }
                self.out = Some(self.evaluate(&claims));
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};

    fn listen(ids: &[u32]) -> ListenSet {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(n: usize, k: usize, inputs: &[u64], l: &ListenSet) -> Vec<Conciliation> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| Conciliation::new(ProcessId(i as u32), n, k, Value(v), l.clone()))
            .collect()
    }

    #[test]
    fn lemma14_strong_unanimity() {
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(5, system(5, 1, &[4; 5], &l), SilentAdversary);
        let report = runner.run(3);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(4)));
    }

    #[test]
    fn lemma13_agreement_with_honest_listen_sets() {
        // Conditions hold (all of L honest, G = L): agreement even with
        // mixed inputs.
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(5, system(5, 1, &[9, 2, 7, 5, 1], &l), SilentAdversary);
        let report = runner.run(3);
        assert!(report.agreement());
        // The min over the strongly-connected core {0..3} is 2; p4's input
        // 1 is outside every listen set and must not win.
        assert_eq!(report.decision(), Some(&Value(2)));
    }

    #[test]
    fn faulty_claims_outside_core_do_not_break_agreement() {
        // p4 (faulty) is outside every honest L, broadcasts a bogus claim
        // listing itself; condition "L_i ⊆ H" still holds for honest sets,
        // so agreement must hold regardless.
        let l = listen(&[0, 1, 2, 3]);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, ConcMsg>| {
            if ctx.round == 0 {
                ctx.broadcast(
                    ProcessId(4),
                    ConcMsg {
                        value: Value(0),
                        listen: vec![ProcessId(4), ProcessId(0)],
                    },
                );
            }
        });
        let mut runner = Runner::new(5, system(5, 1, &[6, 6, 3, 6], &l), adv);
        let report = runner.run(3);
        assert!(report.agreement());
        // p4's self-loop claim reaches no z ∈ L_i of honest processes...
        // it *can* reach z if z's claimed L contains 4 — it doesn't. The
        // bogus minimum 0 must therefore never be returned.
        assert_ne!(report.decision(), Some(&Value(0)));
    }

    #[test]
    fn lemma10_only_broadcasters_in_own_set_count() {
        // A sender y with y ∉ L_y contributes no m-value even if it
        // reaches z. Build claims manually.
        let me = ProcessId(0);
        let conc = Conciliation::new(me, 5, 1, Value(50), listen(&[0, 1, 2, 3]));
        let mut claims = BTreeMap::new();
        // y = 4 claims L = {0,1,2} (4 ∉ L_4): its value 1 must not count.
        claims.insert(
            ProcessId(4),
            ConcMsg {
                value: Value(1),
                listen: vec![ProcessId(0), ProcessId(1), ProcessId(2)],
            },
        );
        // z = 0 claims L containing 4, creating edge (4, 0).
        claims.insert(
            ProcessId(0),
            ConcMsg {
                value: Value(9),
                listen: vec![ProcessId(0), ProcessId(1), ProcessId(4)],
            },
        );
        let v = conc.evaluate(&claims);
        assert_eq!(v, Value(9), "only y ∈ L_y values feed the minimum");
    }

    #[test]
    fn empty_reachable_sets_fall_back_to_own_input() {
        let me = ProcessId(2);
        let conc = Conciliation::new(me, 5, 1, Value(42), listen(&[0, 1, 2, 3]));
        let claims = BTreeMap::new();
        assert_eq!(conc.evaluate(&claims), Value(42));
    }

    #[test]
    fn reachability_is_transitive() {
        // Chain: 3 → 1 → 0 (edges via listen claims); z = 0 must see the
        // input of 3.
        let me = ProcessId(0);
        let conc = Conciliation::new(me, 5, 1, Value(99), listen(&[0, 1, 2, 3]));
        let mut claims = BTreeMap::new();
        claims.insert(
            ProcessId(0),
            ConcMsg {
                value: Value(50),
                listen: vec![ProcessId(0), ProcessId(1)],
            },
        );
        claims.insert(
            ProcessId(1),
            ConcMsg {
                value: Value(60),
                listen: vec![ProcessId(1), ProcessId(3)],
            },
        );
        claims.insert(
            ProcessId(3),
            ConcMsg {
                value: Value(5),
                listen: vec![ProcessId(3)],
            },
        );
        // Reachable into z=0: {0, 1, 3}; all have y ∈ L_y; min = 5.
        // z=1: {1, 3} min 5; z=3: {3} min 5. Plurality = 5.
        assert_eq!(conc.evaluate(&claims), Value(5));
    }

    #[test]
    fn ties_break_toward_smallest_value() {
        let me = ProcessId(0);
        let conc = Conciliation::new(me, 1, 0, Value(7), listen(&[0]));
        // Single-member listen set: one z with min = its own value.
        let mut claims = BTreeMap::new();
        claims.insert(
            ProcessId(0),
            ConcMsg {
                value: Value(3),
                listen: vec![ProcessId(0)],
            },
        );
        assert_eq!(conc.evaluate(&claims), Value(3));
    }

    #[test]
    fn non_members_send_nothing() {
        let l = listen(&[0, 1, 2, 3]);
        let mut runner = Runner::new(6, system(6, 1, &[1; 6], &l), SilentAdversary);
        let report = runner.run(3);
        assert_eq!(report.messages_per_process[&ProcessId(4)], 0);
        assert_eq!(report.messages_per_process[&ProcessId(5)], 0);
    }
}
