//! # ba-unauth — the paper's unauthenticated protocols (§7)
//!
//! Faithful implementations of three algorithms from *Byzantine Agreement
//! with Predictions*:
//!
//! * [`gc_core_set::CoreSetGraded`] — **Algorithm 3**, graded consensus
//!   with a core set: quorum thresholds `2k+1` / `k+1` inside per-process
//!   listen sets `Lᵢ` of size `3k+1`;
//! * [`conciliation::Conciliation`] — **Algorithm 4**, the one-round
//!   leader-graph conciliation that converges honest proposals when the
//!   listen sets are honest and share a core;
//! * [`ba_classification::UnauthBaWithClassification`] — **Algorithm 5**,
//!   the conditional Byzantine agreement that runs `2k+1` phases of
//!   (graded consensus, conciliation, graded consensus) over the priority
//!   blocks of the classification ordering `π(cᵢ)`.
//!
//! The conditional contract (Theorem 5): if `k` upper-bounds the number of
//! misclassified processes and `(2k+1)(3k+1) ≤ n − t − k`, Algorithm 5
//! satisfies Agreement and Strong Unanimity, every honest process returns
//! within `5(2k+1)` rounds, sends at most `5n` messages, and the honest
//! total is `O(nk²)`. With a larger misclassification count the protocol
//! still terminates within `5(2k+1)` rounds but guarantees nothing about
//! the outputs — the guess-and-double wrapper in `ba-core` protects
//! safety in that case.
//!
//! Interestingly (§7), none of this requires `t < n/3`.

pub mod ba_classification;
pub mod conciliation;
pub mod gc_core_set;

pub use ba_classification::{Alg5Msg, Alg5Output, UnauthBaWithClassification};
pub use conciliation::{ConcMsg, Conciliation};
pub use gc_core_set::{CoreSetGcMsg, CoreSetGraded};

use ba_sim::ProcessId;

/// A listen set `Lᵢ`: the `3k+1` identifiers a process listens to in one
/// phase of Algorithm 5 (or one standalone run of Algorithms 3/4).
///
/// Stored sorted; membership queries are `O(log |L|)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListenSet {
    ids: Vec<ProcessId>,
}

impl ListenSet {
    /// Builds a listen set from arbitrary identifiers (sorted,
    /// deduplicated).
    pub fn new(mut ids: Vec<ProcessId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        ListenSet { ids }
    }

    /// Number of identifiers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: ProcessId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Iterates in increasing identifier order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.ids.iter().copied()
    }

    /// The sorted identifiers.
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.ids
    }
}

impl FromIterator<ProcessId> for ListenSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        ListenSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_set_sorts_and_dedups() {
        let l: ListenSet = [3u32, 1, 3, 2].into_iter().map(ProcessId).collect();
        assert_eq!(l.len(), 3);
        assert!(l.contains(ProcessId(2)));
        assert!(!l.contains(ProcessId(0)));
        let ids: Vec<u32> = l.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
