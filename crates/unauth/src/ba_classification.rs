//! Algorithm 5 — Unauthenticated Byzantine Agreement with Classification
//! (§7.3).
//!
//! The conditional agreement protocol: `2k + 1` phases, each using the
//! next block of `3k + 1` identifiers from the classification priority
//! order `π(cᵢ)` as the listen set, and running
//!
//! ```text
//! (vᵢ, gᵢ) ← graded-consensus-with-core-set(vᵢ, k, Lᵢ)    (Algorithm 3)
//! v'ᵢ      ← conciliate(vᵢ, k, Lᵢ)                        (Algorithm 4)
//! if gᵢ = 0 then vᵢ ← v'ᵢ
//! (vᵢ, gᵢ) ← graded-consensus-with-core-set(vᵢ, k, Lᵢ)
//! if decidedᵢ then return decisionᵢ
//! if gᵢ = 1 then { decisionᵢ ← vᵢ ; decidedᵢ ← true }
//! ```
//!
//! per phase (5 rounds: 2 + 1 + 2, with each sub-protocol's output round
//! overlapping the next one's first send, exactly as the paper counts).
//!
//! **Theorem 5.** If `k` bounds the number of misclassified processes and
//! `(2k+1)(3k+1) ≤ n − t − k`, the protocol satisfies Agreement and
//! Strong Unanimity, sends `O(nk²)` messages in total and at most `5n`
//! per process, and every honest process returns within `5(2k+1)` rounds
//! — *even when the bound fails*, only the correctness guarantees are
//! lost, never the round/message bounds.
//!
//! Messages carry `(phase, slot)` tags; an honest process routes a
//! message into a sub-protocol only if the tag matches, so cross-phase
//! replay is inert.

use crate::conciliation::{ConcMsg, Conciliation};
use crate::gc_core_set::{CoreSetGcMsg, CoreSetGraded};
use crate::ListenSet;
use ba_sim::{forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Value, WireSize};
use std::sync::Arc;

/// Tagged messages of Algorithm 5.
#[derive(Clone, Debug)]
pub enum Alg5Msg {
    /// First graded consensus of a phase (line 6).
    GcA {
        /// Phase number (0-based).
        phase: u16,
        /// Algorithm 3 payload.
        inner: Arc<CoreSetGcMsg>,
    },
    /// Conciliation of a phase (line 7).
    Conc {
        /// Phase number (0-based).
        phase: u16,
        /// Algorithm 4 payload.
        inner: Arc<ConcMsg>,
    },
    /// Second graded consensus of a phase (line 9).
    GcB {
        /// Phase number (0-based).
        phase: u16,
        /// Algorithm 3 payload.
        inner: Arc<CoreSetGcMsg>,
    },
}

/// A discriminant byte, the phase tag, and the inner payload.
impl WireSize for Alg5Msg {
    fn wire_bytes(&self) -> u64 {
        match self {
            Alg5Msg::GcA { phase, inner } | Alg5Msg::GcB { phase, inner } => {
                1 + phase.wire_bytes() + inner.wire_bytes()
            }
            Alg5Msg::Conc { phase, inner } => 1 + phase.wire_bytes() + inner.wire_bytes(),
        }
    }
}

/// The result of Algorithm 5 at one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alg5Output {
    /// The value returned (line 10 or line 14 of the pseudocode).
    pub value: Value,
    /// The decided value, if the grade-1 path (lines 11–13) fired.
    pub decision: Option<Value>,
}

/// One process's state machine for Algorithm 5.
pub struct UnauthBaWithClassification {
    me: ProcessId,
    n: usize,
    k: usize,
    order: Arc<Vec<ProcessId>>,
    value: Value,
    decision: Option<Value>,
    gc_a: Option<CoreSetGraded>,
    conc: Option<Conciliation>,
    gc_b: Option<CoreSetGraded>,
    out: Option<Alg5Output>,
}

impl std::fmt::Debug for UnauthBaWithClassification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnauthBaWithClassification")
            .field("me", &self.me)
            .field("k", &self.k)
            .field("value", &self.value)
            .field("decision", &self.decision)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl UnauthBaWithClassification {
    /// Total number of communication rounds: `5(2k + 1)`.
    pub fn rounds(k: usize) -> u64 {
        5 * (2 * k as u64 + 1)
    }

    /// Whether the `2k+1` listen blocks of size `3k+1` fit into `n`
    /// identifiers — the *structural* requirement for running at all.
    /// (The stronger correctness condition is
    /// `(2k+1)(3k+1) ≤ n − t − k`, Theorem 5.)
    pub fn is_structurally_valid(n: usize, k: usize) -> bool {
        (2 * k + 1) * (3 * k + 1) <= n
    }

    /// Whether Theorem 5's correctness precondition
    /// `(2k+1)(3k+1) ≤ n − t − k` holds.
    pub fn condition_holds(n: usize, t: usize, k: usize) -> bool {
        n >= t + k && (2 * k + 1) * (3 * k + 1) <= n - t - k
    }

    /// Creates the state machine for process `me`.
    ///
    /// `order` is the priority ordering `π(cᵢ)` derived from this
    /// process's classification vector (see `ba-core`'s `ordering`
    /// module); `input` is the proposal `xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the order does not list all `n` identifiers exactly
    /// once, or if the listen blocks do not fit
    /// ([`is_structurally_valid`](Self::is_structurally_valid)).
    pub fn new(
        me: ProcessId,
        n: usize,
        k: usize,
        input: Value,
        order: Arc<Vec<ProcessId>>,
    ) -> Self {
        assert_eq!(order.len(), n, "π(c) must order all n identifiers");
        assert!(
            Self::is_structurally_valid(n, k),
            "(2k+1)(3k+1) = {} exceeds n = {n}",
            (2 * k + 1) * (3 * k + 1)
        );
        debug_assert!(
            {
                let mut seen = vec![false; n];
                order.iter().all(|p| {
                    let i = p.index();
                    i < n && !std::mem::replace(&mut seen[i], true)
                })
            },
            "π(c) must be a permutation"
        );
        UnauthBaWithClassification {
            me,
            n,
            k,
            order,
            value: input,
            decision: None,
            gc_a: None,
            conc: None,
            gc_b: None,
            out: None,
        }
    }

    fn listen_for_phase(&self, phase: usize) -> ListenSet {
        let block = 3 * self.k + 1;
        self.order[block * phase..block * (phase + 1)]
            .iter()
            .copied()
            .collect()
    }

    fn phases(&self) -> usize {
        2 * self.k + 1
    }

    /// Drives one sub-protocol step, translating inboxes/outboxes.
    #[allow(clippy::too_many_arguments)]
    fn drive_gc(
        gc: &mut CoreSetGraded,
        local: u64,
        phase: u16,
        slot_is_a: bool,
        inbox: &[Envelope<Alg5Msg>],
        out: &mut Outbox<Alg5Msg>,
        me: ProcessId,
        n: usize,
    ) {
        let sub = sub_inbox(inbox, |m| match (m, slot_is_a) {
            (Alg5Msg::GcA { phase: p, inner }, true) if *p == phase => Some(Arc::clone(inner)),
            (Alg5Msg::GcB { phase: p, inner }, false) if *p == phase => Some(Arc::clone(inner)),
            _ => None,
        });
        let mut sub_out = Outbox::new(me, n);
        gc.step(local, &sub, &mut sub_out);
        forward_sub(sub_out, out, |inner| {
            if slot_is_a {
                Alg5Msg::GcA { phase, inner }
            } else {
                Alg5Msg::GcB { phase, inner }
            }
        });
    }

    fn drive_conc(
        conc: &mut Conciliation,
        local: u64,
        phase: u16,
        inbox: &[Envelope<Alg5Msg>],
        out: &mut Outbox<Alg5Msg>,
        me: ProcessId,
        n: usize,
    ) {
        let sub = sub_inbox(inbox, |m| match m {
            Alg5Msg::Conc { phase: p, inner } if *p == phase => Some(Arc::clone(inner)),
            _ => None,
        });
        let mut sub_out = Outbox::new(me, n);
        conc.step(local, &sub, &mut sub_out);
        forward_sub(sub_out, out, |inner| Alg5Msg::Conc { phase, inner });
    }

    /// Completes the phase's second graded consensus and applies lines
    /// 10–13. Returns `true` if the process returned (line 10).
    fn complete_phase(
        &mut self,
        phase: usize,
        inbox: &[Envelope<Alg5Msg>],
        out: &mut Outbox<Alg5Msg>,
    ) -> bool {
        let mut gc = self.gc_b.take().expect("gc_b live at phase completion");
        Self::drive_gc(&mut gc, 2, phase as u16, false, inbox, out, self.me, self.n);
        let graded = gc.output().expect("Algorithm 3 outputs at step 2");
        self.value = graded.value;
        if let Some(decided) = self.decision {
            // Line 10: already decided in an earlier phase; return now.
            self.out = Some(Alg5Output {
                value: decided,
                decision: self.decision,
            });
            return true;
        }
        if graded.paper_grade() == 1 {
            // Lines 11–13.
            self.decision = Some(graded.value);
        }
        false
    }
}

impl Process for UnauthBaWithClassification {
    type Msg = Alg5Msg;
    type Output = Alg5Output;

    fn step(&mut self, round: u64, inbox: &[Envelope<Alg5Msg>], out: &mut Outbox<Alg5Msg>) {
        if self.out.is_some() {
            return;
        }
        let phase = (round / 5) as usize;
        let off = round % 5;
        if phase > self.phases() || (phase == self.phases() && off > 0) {
            return;
        }

        match off {
            0 => {
                // Finish the previous phase's second graded consensus
                // (its output step overlaps this round), then start this
                // phase's first one.
                if phase > 0 && self.complete_phase(phase - 1, inbox, out) {
                    return;
                }
                if phase == self.phases() {
                    // Line 14: all phases done.
                    self.out = Some(Alg5Output {
                        value: self.value,
                        decision: self.decision,
                    });
                    return;
                }
                let listen = self.listen_for_phase(phase);
                let mut gc = CoreSetGraded::new(self.me, self.n, self.k, self.value, listen);
                Self::drive_gc(&mut gc, 0, phase as u16, true, inbox, out, self.me, self.n);
                self.gc_a = Some(gc);
            }
            1 => {
                let mut gc = self.gc_a.take().expect("gc_a live");
                Self::drive_gc(&mut gc, 1, phase as u16, true, inbox, out, self.me, self.n);
                self.gc_a = Some(gc);
            }
            2 => {
                // gc_a output; conciliation starts with the updated value
                // (line 6 feeding line 7).
                let mut gc = self.gc_a.take().expect("gc_a live");
                Self::drive_gc(&mut gc, 2, phase as u16, true, inbox, out, self.me, self.n);
                let graded = gc.output().expect("Algorithm 3 outputs at step 2");
                self.value = graded.value;
                // Stash the grade inside gc_a slot via re-store: we keep
                // the graded result by re-purposing the decision flow
                // below (grade needed at off 3).
                self.gc_a = Some(gc);
                let listen = self.listen_for_phase(phase);
                let mut conc = Conciliation::new(self.me, self.n, self.k, self.value, listen);
                Self::drive_conc(&mut conc, 0, phase as u16, inbox, out, self.me, self.n);
                self.conc = Some(conc);
            }
            3 => {
                let mut conc = self.conc.take().expect("conc live");
                Self::drive_conc(&mut conc, 1, phase as u16, inbox, out, self.me, self.n);
                let conciliated = conc.output().expect("Algorithm 4 outputs at step 1");
                let gc_a = self.gc_a.take().expect("gc_a holds the phase grade");
                let graded = gc_a.output().expect("already completed");
                // Line 8: adopt the conciliation value at grade 0.
                if graded.paper_grade() == 0 {
                    self.value = conciliated;
                }
                let listen = self.listen_for_phase(phase);
                let mut gc = CoreSetGraded::new(self.me, self.n, self.k, self.value, listen);
                Self::drive_gc(&mut gc, 0, phase as u16, false, inbox, out, self.me, self.n);
                self.gc_b = Some(gc);
            }
            4 => {
                let mut gc = self.gc_b.take().expect("gc_b live");
                Self::drive_gc(&mut gc, 1, phase as u16, false, inbox, out, self.me, self.n);
                self.gc_b = Some(gc);
            }
            _ => unreachable!("off < 5"),
        }
    }

    fn output(&self) -> Option<Alg5Output> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};
    use std::collections::BTreeMap;

    /// Identity ordering = the trivial all-honest classification π(1ⁿ).
    fn identity_order(n: usize) -> Arc<Vec<ProcessId>> {
        Arc::new(ProcessId::all(n).collect())
    }

    fn system(
        n: usize,
        k: usize,
        inputs: &[u64],
        order: &Arc<Vec<ProcessId>>,
    ) -> Vec<UnauthBaWithClassification> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                UnauthBaWithClassification::new(
                    ProcessId(i as u32),
                    n,
                    k,
                    Value(v),
                    Arc::clone(order),
                )
            })
            .collect()
    }

    #[test]
    fn theorem5_strong_unanimity_no_faults() {
        // k = 1: blocks of 4, 3 phases, n = 15 ≥ (2k+1)(3k+1) = 12.
        let n = 15;
        let order = identity_order(n);
        let mut runner = Runner::new(n, system(n, 1, &[6; 15], &order), SilentAdversary);
        let report = runner.run(40);
        assert!(report.all_decided());
        for o in report.outputs.values() {
            assert_eq!(o.value, Value(6));
            assert_eq!(o.decision, Some(Value(6)));
        }
    }

    #[test]
    fn theorem5_agreement_with_mixed_inputs() {
        let n = 15;
        let order = identity_order(n);
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
        let mut runner = Runner::new(n, system(n, 1, &inputs, &order), SilentAdversary);
        let report = runner.run(40);
        assert!(report.all_decided());
        let first = report.outputs.values().next().unwrap().value;
        assert!(report.outputs.values().all(|o| o.value == first));
    }

    #[test]
    fn theorem5_agreement_with_faults_in_first_block() {
        // Two faults sitting in the first listen block (worst placement
        // with the identity order), f = kA = 2 ≤ k = 2.
        // Need (2k+1)(3k+1) = 35 ≤ n - t - k: n = 40, t = 2: 35 ≤ 36 ✓.
        let n = 40;
        let k = 2;
        let order = identity_order(n);
        let honest_inputs: Vec<u64> = (0..n - 2).map(|i| (i % 2) as u64).collect();
        let honest: BTreeMap<ProcessId, UnauthBaWithClassification> = honest_inputs
            .iter()
            .enumerate()
            .map(|(slot, &v)| {
                let id = ProcessId(slot as u32 + 2); // p0, p1 faulty
                (
                    id,
                    UnauthBaWithClassification::new(id, n, k, Value(v), Arc::clone(&order)),
                )
            })
            .collect();
        // The faulty pair equivocates inside the first-phase GC votes.
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, Alg5Msg>| {
            if ctx.round == 0 {
                for from in [0u32, 1] {
                    for to in 0..ctx.n as u32 {
                        let v = Value(u64::from(to % 2));
                        ctx.send(
                            ProcessId(from),
                            ProcessId(to),
                            Alg5Msg::GcA {
                                phase: 0,
                                inner: Arc::new(CoreSetGcMsg::Input(v)),
                            },
                        );
                    }
                }
            }
        });
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(UnauthBaWithClassification::rounds(k) + 2);
        assert!(report.all_decided(), "must return within 5(2k+1) rounds");
        let first = report.outputs.values().next().unwrap().value;
        assert!(
            report.outputs.values().all(|o| o.value == first),
            "agreement under kA ≤ k"
        );
    }

    #[test]
    fn round_bound_holds_even_when_condition_fails() {
        // k = 1 but 5 faults (kA > k): no correctness guarantee, but
        // everyone still returns within 5(2k+1) = 15 rounds.
        let n = 15;
        let k = 1;
        let order = identity_order(n);
        let mut runner = Runner::new(n, system(n, k, &[1; 10], &order), SilentAdversary);
        let report = runner.run(60);
        assert!(report.all_decided());
        assert!(report.last_decision_round.unwrap() <= UnauthBaWithClassification::rounds(k) + 1);
    }

    #[test]
    fn per_process_message_bound_5n() {
        let n = 15;
        let order = identity_order(n);
        let mut runner = Runner::new(n, system(n, 1, &[3; 15], &order), SilentAdversary);
        let report = runner.run(40);
        for (&id, &count) in &report.messages_per_process {
            assert!(count <= 5 * n as u64, "{id} sent {count} > 5n");
        }
    }

    #[test]
    fn only_listen_block_members_ever_send() {
        // Theorem 5's message total O(nk²) comes from at most
        // (2k+1)(3k+1) + k processes sending at all.
        let n = 20;
        let k = 1;
        let order = identity_order(n);
        let mut runner = Runner::new(n, system(n, k, &[9; 20], &order), SilentAdversary);
        let report = runner.run(40);
        let senders = report
            .messages_per_process
            .values()
            .filter(|&&c| c > 0)
            .count();
        assert!(
            senders <= (2 * k + 1) * (3 * k + 1) + k,
            "{senders} senders exceed the Theorem 5 bound"
        );
    }

    #[test]
    fn early_decision_returns_one_phase_later() {
        // Unanimous inputs: decision at the end of phase 1, return at the
        // end of phase 2 (paper Lemma 16) — i.e. around round 10.
        let n = 15;
        let order = identity_order(n);
        let mut runner = Runner::new(n, system(n, 1, &[2; 15], &order), SilentAdversary);
        let report = runner.run(40);
        let last = report.last_decision_round.unwrap();
        assert!(
            last <= 11,
            "unanimity should return by the end of phase 2, got round {last}"
        );
    }

    #[test]
    fn structural_validity_check() {
        assert!(UnauthBaWithClassification::is_structurally_valid(12, 1));
        assert!(!UnauthBaWithClassification::is_structurally_valid(11, 1));
        assert!(UnauthBaWithClassification::condition_holds(40, 2, 2));
        assert!(!UnauthBaWithClassification::condition_holds(20, 6, 2));
    }

    #[test]
    fn cross_phase_replay_is_ignored() {
        // A faulty process replays phase-0 GC traffic tagged for phase 1;
        // honest processes must not route it into live sub-protocols of
        // other phases — unanimity must be preserved.
        let n = 15;
        let order = identity_order(n);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, Alg5Msg>| {
            if ctx.round >= 5 && ctx.round <= 9 {
                ctx.broadcast(
                    ProcessId(14),
                    Alg5Msg::GcA {
                        phase: 0,
                        inner: Arc::new(CoreSetGcMsg::Input(Value(999))),
                    },
                );
            }
        });
        let mut runner = Runner::new(n, system(n, 1, &[4; 14], &order), adv);
        let report = runner.run(40);
        for o in report.outputs.values() {
            assert_eq!(o.value, Value(4));
        }
    }
}
