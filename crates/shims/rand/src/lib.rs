//! Offline shim for the `rand` 0.8 API surface used by this workspace.
//!
//! See `crates/shims/README.md` for why this exists. The generator is
//! SplitMix64 — deterministic per seed, statistically solid for workload
//! generation, and dependency-free. The repository never compares random
//! streams against golden constants, only runs against runs, so the
//! numeric difference from upstream `StdRng` (ChaCha12) is unobservable.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a stream of random bits via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bounds usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing generator methods, blanket-implemented over
/// [`RngCore`] exactly as in `rand` 0.8.
pub trait Rng: RngCore {
    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::draw(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, matching the `rand` 0.8 trait of the same name.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// In-place random reordering, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn bool_draws_are_balanced() {
        let mut rng = StdRng::seed_from_u64(13);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "got {ones}");
    }
}
