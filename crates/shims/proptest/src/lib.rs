//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! See `crates/shims/README.md` for the rationale. Semantics:
//!
//! * Cases are generated from a deterministic per-test stream (FNV hash
//!   of the test path mixed with the attempt index), so failures are
//!   reproducible run over run.
//! * There is **no shrinking**: a failing case panics immediately with
//!   the generated inputs' debug representation.
//! * `prop_assume!` rejects the case; rejected cases are retried with
//!   fresh inputs up to a bounded attempt budget.

use std::fmt::Debug;

/// Deterministic SplitMix64 stream driving all generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream that is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values for one property-test parameter.
///
/// Unlike upstream proptest there is no value tree: `generate` draws a
/// concrete value directly and failures are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $ty
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Full-domain generation for primitive types (`any::<u8>()`).
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the full-domain strategy for a primitive type.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{Strategy, TestRng};

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// Uniform boolean.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection-size specifications accepted by [`collection`] strategies:
/// an exact `usize`, a `Range`, or a `RangeInclusive`.
pub trait SizeRange {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`. The drawn size is an upper
    /// bound: duplicate draws collapse, as in upstream proptest's
    /// best-effort set filling.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates ordered sets of `element` values.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Successful cases required per test.
    pub cases: u32,
    /// Attempt budget multiplier guarding against `prop_assume!` loops.
    pub max_reject_multiplier: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_reject_multiplier: 64,
        }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed; the test panics.
    Fail(String),
}

/// One case's outcome, as reported by the [`proptest!`] expansion.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs.
    Reject,
    /// An assertion failed (message includes the generated inputs).
    Fail(String),
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `case` until `config.cases` passes, panicking on the first
/// failure — or, mirroring upstream's "too many global rejects" abort,
/// when the reject budget is exhausted before reaching the requested
/// case count (a test must never go green on vacuous rejections).
/// Used by [`proptest!`]; not part of the public upstream API.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
) {
    let base = fnv1a(name.as_bytes());
    let mut passes: u32 = 0;
    let max_attempts = u64::from(config.cases) * u64::from(config.max_reject_multiplier.max(1));
    let mut attempt: u64 = 0;
    while passes < config.cases && attempt < max_attempts {
        let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            CaseOutcome::Pass => passes += 1,
            CaseOutcome::Reject => {}
            CaseOutcome::Fail(msg) => {
                panic!("proptest `{name}` failed at attempt {attempt} (seed {seed:#x}):\n{msg}")
            }
        }
        attempt += 1;
    }
    assert!(
        passes >= config.cases,
        "proptest `{name}`: too many rejects — only {passes}/{} cases passed \
         within {max_attempts} attempts (is a prop_assume! unsatisfiable?)",
        config.cases
    );
}

/// Formats generated inputs for failure messages (requires `Debug`).
pub fn describe_inputs<T: Debug>(vals: &T) -> String {
    format!("{vals:?}")
}

/// Seals helper types the macros reference; re-exported for them.
#[doc(hidden)]
pub mod __rt {
    pub use super::{describe_inputs, run_cases, CaseOutcome, Strategy, TestCaseError, TestRng};
}

/// Declares property tests. Supported grammar (the subset this
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)*);
                $crate::__rt::run_cases(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        let __vals = $crate::__rt::Strategy::generate(&__strategy, __rng);
                        let __desc = $crate::__rt::describe_inputs(&__vals);
                        let ($($pat,)*) = __vals;
                        let __result: ::std::result::Result<(), $crate::__rt::TestCaseError> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        match __result {
                            ::std::result::Result::Ok(()) => $crate::__rt::CaseOutcome::Pass,
                            ::std::result::Result::Err($crate::__rt::TestCaseError::Reject(_)) => {
                                $crate::__rt::CaseOutcome::Reject
                            }
                            ::std::result::Result::Err($crate::__rt::TestCaseError::Fail(__m)) => {
                                $crate::__rt::CaseOutcome::Fail(
                                    format!("{__m}\ninputs: {__desc}"),
                                )
                            }
                        }
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The glob import every property test starts with.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0u64..=4).generate(&mut rng);
            assert!(y <= 4);
            let (a, b) = (0u32..8, 10u32..12).generate(&mut rng);
            assert!(a < 8 && (10..12).contains(&b));
        }
    }

    #[test]
    fn collections_honor_size_specs() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 5usize).generate(&mut rng);
            assert_eq!(v.len(), 5);
            let w = crate::collection::vec(0usize..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&w.len()));
            let s = crate::collection::btree_set(0u32..100, 0..=3).generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn oneof_map_and_flat_map_compose() {
        let strat = (1usize..4)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..10, n)))
            .prop_map(|(n, v)| (n, v.len()));
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let (n, len) = strat.generate(&mut rng);
            assert_eq!(n, len);
        }
        let pick = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..100 {
            let x = pick.generate(&mut rng);
            assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro pipeline end to end: config, assume, assert.
        #[test]
        fn macro_end_to_end(x in 0usize..50, flag in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 50, "x = {x} out of range");
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    #[should_panic(expected = "too many rejects")]
    fn all_rejecting_property_is_not_a_vacuous_pass() {
        crate::run_cases(
            ProptestConfig {
                cases: 4,
                max_reject_multiplier: 2,
            },
            "shim::reject_demo",
            |_rng| crate::CaseOutcome::Reject,
        );
    }

    #[test]
    #[should_panic(expected = "failed at attempt")]
    fn failing_property_panics_with_inputs() {
        crate::run_cases(
            ProptestConfig {
                cases: 8,
                ..ProptestConfig::default()
            },
            "shim::fail_demo",
            |_rng| crate::CaseOutcome::Fail(String::from("boom")),
        );
    }
}
