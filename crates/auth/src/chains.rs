//! Committee certificates and message chains (§8.1, Definitions 1–2).
//!
//! A *committee certificate* for `pᵢ` is a set of signatures on
//! `⟨committee, pᵢ⟩` by `t + 1` different processes: since at most `t`
//! processes are faulty, every certificate contains at least one honest
//! signature — i.e. at least one honest process voted `pᵢ` onto the
//! committee.
//!
//! A *message chain* of length `b` for value `x` started by `pₛ` is the
//! Dolev–Strong object: `pₛ`'s signed value, extended link by link, each
//! link adding its signer's committee certificate and a signature over
//! everything before it. A valid chain of length `b` is signed by `b`
//! distinct processes, all of which demonstrably belong to the committee;
//! if at most `k` committee members are faulty, any chain of length
//! `k + 1` carries an honest link — which is what lets Algorithm 6
//! truncate Dolev–Strong to `k + 1` rounds.

use ba_crypto::{Encodable, Encoder, Pki, Signature, SigningKey};
use ba_sim::{Value, WireSize};
use std::collections::BTreeSet;

/// Canonical bytes of the committee-membership statement
/// `⟨committee, p_member⟩` within a session.
pub fn committee_bytes(session: u64, member: u32) -> Vec<u8> {
    let mut e = Encoder::new("committee");
    e.u64(session).u32(member);
    e.finish()
}

/// Canonical bytes a chain link signs: the session, the broadcast
/// instance (= starter identifier), the value, and every prior link
/// signature in order.
pub fn chain_link_bytes(session: u64, inst: u32, value: Value, prior: &[Signature]) -> Vec<u8> {
    let mut e = Encoder::new("chain-link");
    e.u64(session).u32(inst).u64(value.0).seq(prior);
    e.finish()
}

/// A committee certificate (Definition 1): `t + 1` signatures on
/// `⟨committee, p_member⟩` by distinct processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitteeCert {
    /// The certified member.
    pub member: u32,
    /// Signatures by `t + 1` distinct processes.
    pub sigs: Vec<Signature>,
}

impl WireSize for CommitteeCert {
    fn wire_bytes(&self) -> u64 {
        self.member.wire_bytes() + self.sigs.wire_bytes()
    }
}

impl CommitteeCert {
    /// Assembles a certificate from collected votes, using the `t + 1`
    /// smallest signer identifiers (Algorithm 7 line 6).
    ///
    /// Returns `None` if fewer than `t + 1` distinct signers are present.
    pub fn assemble(member: u32, votes: &[Signature], t: usize) -> Option<Self> {
        let mut by_signer: Vec<&Signature> = {
            let mut seen = BTreeSet::new();
            votes.iter().filter(|s| seen.insert(s.signer)).collect()
        };
        by_signer.sort_by_key(|s| s.signer);
        if by_signer.len() < t + 1 {
            return None;
        }
        Some(CommitteeCert {
            member,
            sigs: by_signer[..t + 1].iter().map(|s| **s).collect(),
        })
    }

    /// Verifies the certificate: `t + 1` distinct valid signatures over
    /// the membership statement.
    pub fn verify(&self, session: u64, t: usize, pki: &Pki) -> bool {
        let msg = committee_bytes(session, self.member);
        let mut signers = BTreeSet::new();
        for sig in &self.sigs {
            if !signers.insert(sig.signer) || !pki.verify(&msg, sig) {
                return false;
            }
        }
        signers.len() > t
    }
}

/// One link of a message chain: the signer's committee credential plus
/// its signature over everything before it.
///
/// In [`CommitteeMode::Universal`](crate::bb_committee::CommitteeMode)
/// deployments (every process implicitly certified — used by the
/// truncated-Dolev–Strong early-stopping fallback, substitution S5) the
/// certificate is omitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The signer's committee certificate (`None` in universal mode).
    pub cert: Option<CommitteeCert>,
    /// Signature over [`chain_link_bytes`] of the prefix.
    pub sig: Signature,
}

impl WireSize for ChainLink {
    fn wire_bytes(&self) -> u64 {
        self.cert.wire_bytes() + self.sig.wire_bytes()
    }
}

/// A message chain (Definition 2) for one value started by one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageChain {
    /// The carried value.
    pub value: Value,
    /// Links in extension order; `links[0]` is the starter's.
    pub links: Vec<ChainLink>,
}

impl WireSize for MessageChain {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.links.wire_bytes()
    }
}

impl MessageChain {
    /// Starts a chain of length 1 (Algorithm 6 line 4).
    pub fn start(
        session: u64,
        inst: u32,
        value: Value,
        key: &SigningKey,
        cert: Option<CommitteeCert>,
    ) -> Self {
        debug_assert_eq!(key.id(), inst, "only the sender starts a chain");
        let sig = key.sign(&chain_link_bytes(session, inst, value, &[]));
        MessageChain {
            value,
            links: vec![ChainLink { cert, sig }],
        }
    }

    /// Extends the chain by one link (Algorithm 6 line 10).
    pub fn extend(
        &self,
        session: u64,
        inst: u32,
        key: &SigningKey,
        cert: Option<CommitteeCert>,
    ) -> Self {
        let prior: Vec<Signature> = self.links.iter().map(|l| l.sig).collect();
        let sig = key.sign(&chain_link_bytes(session, inst, self.value, &prior));
        let mut links = self.links.clone();
        links.push(ChainLink { cert, sig });
        MessageChain {
            value: self.value,
            links,
        }
    }

    /// Chain length (number of links / distinct signers required).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain has no links (never valid; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The starter's identifier, if any link exists.
    pub fn starter(&self) -> Option<u32> {
        self.links.first().map(|l| l.sig.signer)
    }

    /// Validates the chain for instance `inst`:
    ///
    /// * the first link is signed by `inst`;
    /// * link signatures cover the growing prefix and verify;
    /// * all signers are distinct;
    /// * when `require_certs` is set, every link carries a valid
    ///   committee certificate for its signer.
    pub fn verify(
        &self,
        session: u64,
        inst: u32,
        t: usize,
        require_certs: bool,
        pki: &Pki,
    ) -> bool {
        if self.links.is_empty() {
            return false;
        }
        if self.links[0].sig.signer != inst {
            return false;
        }
        let mut signers = BTreeSet::new();
        let mut prior: Vec<Signature> = Vec::with_capacity(self.links.len());
        for link in &self.links {
            if !signers.insert(link.sig.signer) {
                return false;
            }
            match (&link.cert, require_certs) {
                (Some(cert), true)
                    if (cert.member != link.sig.signer || !cert.verify(session, t, pki)) =>
                {
                    return false;
                }
                (None, true) => return false,
                _ => {}
            }
            if !pki.verify(
                &chain_link_bytes(session, inst, self.value, &prior),
                &link.sig,
            ) {
                return false;
            }
            prior.push(link.sig);
        }
        true
    }
}

// `Signature` is `Encodable` in ba-crypto; chains rely on that to make
// each link's signed bytes cover the prefix. This blanket check keeps the
// dependency honest at compile time.
const _: fn() = || {
    fn assert_encodable<T: Encodable>() {}
    assert_encodable::<Signature>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn pki() -> Pki {
        Pki::new(6, 77)
    }

    fn cert_for(pki: &Pki, session: u64, member: u32, signers: &[u32]) -> CommitteeCert {
        let votes: Vec<Signature> = signers
            .iter()
            .map(|&s| pki.signing_key(s).sign(&committee_bytes(session, member)))
            .collect();
        CommitteeCert {
            member,
            sigs: votes,
        }
    }

    #[test]
    fn committee_cert_roundtrip() {
        let pki = pki();
        let cert = cert_for(&pki, 1, 2, &[0, 1, 3]);
        assert!(cert.verify(1, 2, &pki));
    }

    #[test]
    fn committee_cert_needs_t_plus_1_distinct() {
        let pki = pki();
        let mut cert = cert_for(&pki, 1, 2, &[0, 1, 3]);
        cert.sigs.pop();
        assert!(!cert.verify(1, 2, &pki), "only t signatures");
        let mut dup = cert_for(&pki, 1, 2, &[0, 1, 3]);
        dup.sigs[2] = dup.sigs[0];
        assert!(!dup.verify(1, 2, &pki), "duplicate signer padding");
    }

    #[test]
    fn committee_cert_binds_member_and_session() {
        let pki = pki();
        let cert = cert_for(&pki, 1, 2, &[0, 1, 3]);
        let stolen = CommitteeCert {
            member: 4,
            sigs: cert.sigs.clone(),
        };
        assert!(!stolen.verify(1, 2, &pki), "cert cannot be re-pointed");
        assert!(!cert.verify(9, 2, &pki), "cert bound to session");
    }

    #[test]
    fn assemble_picks_t_plus_1_smallest_signers() {
        let pki = pki();
        let votes: Vec<Signature> = [5u32, 0, 3, 1]
            .iter()
            .map(|&s| pki.signing_key(s).sign(&committee_bytes(7, 2)))
            .collect();
        let cert = CommitteeCert::assemble(2, &votes, 2).expect("enough votes");
        let signers: Vec<u32> = cert.sigs.iter().map(|s| s.signer).collect();
        assert_eq!(signers, vec![0, 1, 3], "the t+1 smallest identifiers");
        assert!(cert.verify(7, 2, &pki));
        assert!(CommitteeCert::assemble(2, &votes[..2], 2).is_none());
    }

    #[test]
    fn chain_of_length_one_verifies() {
        let pki = pki();
        let cert = cert_for(&pki, 3, 1, &[0, 2, 4]);
        let chain = MessageChain::start(3, 1, Value(8), &pki.signing_key(1), Some(cert));
        assert!(chain.verify(3, 1, 2, true, &pki));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.starter(), Some(1));
    }

    #[test]
    fn extended_chain_verifies_and_binds_prefix() {
        let pki = pki();
        let session = 3;
        let c1 = cert_for(&pki, session, 1, &[0, 2, 4]);
        let c5 = cert_for(&pki, session, 5, &[0, 2, 4]);
        let chain = MessageChain::start(session, 1, Value(8), &pki.signing_key(1), Some(c1));
        let longer = chain.extend(session, 1, &pki.signing_key(5), Some(c5));
        assert!(longer.verify(session, 1, 2, true, &pki));
        assert_eq!(longer.len(), 2);

        // Tampering with the value invalidates every signature.
        let mut tampered = longer.clone();
        tampered.value = Value(9);
        assert!(!tampered.verify(session, 1, 2, true, &pki));
    }

    #[test]
    fn chain_rejects_duplicate_signers() {
        let pki = pki();
        let session = 3;
        let c1 = cert_for(&pki, session, 1, &[0, 2, 4]);
        let chain =
            MessageChain::start(session, 1, Value(8), &pki.signing_key(1), Some(c1.clone()));
        let selfie = chain.extend(session, 1, &pki.signing_key(1), Some(c1));
        assert!(
            !selfie.verify(session, 1, 2, true, &pki),
            "a process cannot extend its own chain to fake length"
        );
    }

    #[test]
    fn chain_rejects_wrong_starter() {
        let pki = pki();
        let session = 3;
        let c2 = cert_for(&pki, session, 2, &[0, 1, 4]);
        let chain = MessageChain::start(session, 2, Value(8), &pki.signing_key(2), Some(c2));
        assert!(
            !chain.verify(session, 1, 2, true, &pki),
            "instance 1 only accepts chains started by p1"
        );
    }

    #[test]
    fn chain_requires_certs_when_mode_demands() {
        let pki = pki();
        let chain = MessageChain::start(3, 1, Value(8), &pki.signing_key(1), None);
        assert!(!chain.verify(3, 1, 2, true, &pki), "missing certificate");
        assert!(chain.verify(3, 1, 2, false, &pki), "universal mode accepts");
    }

    #[test]
    fn chain_rejects_mismatched_cert_owner() {
        let pki = pki();
        let session = 3;
        // p5 presents p1's certificate.
        let c1 = cert_for(&pki, session, 1, &[0, 2, 4]);
        let chain =
            MessageChain::start(session, 1, Value(8), &pki.signing_key(1), Some(c1.clone()));
        let bad = chain.extend(session, 1, &pki.signing_key(5), Some(c1));
        assert!(!bad.verify(session, 1, 2, true, &pki));
    }

    #[test]
    fn forged_middle_link_detected() {
        let pki = pki();
        let session = 3;
        let c1 = cert_for(&pki, session, 1, &[0, 2, 4]);
        let c5 = cert_for(&pki, session, 5, &[0, 2, 4]);
        let c0 = cert_for(&pki, session, 0, &[1, 2, 4]);
        let chain = MessageChain::start(session, 1, Value(8), &pki.signing_key(1), Some(c1));
        let longer = chain
            .extend(session, 1, &pki.signing_key(5), Some(c5))
            .extend(session, 1, &pki.signing_key(0), Some(c0));
        // Excising the middle link breaks the prefix binding.
        let mut cut = longer.clone();
        cut.links.remove(1);
        assert!(!cut.verify(session, 1, 2, true, &pki));
    }
}
