//! # ba-auth — the paper's authenticated protocols (§8)
//!
//! Implements the authenticated half of *Byzantine Agreement with
//! Predictions*:
//!
//! * [`chains`] — committee certificates (Definition 1) and message
//!   chains (Definition 2), the cryptographic objects of §8.1;
//! * [`bb_committee`] — **Algorithm 6**, Byzantine Broadcast with an
//!   Implicit Committee: a Dolev–Strong-style broadcast truncated to
//!   `k + 1` rounds, correct whenever at most `k` committee members are
//!   faulty, plus the batched parallel driver used to run `n` instances
//!   side by side;
//! * [`ba_classification`] — **Algorithm 7**, the authenticated
//!   conditional Byzantine agreement: classification-driven committee
//!   election (first `2k+1` priorities get votes; `t+1` votes make a
//!   certificate), `n` parallel broadcasts among committee members, and a
//!   final certified-plurality round. `k + 3` rounds total.
//!
//! The conditional contract (Theorem 6): if `k` bounds the number of
//! misclassified processes, `2k + 1 ≤ n − t − k`, and `t < n/2`, then
//! Algorithm 7 satisfies Agreement and Strong Unanimity with `O(nk²)`
//! messages; unconditionally it finishes in `k + 3` rounds with `O(n²)`
//! messages sent per process.

pub mod ba_classification;
pub mod bb_committee;
pub mod chains;

pub use ba_classification::{Alg7Msg, AuthBaWithClassification};
pub use bb_committee::{BbConfig, BbInstance, CommitteeMode, ParallelBroadcast};
pub use chains::{chain_link_bytes, committee_bytes, ChainLink, CommitteeCert, MessageChain};
