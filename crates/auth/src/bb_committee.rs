//! Algorithm 6 — Byzantine Broadcast with an Implicit Committee (§8.2).
//!
//! A Dolev–Strong-style broadcast whose participants are the processes
//! holding committee certificates, truncated to `k + 1` rounds. The
//! committee is *implicit*: nobody knows its membership, but any member
//! can prove membership by attaching its certificate. With at most `k`
//! faulty certified processes, any valid chain of length `k + 1` contains
//! an honest link whose broadcast already reached everyone — the crux of
//! Lemma 23 (Committee Agreement).
//!
//! Guarantees (for `|C ∩ F| ≤ k`):
//!
//! * **Committee Agreement** — honest certificate holders return the same
//!   value;
//! * **Validity with Sender Certificate** — an honest certified sender's
//!   value is returned by every honest process;
//! * **Default without Sender Certificate** — no certificate, no chains:
//!   everyone returns `⊥` (Lemma 22).
//!
//! [`CommitteeMode::Universal`] drops the certificates entirely (every
//! process is implicitly certified). Running `n` universal instances in
//! parallel truncated at `k + 1` rounds and taking the plurality is this
//! repository's authenticated early-stopping agreement (substitution S5
//! in `DESIGN.md`): it is a full Dolev–Strong per sender whenever
//! `f ≤ k`, and the guess-and-double wrapper supplies ever larger `k`.

use crate::chains::{CommitteeCert, MessageChain};
use ba_crypto::{Pki, SigningKey};
use ba_sim::{Envelope, Outbox, Process, ProcessId, Value};
use std::sync::Arc;

/// Who counts as a committee member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitteeMode {
    /// Members must attach valid committee certificates (Algorithm 6 as
    /// written; used inside Algorithm 7).
    Certified,
    /// Every process is implicitly a member; chains carry no
    /// certificates (the early-stopping fallback).
    Universal,
}

/// Static parameters of one broadcast instance.
#[derive(Clone, Copy, Debug)]
pub struct BbConfig {
    /// System size.
    pub n: usize,
    /// Global fault bound `t` (certificate threshold is `t + 1`).
    pub t: usize,
    /// Bound on *faulty committee members*; the protocol runs `k + 1`
    /// rounds.
    pub k: usize,
    /// Session tag bound into all signatures.
    pub session: u64,
    /// The designated sender (= instance id).
    pub inst: u32,
    /// Certificate discipline.
    pub mode: CommitteeMode,
}

impl BbConfig {
    fn require_certs(&self) -> bool {
        matches!(self.mode, CommitteeMode::Certified)
    }
}

/// State machine for one broadcast instance at one process, driven by
/// [`ParallelBroadcast`] (or a bespoke test harness).
#[derive(Clone, Debug)]
pub struct BbInstance {
    cfg: BbConfig,
    /// `Xᵢ`: accepted values (at most 2; more are never needed).
    accepted: Vec<Value>,
    /// Chains accepted in the previous round, pending extension.
    pending_extension: Vec<MessageChain>,
}

impl BbInstance {
    /// Creates the instance state.
    pub fn new(cfg: BbConfig) -> Self {
        BbInstance {
            cfg,
            accepted: Vec::new(),
            pending_extension: Vec::new(),
        }
    }

    /// The instance configuration.
    pub fn config(&self) -> &BbConfig {
        &self.cfg
    }

    /// Round-1 send (sender only): start the chain, provided the sender
    /// can prove membership (Algorithm 6 lines 2–4).
    pub fn make_start(
        &mut self,
        key: &SigningKey,
        cert: Option<CommitteeCert>,
        value: Value,
    ) -> Option<MessageChain> {
        debug_assert_eq!(key.id(), self.cfg.inst);
        if self.cfg.require_certs() && cert.is_none() {
            return None;
        }
        self.accepted.push(value);
        Some(MessageChain::start(
            self.cfg.session,
            self.cfg.inst,
            value,
            key,
            cert,
        ))
    }

    /// Ingests a chain received in round `round` (1-based). Only valid
    /// chains of length exactly `round` count (Algorithm 6 lines 5, 11).
    pub fn recv_chain(&mut self, pki: &Pki, round: usize, chain: &MessageChain) {
        if self.accepted.len() >= 2 {
            return; // |Xᵢ| < 2 gate (line 8)
        }
        if chain.len() != round {
            return;
        }
        if self.accepted.contains(&chain.value) {
            return;
        }
        if !chain.verify(
            self.cfg.session,
            self.cfg.inst,
            self.cfg.t,
            self.cfg.require_certs(),
            pki,
        ) {
            return;
        }
        self.accepted.push(chain.value);
        self.pending_extension.push(chain.clone());
    }

    /// Produces the extensions to broadcast this round, if this process
    /// holds a membership credential (Algorithm 6 line 10). Chains
    /// accepted in the final round are never extended (lines 12–13): the
    /// driver simply stops calling this after round `k`.
    pub fn make_extensions(
        &mut self,
        key: &SigningKey,
        cert: Option<CommitteeCert>,
    ) -> Vec<MessageChain> {
        let pending = std::mem::take(&mut self.pending_extension);
        if self.cfg.require_certs() && cert.is_none() {
            return Vec::new();
        }
        pending
            .iter()
            .map(|chain| chain.extend(self.cfg.session, self.cfg.inst, key, cert.clone()))
            .collect()
    }

    /// Final output (Algorithm 6 lines 14–16): the unique accepted value,
    /// or `None` (⊥).
    pub fn finish(&self) -> Option<Value> {
        match self.accepted.as_slice() {
            [x] => Some(*x),
            _ => None,
        }
    }
}

/// Runs `n` broadcast instances (one per potential sender) in parallel
/// with per-round batching: one physical message per ordered pair per
/// round.
///
/// Local step `r` corresponds to Algorithm 6's round `r + 1`; the output
/// (a vector `bb[s]` of `Option<Value>`, indexed by sender) is available
/// after step `k + 1`.
pub struct ParallelBroadcast {
    me: ProcessId,
    n: usize,
    k: usize,
    pki: Arc<Pki>,
    key: SigningKey,
    my_cert: Option<CommitteeCert>,
    my_value: Value,
    instances: Vec<BbInstance>,
    out: Option<Vec<Option<Value>>>,
}

impl std::fmt::Debug for ParallelBroadcast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelBroadcast")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("k", &self.k)
            .field("done", &self.out.is_some())
            .finish_non_exhaustive()
    }
}

/// Batched chain traffic: `(instance, chain)` pairs.
pub type BbBatch = Vec<(u32, MessageChain)>;

impl ParallelBroadcast {
    /// Number of communication rounds: `k + 1`.
    pub fn rounds(k: usize) -> u64 {
        k as u64 + 1
    }

    /// Creates the `n`-instance driver for process `me`.
    ///
    /// `my_cert` is this process's committee certificate (`None` means it
    /// is not on the committee, or universal mode).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        mode: CommitteeMode,
        my_value: Value,
        my_cert: Option<CommitteeCert>,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert_eq!(key.id(), me.0);
        let instances = (0..n as u32)
            .map(|inst| {
                BbInstance::new(BbConfig {
                    n,
                    t,
                    k,
                    session,
                    inst,
                    mode,
                })
            })
            .collect();
        ParallelBroadcast {
            me,
            n,
            k,
            pki,
            key,
            my_cert,
            my_value,
            instances,
            out: None,
        }
    }

    /// The per-sender outputs, if finished.
    pub fn outputs(&self) -> Option<&[Option<Value>]> {
        self.out.as_deref()
    }
}

impl Process for ParallelBroadcast {
    type Msg = BbBatch;
    type Output = Vec<Option<Value>>;

    fn step(&mut self, round: u64, inbox: &[Envelope<BbBatch>], out: &mut Outbox<BbBatch>) {
        let k = self.k as u64;
        if round > k + 1 {
            return;
        }
        // Ingest round-`round` chains (sent in the previous step).
        if round >= 1 {
            for env in inbox {
                for (inst, chain) in env.payload.iter() {
                    if let Some(instance) = self.instances.get_mut(*inst as usize) {
                        instance.recv_chain(&self.pki, round as usize, chain);
                    }
                }
            }
        }
        if round == k + 1 {
            self.out = Some(self.instances.iter().map(|i| i.finish()).collect());
            return;
        }
        let mut batch: BbBatch = Vec::new();
        if round == 0 {
            // Algorithm 6 round 1: start the own instance.
            let me = self.me.0;
            let cert = self.my_cert.clone();
            let value = self.my_value;
            if let Some(chain) = self.instances[self.me.index()].make_start(&self.key, cert, value)
            {
                batch.push((me, chain));
            }
        } else {
            for (i, instance) in self.instances.iter_mut().enumerate() {
                for ext in instance.make_extensions(&self.key, self.my_cert.clone()) {
                    batch.push((i as u32, ext));
                }
            }
        }
        if !batch.is_empty() {
            out.broadcast(batch);
        }
    }

    fn output(&self) -> Option<Vec<Option<Value>>> {
        self.out.clone()
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::committee_bytes;
    use ba_crypto::Signature;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};
    use std::collections::BTreeMap;

    fn cert_for(pki: &Pki, session: u64, member: u32, t: usize) -> CommitteeCert {
        let votes: Vec<Signature> = (0..(t + 1) as u32)
            .map(|s| pki.signing_key(s).sign(&committee_bytes(session, member)))
            .collect();
        CommitteeCert {
            member,
            sigs: votes,
        }
    }

    fn universal_system(
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        inputs: &[u64],
        pki: &Arc<Pki>,
    ) -> Vec<ParallelBroadcast> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                ParallelBroadcast::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    k,
                    session,
                    CommitteeMode::Universal,
                    Value(v),
                    None,
                    Arc::clone(pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn universal_mode_honest_senders_deliver_everywhere() {
        let n = 5;
        let pki = Arc::new(Pki::new(n, 8));
        let mut runner = Runner::new(
            n,
            universal_system(n, 2, 2, 1, &[10, 11, 12, 13, 14], &pki),
            SilentAdversary,
        );
        let report = runner.run(8);
        assert!(report.all_decided());
        for outs in report.outputs.values() {
            for (s, v) in outs.iter().enumerate() {
                assert_eq!(*v, Some(Value(10 + s as u64)));
            }
        }
    }

    #[test]
    fn silent_sender_yields_bottom() {
        let n = 4;
        let pki = Arc::new(Pki::new(n, 8));
        // p3 faulty & silent: its instance must output ⊥ everywhere.
        let mut runner = Runner::new(
            n,
            universal_system(n, 1, 1, 1, &[1, 2, 3], &pki),
            SilentAdversary,
        );
        let report = runner.run(6);
        for outs in report.outputs.values() {
            assert_eq!(outs[3], None);
            assert_eq!(outs[0], Some(Value(1)));
        }
    }

    #[test]
    fn last_round_release_attack_fails_to_split() {
        // Classic Dolev–Strong attack: the faulty sender releases a valid
        // length-(k+1) chain to exactly one process in the last round. The
        // chain must carry k+1 distinct signers; with only f = 1 faulty
        // and k = 1, every such chain has an honest link which already
        // broadcast — so committee agreement must hold.
        let n = 4;
        let t = 1;
        let k = 1;
        let session = 5;
        let pki = Arc::new(Pki::new(n, 21));
        let key3 = pki.signing_key(3);
        // Build a chain of length 2 signed by p3 then... p3 cannot forge a
        // second distinct signer, so the best it can do alone is length 1
        // — deliver it in round 2 (too long/short mismatch) or round 1 to
        // some processes only.
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, BbBatch>| {
            if ctx.round == 0 {
                let chain = MessageChain::start(session, 3, Value(99), &key3, None);
                // Send only to p0: p0 accepts in round 1 and must extend,
                // rescuing agreement.
                ctx.send(ProcessId(3), ProcessId(0), vec![(3, chain)]);
            }
        });
        let mut runner = Runner::new(n, universal_system(n, t, k, session, &[1, 2, 3], &pki), adv);
        let report = runner.run(6);
        let views: Vec<_> = report.outputs.values().cloned().collect();
        // All honest processes agree on instance 3's output.
        assert!(views.windows(2).all(|w| w[0][3] == w[1][3]));
        assert_eq!(views[0][3], Some(Value(99)), "the rescued value delivers");
    }

    #[test]
    fn equivocating_sender_detected_yields_bottom() {
        // The faulty sender starts two chains with different values; both
        // propagate, everyone accepts both, |X| = 2 → ⊥ everywhere.
        let n = 4;
        let session = 5;
        let pki = Arc::new(Pki::new(n, 21));
        let key3 = pki.signing_key(3);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, BbBatch>| {
            if ctx.round == 0 {
                let a = MessageChain::start(session, 3, Value(100), &key3, None);
                let b = MessageChain::start(session, 3, Value(200), &key3, None);
                ctx.broadcast(ProcessId(3), vec![(3, a), (3, b)]);
            }
        });
        let mut runner = Runner::new(n, universal_system(n, 1, 1, session, &[1, 2, 3], &pki), adv);
        let report = runner.run(6);
        for outs in report.outputs.values() {
            assert_eq!(outs[3], None, "equivocation must collapse to ⊥");
        }
    }

    #[test]
    fn certified_mode_rejects_uncertified_chains() {
        // In certified mode a sender without a certificate produces
        // nothing acceptable (Lemma 22).
        let n = 4;
        let t = 1;
        let session = 2;
        let pki = Arc::new(Pki::new(n, 3));
        let mk = |i: u32, cert: Option<CommitteeCert>| {
            ParallelBroadcast::new(
                ProcessId(i),
                n,
                t,
                1,
                session,
                CommitteeMode::Certified,
                Value(i as u64 + 5),
                cert,
                Arc::clone(&pki),
                pki.signing_key(i),
            )
        };
        // Only p0 and p1 hold certificates.
        let procs = vec![
            mk(0, Some(cert_for(&pki, session, 0, t))),
            mk(1, Some(cert_for(&pki, session, 1, t))),
            mk(2, None),
            mk(3, None),
        ];
        let mut runner = Runner::new(n, procs, SilentAdversary);
        let report = runner.run(6);
        for outs in report.outputs.values() {
            assert_eq!(outs[0], Some(Value(5)));
            assert_eq!(outs[1], Some(Value(6)));
            assert_eq!(outs[2], None, "no certificate, no delivery");
            assert_eq!(outs[3], None);
        }
    }

    #[test]
    fn forged_certificate_chains_are_ignored() {
        // The adversary invents a certificate signed only by itself.
        let n = 4;
        let t = 1;
        let session = 6;
        let pki = Arc::new(Pki::new(n, 9));
        let key3 = pki.signing_key(3);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, BbBatch>| {
            if ctx.round == 0 {
                let fake_cert = CommitteeCert {
                    member: 3,
                    sigs: vec![key3.sign(&committee_bytes(session, 3))],
                };
                let chain = MessageChain::start(session, 3, Value(66), &key3, Some(fake_cert));
                ctx.broadcast(ProcessId(3), vec![(3, chain)]);
            }
        });
        let mk = |i: u32| {
            ParallelBroadcast::new(
                ProcessId(i),
                n,
                t,
                1,
                session,
                CommitteeMode::Certified,
                Value(1),
                Some(cert_for(&pki, session, i, t)),
                Arc::clone(&pki),
                pki.signing_key(i),
            )
        };
        let honest: BTreeMap<ProcessId, ParallelBroadcast> =
            (0..3u32).map(|i| (ProcessId(i), mk(i))).collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(6);
        for outs in report.outputs.values() {
            assert_eq!(outs[3], None, "single-signature certificate rejected");
        }
    }

    #[test]
    fn output_arrives_after_k_plus_1_rounds() {
        let n = 5;
        let k = 3;
        let pki = Arc::new(Pki::new(n, 8));
        let mut runner = Runner::new(
            n,
            universal_system(n, 2, k, 1, &[7; 5], &pki),
            SilentAdversary,
        );
        let report = runner.run(10);
        assert_eq!(report.last_decision_round, Some(k as u64 + 1));
    }
}
