//! Algorithm 7 — Authenticated Byzantine Agreement with Classification
//! (§8.3).
//!
//! Round structure (`k + 3` rounds total):
//!
//! 1. **Committee voting.** Each process sends a signed
//!    `⟨committee, pⱼ⟩` to the first `2k + 1` identifiers of its priority
//!    order `π(cᵢ)`. A process collecting `t + 1` votes assembles its
//!    committee certificate from the `t + 1` smallest signer identifiers
//!    (line 6). Lemma 24: if `2k + 1 ≤ n − t − k`, the implicit committee
//!    `C` has `|C| ≤ 3k + 1`, at most `k` faulty members and at least
//!    `k + 1` honest members.
//! 2. **Parallel broadcast** (`k + 1` rounds). Every process participates
//!    in `n` instances of Algorithm 6 with sender `p_s` in instance `s`,
//!    with `k` bounding the faulty committee members.
//! 3. **Certified plurality.** Committee members broadcast the smallest
//!    most-frequent non-⊥ broadcast output together with their
//!    certificate; every process decides the smallest most-frequent value
//!    among certified reports.
//!
//! Theorem 6 (checked by this module's tests and the E6 bench harness):
//! with `kA ≤ k`, `2k+1 ≤ n−t−k`, `t < n/2` the outputs satisfy
//! Agreement and Strong Unanimity; unconditionally every process returns
//! after `k + 3` rounds having sent `O(n)` messages per broadcast it
//! participated in.

use crate::bb_committee::{BbBatch, CommitteeMode, ParallelBroadcast};
use crate::chains::{committee_bytes, CommitteeCert};
use ba_crypto::{Pki, Signature, SigningKey};
use ba_sim::{
    forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Tally, Value, WireSize,
};
use std::sync::Arc;

/// Messages of Algorithm 7.
#[derive(Clone, Debug)]
pub enum Alg7Msg {
    /// Round-1 committee vote: a signature on `⟨committee, recipient⟩`.
    CommitteeVote(Signature),
    /// Batched chain traffic of the `n` parallel broadcasts.
    Chains(Arc<BbBatch>),
    /// Final-round certified plurality report.
    Plurality {
        /// The reported value.
        value: Value,
        /// The reporter's committee certificate.
        cert: CommitteeCert,
    },
}

/// A discriminant byte plus the variant's payload.
impl WireSize for Alg7Msg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            Alg7Msg::CommitteeVote(sig) => sig.wire_bytes(),
            Alg7Msg::Chains(batch) => batch.wire_bytes(),
            Alg7Msg::Plurality { value, cert } => value.wire_bytes() + cert.wire_bytes(),
        }
    }
}

/// One process's state machine for Algorithm 7.
pub struct AuthBaWithClassification {
    me: ProcessId,
    n: usize,
    t: usize,
    k: usize,
    session: u64,
    order: Arc<Vec<ProcessId>>,
    input: Value,
    pki: Arc<Pki>,
    key: SigningKey,
    cert: Option<CommitteeCert>,
    broadcast: Option<ParallelBroadcast>,
    out: Option<Value>,
}

impl std::fmt::Debug for AuthBaWithClassification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthBaWithClassification")
            .field("me", &self.me)
            .field("k", &self.k)
            .field("input", &self.input)
            .field("certified", &self.cert.is_some())
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl AuthBaWithClassification {
    /// Total number of communication rounds: `k + 3`.
    pub fn rounds(k: usize) -> u64 {
        k as u64 + 3
    }

    /// Theorem 6's correctness precondition `2k + 1 ≤ n − t − k` and
    /// `t < n/2`.
    pub fn condition_holds(n: usize, t: usize, k: usize) -> bool {
        2 * t < n && n >= t + k && 2 * k < n - t - k
    }

    /// Creates the state machine for process `me`.
    ///
    /// `order` is the priority ordering `π(cᵢ)`; `session` must be unique
    /// per invocation (binds all signatures).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        input: Value,
        order: Arc<Vec<ProcessId>>,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert_eq!(order.len(), n, "π(c) must order all n identifiers");
        assert!(2 * k < n, "committee votes need 2k + 1 candidates");
        assert_eq!(key.id(), me.0);
        AuthBaWithClassification {
            me,
            n,
            t,
            k,
            session,
            order,
            input,
            pki,
            key,
            cert: None,
            broadcast: None,
            out: None,
        }
    }

    /// This process's committee certificate, if it obtained one.
    pub fn certificate(&self) -> Option<&CommitteeCert> {
        self.cert.as_ref()
    }

    fn drive_broadcast(
        &mut self,
        local: u64,
        inbox: &[Envelope<Alg7Msg>],
        out: &mut Outbox<Alg7Msg>,
    ) {
        let sub = sub_inbox(inbox, |m| match m {
            Alg7Msg::Chains(batch) => Some(Arc::clone(batch)),
            _ => None,
        });
        let mut sub_out = Outbox::new(self.me, self.n);
        let bb = self
            .broadcast
            .as_mut()
            .expect("parallel broadcast live during chain rounds");
        bb.step(local, &sub, &mut sub_out);
        forward_sub(sub_out, out, Alg7Msg::Chains);
    }
}

impl Process for AuthBaWithClassification {
    type Msg = Alg7Msg;
    type Output = Value;

    fn step(&mut self, round: u64, inbox: &[Envelope<Alg7Msg>], out: &mut Outbox<Alg7Msg>) {
        let k = self.k as u64;
        if self.out.is_some() {
            return;
        }
        match round {
            // Round 1: vote for the first 2k+1 priorities (line 3).
            0 => {
                for &cand in self.order.iter().take(2 * self.k + 1) {
                    let sig = self.key.sign(&committee_bytes(self.session, cand.0));
                    out.send(cand, Alg7Msg::CommitteeVote(sig));
                }
            }
            // Round 2 = broadcast round 1: assemble the certificate from
            // received votes (lines 5–6), then start the own instance.
            1 => {
                let votes: Vec<Signature> = inbox
                    .iter()
                    .filter_map(|env| match &*env.payload {
                        Alg7Msg::CommitteeVote(sig)
                            if sig.signer == env.from.0
                                && self
                                    .pki
                                    .verify(&committee_bytes(self.session, self.me.0), sig) =>
                        {
                            Some(*sig)
                        }
                        _ => None,
                    })
                    .collect();
                self.cert = CommitteeCert::assemble(self.me.0, &votes, self.t);
                self.broadcast = Some(ParallelBroadcast::new(
                    self.me,
                    self.n,
                    self.t,
                    self.k,
                    self.session,
                    CommitteeMode::Certified,
                    self.input,
                    self.cert.clone(),
                    Arc::clone(&self.pki),
                    self.key.clone(),
                ));
                self.drive_broadcast(0, inbox, out);
            }
            // Chain rounds 2..=k, and the broadcast output step at k+1,
            // which coincides with the plurality broadcast (line 11).
            r if r >= 2 && r <= k + 2 => {
                let local = r - 1;
                self.drive_broadcast(local, inbox, out);
                if local == k + 1 {
                    let bb = self.broadcast.as_ref().expect("broadcast live");
                    let outputs = bb.outputs().expect("outputs ready after k+1 rounds");
                    if let Some(cert) = &self.cert {
                        // Line 10: smallest non-⊥ value occurring most
                        // often among the broadcast outputs; fall back to
                        // the own input if every instance returned ⊥
                        // (documented deviation, DESIGN.md §3).
                        let tally: Tally<Value> = outputs.iter().flatten().copied().collect();
                        let plurality = tally.plurality().copied().unwrap_or(self.input);
                        out.broadcast(Alg7Msg::Plurality {
                            value: plurality,
                            cert: cert.clone(),
                        });
                    }
                }
            }
            // Final round: certified plurality decision (lines 12–13).
            r if r == k + 3 => {
                let mut tally: Tally<Value> = Tally::new();
                let mut seen: std::collections::BTreeSet<ProcessId> =
                    std::collections::BTreeSet::new();
                for env in inbox {
                    if let Alg7Msg::Plurality { value, cert } = &*env.payload {
                        if cert.member != env.from.0 || !seen.insert(env.from) {
                            continue;
                        }
                        if cert.verify(self.session, self.t, &self.pki) {
                            tally.add(*value);
                        }
                    }
                }
                // Line 13: smallest most-frequent among certified reports;
                // own input if none arrived (documented deviation).
                self.out = Some(tally.plurality().copied().unwrap_or(self.input));
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};
    use std::collections::BTreeMap;

    fn identity_order(n: usize) -> Arc<Vec<ProcessId>> {
        Arc::new(ProcessId::all(n).collect())
    }

    fn system(
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        inputs: &[u64],
        order: &Arc<Vec<ProcessId>>,
        pki: &Arc<Pki>,
    ) -> Vec<AuthBaWithClassification> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                AuthBaWithClassification::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    k,
                    session,
                    Value(v),
                    Arc::clone(order),
                    Arc::clone(pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn theorem6_strong_unanimity_no_faults() {
        // n = 10, t = 3, k = 2: 2k+1 = 5 ≤ n - t - k = 5 ✓.
        let n = 10;
        let (t, k) = (3, 2);
        assert!(AuthBaWithClassification::condition_holds(n, t, k));
        let pki = Arc::new(Pki::new(n, 4));
        let order = identity_order(n);
        let mut runner = Runner::new(
            n,
            system(n, t, k, 1, &[7; 10], &order, &pki),
            SilentAdversary,
        );
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(7)));
        assert_eq!(
            report.last_decision_round,
            Some(AuthBaWithClassification::rounds(k))
        );
    }

    #[test]
    fn theorem6_agreement_mixed_inputs_with_silent_faults() {
        // f = kA = 2 faulty (silent) sitting inside the first 2k+1
        // priorities of the identity order (misclassified as honest).
        let n = 10;
        let (t, k) = (3, 2);
        let pki = Arc::new(Pki::new(n, 4));
        let order = identity_order(n);
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = (2..n as u32)
            .map(|i| {
                (
                    ProcessId(i),
                    AuthBaWithClassification::new(
                        ProcessId(i),
                        n,
                        t,
                        k,
                        1,
                        Value(u64::from(i % 2)),
                        Arc::clone(&order),
                        Arc::clone(&pki),
                        pki.signing_key(i),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement(), "silent committee members tolerated");
    }

    #[test]
    fn equivocating_committee_member_cannot_split() {
        // The faulty process p0 is in everyone's committee prefix; it
        // gets a genuine certificate, then starts two conflicting chains.
        // Committee agreement must still hold via the equivocation → ⊥
        // rule.
        let n = 10;
        let (t, k) = (3, 2);
        let session = 2;
        let pki = Arc::new(Pki::new(n, 14));
        let order = identity_order(n);
        let key0 = pki.signing_key(0);
        let pki_for_adv = Arc::clone(&pki);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, Alg7Msg>| {
            match ctx.round {
                0 => {
                    // Vote like an honest process so others' certificates
                    // are unaffected.
                    for cand in 0..(2 * k + 1) as u32 {
                        let sig = key0.sign(&committee_bytes(session, cand));
                        ctx.send(ProcessId(0), ProcessId(cand), Alg7Msg::CommitteeVote(sig));
                    }
                }
                1 => {
                    // Harvest own certificate from honest votes observed
                    // in round 0? Votes were sent *to* p0 in round 0 and
                    // are in p0's inbox now.
                    let votes: Vec<Signature> = ctx.faulty_inboxes[&ProcessId(0)]
                        .iter()
                        .filter_map(|env| match &*env.payload {
                            Alg7Msg::CommitteeVote(sig) => Some(*sig),
                            _ => None,
                        })
                        .collect();
                    if let Some(cert) = CommitteeCert::assemble(0, &votes, t) {
                        assert!(cert.verify(session, t, &pki_for_adv));
                        use crate::chains::MessageChain;
                        let a =
                            MessageChain::start(session, 0, Value(100), &key0, Some(cert.clone()));
                        let b = MessageChain::start(session, 0, Value(200), &key0, Some(cert));
                        for to in 0..5u32 {
                            ctx.send(
                                ProcessId(0),
                                ProcessId(to),
                                Alg7Msg::Chains(Arc::new(vec![(0, a.clone())])),
                            );
                        }
                        for to in 5..10u32 {
                            ctx.send(
                                ProcessId(0),
                                ProcessId(to),
                                Alg7Msg::Chains(Arc::new(vec![(0, b.clone())])),
                            );
                        }
                    }
                }
                _ => {}
            }
        });
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = (1..n as u32)
            .map(|i| {
                (
                    ProcessId(i),
                    AuthBaWithClassification::new(
                        ProcessId(i),
                        n,
                        t,
                        k,
                        session,
                        Value(4),
                        Arc::clone(&order),
                        Arc::clone(&pki),
                        pki.signing_key(i),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement());
        // Strong unanimity: honest inputs are all 4.
        assert_eq!(report.decision(), Some(&Value(4)));
    }

    #[test]
    fn processes_outside_priority_prefix_get_no_certificate() {
        let n = 10;
        let (t, k) = (3, 2);
        let pki = Arc::new(Pki::new(n, 4));
        let order = identity_order(n);
        let mut runner = Runner::new(
            n,
            system(n, t, k, 1, &[3; 10], &order, &pki),
            SilentAdversary,
        );
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement());
        // White-box: only the first 2k+1 = 5 processes can have collected
        // t+1 votes.
        for i in 0..n as u32 {
            let p = runner.process(ProcessId(i)).unwrap();
            if i < 5 {
                assert!(p.certificate().is_some(), "p{i} should be certified");
            } else {
                assert!(p.certificate().is_none(), "p{i} must not be certified");
            }
        }
    }

    #[test]
    fn round_and_message_bounds_hold_unconditionally() {
        // Even with k too small for the fault pattern, everyone returns
        // after k+3 rounds.
        let n = 12;
        let (t, k) = (5, 1);
        let pki = Arc::new(Pki::new(n, 5));
        let order = identity_order(n);
        let inputs: Vec<u64> = (0..8).map(|i| i % 2).collect();
        let mut runner = Runner::new(
            n,
            system(n, t, k, 1, &inputs, &order, &pki),
            SilentAdversary,
        );
        let report = runner.run(40);
        assert!(report.all_decided());
        assert_eq!(
            report.last_decision_round,
            Some(AuthBaWithClassification::rounds(k))
        );
        // O(n²) unconditional per-process bound (Theorem 6): generous
        // constant-checked version.
        for &c in report.messages_per_process.values() {
            assert!(c <= 2 * (n as u64) * (n as u64));
        }
    }

    #[test]
    fn forged_plurality_reports_are_discarded() {
        // A faulty process without a certificate fabricates a plurality
        // report with a self-signed "certificate"; honest processes must
        // ignore it.
        let n = 10;
        let (t, k) = (3, 2);
        let session = 8;
        let pki = Arc::new(Pki::new(n, 6));
        let order = identity_order(n);
        let key9 = pki.signing_key(9);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, Alg7Msg>| {
            if ctx.round == (k as u64) + 2 {
                let fake = CommitteeCert {
                    member: 9,
                    sigs: vec![key9.sign(&committee_bytes(session, 9))],
                };
                ctx.broadcast(
                    ProcessId(9),
                    Alg7Msg::Plurality {
                        value: Value(666),
                        cert: fake,
                    },
                );
            }
        });
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = (0..9u32)
            .map(|i| {
                (
                    ProcessId(i),
                    AuthBaWithClassification::new(
                        ProcessId(i),
                        n,
                        t,
                        k,
                        session,
                        Value(5),
                        Arc::clone(&order),
                        Arc::clone(&pki),
                        pki.signing_key(i),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert_eq!(report.decision(), Some(&Value(5)));
    }

    #[test]
    fn condition_check_matches_paper() {
        assert!(AuthBaWithClassification::condition_holds(10, 3, 2));
        assert!(
            !AuthBaWithClassification::condition_holds(10, 5, 2),
            "t < n/2 required"
        );
        assert!(
            !AuthBaWithClassification::condition_holds(10, 3, 3),
            "2k+1 ≤ n-t-k violated"
        );
    }
}
