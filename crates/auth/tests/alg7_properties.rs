//! Property-based verification of Theorem 6 (Algorithm 7) and fuzzing of
//! the certificate/chain validation surfaces.

use ba_auth::chains::{chain_link_bytes, committee_bytes, CommitteeCert, MessageChain};
use ba_auth::AuthBaWithClassification;
use ba_crypto::Pki;
use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Theorem 6 with silent fault patterns at any placement and split
    /// or unanimous inputs: agreement, strong unanimity, exactly k+3
    /// rounds.
    #[test]
    fn theorem6_agreement_and_rounds(
        seed in 0u64..5_000,
        fault_slots in proptest::collection::btree_set(0u32..12, 0..=2),
        unanimous in proptest::bool::ANY,
    ) {
        let (n, t, k) = (12usize, 4usize, 2usize);
        prop_assert!(AuthBaWithClassification::condition_holds(n, t, k));
        let pki = Arc::new(Pki::new(n, seed));
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = ProcessId::all(n)
            .filter(|p| !fault_slots.contains(&p.0))
            .enumerate()
            .map(|(slot, id)| {
                let v = if unanimous { Value(8) } else { Value(1 + (slot % 2) as u64) };
                (
                    id,
                    AuthBaWithClassification::new(
                        id, n, t, k, seed, v, Arc::clone(&order),
                        Arc::clone(&pki), pki.signing_key(id.0),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, ba_sim::SilentAdversary);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        prop_assert!(report.agreement(), "agreement violated");
        prop_assert_eq!(report.last_decision_round, Some(AuthBaWithClassification::rounds(k)));
        if unanimous {
            prop_assert_eq!(report.decision(), Some(&Value(8)), "strong unanimity violated");
        }
    }

    /// Forged plurality reports, forged votes, and mis-attributed
    /// certificates never break agreement among honest processes.
    #[test]
    fn alg7_resists_forged_credentials(
        seed in 0u64..5_000,
        junk_value in 0u64..1000,
    ) {
        let (n, t, k) = (12usize, 4usize, 2usize);
        let session = seed;
        let pki = Arc::new(Pki::new(n, seed));
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let bad = ProcessId(11);
        let key = pki.signing_key(bad.0);
        let pki_adv = Arc::clone(&pki);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ba_auth::Alg7Msg>| {
            let _ = &pki_adv;
            // Self-signed "certificate" (1 signature instead of t+1).
            let fake = CommitteeCert {
                member: bad.0,
                sigs: vec![key.sign(&committee_bytes(session, bad.0))],
            };
            if ctx.round == (k as u64) + 2 {
                ctx.broadcast(
                    bad,
                    ba_auth::Alg7Msg::Plurality { value: Value(junk_value), cert: fake.clone() },
                );
            }
            if ctx.round == 1 {
                // Chain with a certificate stolen from another member id.
                let stolen = CommitteeCert { member: 0, sigs: fake.sigs.clone() };
                let chain = MessageChain::start(session, bad.0, Value(junk_value), &key, Some(stolen));
                ctx.broadcast(bad, ba_auth::Alg7Msg::Chains(Arc::new(vec![(bad.0, chain)])));
            }
        });
        let honest: BTreeMap<ProcessId, AuthBaWithClassification> = ProcessId::all(n)
            .filter(|p| *p != bad)
            .map(|id| {
                (
                    id,
                    AuthBaWithClassification::new(
                        id, n, t, k, session, Value(5), Arc::clone(&order),
                        Arc::clone(&pki), pki.signing_key(id.0),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        prop_assert!(report.agreement());
        prop_assert_eq!(report.decision(), Some(&Value(5)), "unanimity must survive forgeries");
    }

    /// Chain-validation fuzz: random mutations of a valid chain
    /// (value, signer order, link excision, cert swaps) never verify.
    #[test]
    fn mutated_chains_never_verify(
        seed in 0u64..10_000,
        mutation in 0u8..5,
    ) {
        let n = 8usize;
        let t = 2usize;
        let session = seed;
        let pki = Pki::new(n, seed);
        let cert_for = |member: u32| {
            let sigs = (0..(t + 1) as u32)
                .map(|s| pki.signing_key(s).sign(&committee_bytes(session, member)))
                .collect();
            CommitteeCert { member, sigs }
        };
        let chain = MessageChain::start(session, 1, Value(4), &pki.signing_key(1), Some(cert_for(1)))
            .extend(session, 1, &pki.signing_key(2), Some(cert_for(2)))
            .extend(session, 1, &pki.signing_key(3), Some(cert_for(3)));
        prop_assert!(chain.verify(session, 1, t, true, &pki));

        let mut bad = chain.clone();
        match mutation {
            0 => bad.value = Value(5),
            1 => { bad.links.remove(1); }
            2 => bad.links.swap(1, 2),
            3 => {
                // Re-point the middle link's certificate at someone else.
                if let Some(cert) = &mut bad.links[1].cert { cert.member = 7; }
            }
            _ => {
                // Forge the final signature from a wrong prefix.
                let prior: Vec<_> = bad.links[..1].iter().map(|l| l.sig).collect();
                bad.links[2].sig = pki
                    .signing_key(3)
                    .sign(&chain_link_bytes(session, 1, bad.value, &prior));
            }
        }
        prop_assert!(!bad.verify(session, 1, t, true, &pki), "mutation {mutation} slipped through");
    }
}
