//! Instance-level tests of the Algorithm 6 state machine: round-exact
//! chain acceptance, the |X| < 2 gate, extension discipline, and the
//! committee-credential gates — driven directly, without the batched
//! scheduler, so each rule is pinned in isolation.

use ba_auth::bb_committee::{BbConfig, BbInstance, CommitteeMode};
use ba_auth::chains::{committee_bytes, CommitteeCert, MessageChain};
use ba_crypto::{Pki, Signature};
use ba_sim::Value;

fn cfg(mode: CommitteeMode) -> BbConfig {
    BbConfig {
        n: 6,
        t: 2,
        k: 2,
        session: 5,
        inst: 0,
        mode,
    }
}

fn pki() -> Pki {
    Pki::new(6, 31)
}

fn cert_for(pki: &Pki, member: u32) -> CommitteeCert {
    let sigs: Vec<Signature> = (0..3u32)
        .map(|s| pki.signing_key(s).sign(&committee_bytes(5, member)))
        .collect();
    CommitteeCert { member, sigs }
}

#[test]
fn sender_without_cert_cannot_start_in_certified_mode() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Certified));
    assert!(inst
        .make_start(&pki.signing_key(0), None, Value(1))
        .is_none());
    // Universal mode: starting without a certificate is the point.
    let mut uni = BbInstance::new(cfg(CommitteeMode::Universal));
    assert!(uni
        .make_start(&pki.signing_key(0), None, Value(1))
        .is_some());
}

#[test]
fn chain_length_must_match_the_round() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    let chain = MessageChain::start(5, 0, Value(7), &pki.signing_key(0), None);
    // A length-1 chain in round 2 is stale and must be ignored.
    inst.recv_chain(&pki, 2, &chain);
    assert_eq!(inst.finish(), None);
    // In round 1 it is accepted.
    inst.recv_chain(&pki, 1, &chain);
    assert_eq!(inst.finish(), Some(Value(7)));
}

#[test]
fn third_value_is_never_recorded() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    let k0 = pki.signing_key(0);
    for v in [1u64, 2, 3] {
        let chain = MessageChain::start(5, 0, Value(v), &k0, None);
        inst.recv_chain(&pki, 1, &chain);
    }
    // |X| = 2 → ⊥; the third chain must not have been buffered either.
    assert_eq!(inst.finish(), None);
    let exts = inst.make_extensions(&pki.signing_key(1), None);
    assert_eq!(exts.len(), 2, "only the first two values are extended");
}

#[test]
fn extensions_extend_by_exactly_one_link() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    let chain = MessageChain::start(5, 0, Value(4), &pki.signing_key(0), None);
    inst.recv_chain(&pki, 1, &chain);
    let exts = inst.make_extensions(&pki.signing_key(2), None);
    assert_eq!(exts.len(), 1);
    assert_eq!(exts[0].len(), 2);
    assert!(exts[0].verify(5, 0, 2, false, &pki));
    // Extensions are consumed: a second call yields nothing.
    assert!(inst.make_extensions(&pki.signing_key(2), None).is_empty());
}

#[test]
fn certified_mode_extension_requires_certificate() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Certified));
    let chain = MessageChain::start(5, 0, Value(4), &pki.signing_key(0), Some(cert_for(&pki, 0)));
    inst.recv_chain(&pki, 1, &chain);
    assert!(
        inst.make_extensions(&pki.signing_key(2), None).is_empty(),
        "no certificate, no extension (Algorithm 6 line 10)"
    );
    let mut inst2 = BbInstance::new(cfg(CommitteeMode::Certified));
    inst2.recv_chain(&pki, 1, &chain);
    let exts = inst2.make_extensions(&pki.signing_key(2), Some(cert_for(&pki, 2)));
    assert_eq!(exts.len(), 1);
    assert!(exts[0].verify(5, 0, 2, true, &pki));
}

#[test]
fn duplicate_value_chains_are_idempotent() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    let chain = MessageChain::start(5, 0, Value(9), &pki.signing_key(0), None);
    inst.recv_chain(&pki, 1, &chain);
    inst.recv_chain(&pki, 1, &chain);
    assert_eq!(inst.finish(), Some(Value(9)));
    // Only one pending extension despite the duplicate.
    assert_eq!(inst.make_extensions(&pki.signing_key(1), None).len(), 1);
}

#[test]
fn wrong_instance_chains_rejected() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    // Chain started by p1, delivered into instance 0.
    let chain = MessageChain::start(5, 1, Value(9), &pki.signing_key(1), None);
    inst.recv_chain(&pki, 1, &chain);
    assert_eq!(inst.finish(), None);
}

#[test]
fn cross_session_chains_rejected() {
    let pki = pki();
    let mut inst = BbInstance::new(cfg(CommitteeMode::Universal));
    let chain = MessageChain::start(6, 0, Value(9), &pki.signing_key(0), None);
    inst.recv_chain(&pki, 1, &chain);
    assert_eq!(inst.finish(), None, "session tag must bind the chain");
}
