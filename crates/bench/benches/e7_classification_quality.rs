//! E7 — Lemma 1: after the Algorithm 2 vote, at most
//! `B / (⌈n/2⌉ − f) = O(B/n)` processes are misclassified by any honest
//! process, across error-placement strategies.

use ba_core::{Classify, MisclassificationReport};
use ba_sim::{ProcessId, Runner, SilentAdversary};
use ba_workloads::{faults, predictions_with_budget, ErrorPlacement, FaultPlacement, Table};
use std::collections::BTreeMap;

fn main() {
    let (n, f) = (41, 6);
    let faulty = faults(n, f, FaultPlacement::Spread);
    let denom = n.div_ceil(2) - f;
    let mut table = Table::new(
        &format!("E7: misclassified processes k_A vs B (n={n}, f={f}, Lemma 1 bound B/{denom})"),
        &["placement", "B", "k_A", "bound", "within"],
    );
    for placement in [
        ErrorPlacement::Uniform,
        ErrorPlacement::Concentrated,
        ErrorPlacement::MissedFaultsOnly,
        ErrorPlacement::FalseAccusationsOnly,
        ErrorPlacement::TrustedFaults,
    ] {
        for budget in [0usize, 25, 50, 100, 200, 400] {
            let matrix = predictions_with_budget(n, &faulty, budget, placement, 5);
            let b = matrix.total_errors(&faulty);
            let honest: BTreeMap<ProcessId, Classify> = ProcessId::all(n)
                .filter(|p| !faulty.contains(p))
                .map(|id| (id, Classify::new(id, n, matrix.row(id).clone())))
                .collect();
            let mut runner = Runner::with_ids(n, honest, SilentAdversary);
            let report = runner.run(3);
            let refs: Vec<(ProcessId, &ba_core::BitVec)> =
                report.outputs.iter().map(|(i, c)| (*i, c)).collect();
            let k_a = MisclassificationReport::compute(n, &faulty, &refs).k_a();
            let bound = b / denom + 1;
            assert!(k_a <= bound, "Lemma 1 violated: {placement:?} B={b}");
            table.row([
                format!("{placement:?}"),
                b.to_string(),
                k_a.to_string(),
                bound.to_string(),
                "true".to_string(),
            ]);
        }
    }
    table.print();
    println!("k_A never exceeds B/(⌈n/2⌉ − f) (+1 rounding): Lemma 1 holds.");
}
