//! E5 — Theorem 5: Algorithm 5 standalone. With `kA ≤ k` and
//! `(2k+1)(3k+1) ≤ n − t − k`: agreement + strong unanimity, return
//! within `5(2k+1)` rounds, ≤ `5n` messages per process, `O(nk²)` total.

use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use ba_unauth::UnauthBaWithClassification;
use ba_workloads::Table;
use std::sync::Arc;

fn main() {
    let mut table = Table::new(
        "E5: Algorithm 5 (unauth conditional BA), f ≤ k, identity order",
        &[
            "n",
            "t",
            "k",
            "rounds(meas)",
            "5(2k+1)",
            "msgs",
            "nk² ref",
            "senders",
            "agree",
        ],
    );
    for (n, t, k, f) in [
        (16usize, 2usize, 1usize, 1usize),
        (40, 2, 2, 2),
        (96, 3, 3, 3),
    ] {
        assert!(UnauthBaWithClassification::condition_holds(n, t, k));
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: std::collections::BTreeMap<ProcessId, _> = ProcessId::all(n)
            .skip(f) // first f identifiers faulty (and silent)
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    UnauthBaWithClassification::new(
                        id,
                        n,
                        k,
                        Value(1 + (slot % 2) as u64),
                        Arc::clone(&order),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(UnauthBaWithClassification::rounds(k) + 2);
        let agree = report.agreement();
        assert!(agree, "Theorem 5 violated at n={n}, k={k}");
        let rounds = report.last_decision_round.expect("all decided");
        assert!(rounds <= UnauthBaWithClassification::rounds(k) + 1);
        let senders = report
            .messages_per_process
            .values()
            .filter(|&&c| c > 0)
            .count();
        let per_process_max = report
            .messages_per_process
            .values()
            .max()
            .copied()
            .unwrap_or(0);
        assert!(per_process_max <= 5 * n as u64, "per-process 5n bound");
        table.row([
            n.to_string(),
            t.to_string(),
            k.to_string(),
            rounds.to_string(),
            UnauthBaWithClassification::rounds(k).to_string(),
            report.honest_messages.to_string(),
            (n * k * k).to_string(),
            senders.to_string(),
            agree.to_string(),
        ]);
    }
    table.print();
    println!("Rounds stay within 5(2k+1); only O(k²) processes ever send.");
}
