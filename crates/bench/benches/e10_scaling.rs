//! E10 — scaling sweeps (not a single theorem; the cross-cutting sanity
//! table): message counts vs `n` at fixed `t/n` must fit the `Θ(n²)`
//! shape from Theorem 14's floor and the wrapper's all-to-all graded
//! consensus; measured rounds must correlate with the `min{B/n + 1, f}`
//! reference curve across a joint (B, f) grid.

use ba_workloads::{
    correlation, fit_power_law, sweep_seeds, ExperimentConfig, InputPattern, Pipeline, Table,
};

fn main() {
    // Message scaling in n (perfect predictions, f = t, multi-seed max).
    let mut msg_tab = Table::new(
        "E10a: message scaling vs n (B = 0, f = t ≈ n/3, unauth, 3 seeds)",
        &["n", "t", "rounds(max)", "msgs(max)", "msgs/n²"],
    );
    let mut samples = Vec::new();
    for n in [16usize, 24, 32, 48, 64] {
        let t = (n - 1) / 3;
        let cfg = ExperimentConfig::new(n, t, t, 0, Pipeline::Unauth)
            .with_inputs(InputPattern::Unanimous(4));
        let s = sweep_seeds(&cfg, 0..3);
        assert!(s.always_agreed && s.always_valid);
        samples.push((n as f64, s.messages_max as f64));
        msg_tab.row([
            n.to_string(),
            t.to_string(),
            s.rounds_max.expect("decided").to_string(),
            s.messages_max.to_string(),
            format!("{:.1}", s.messages_max as f64 / (n * n) as f64),
        ]);
    }
    msg_tab.print();
    // Primary check: Θ(n²) band — the per-n² ratio stays bounded (it
    // decays toward its asymptote because the conditional sub-protocols
    // contribute only O(n) messages at fixed k; the raw power-law fit
    // over small n therefore undershoots 2 and is reported informally).
    for (n, msgs) in &samples {
        let ratio = msgs / (n * n);
        assert!(
            (3.0..=30.0).contains(&ratio),
            "msgs/n² = {ratio:.1} left the quadratic band at n = {n}"
        );
    }
    let p = fit_power_law(&samples).expect("five samples");
    println!("fitted message-scaling exponent: n^{p:.2} (quadratic-dominated; see comment)\n");
    assert!(p > 1.2, "scaling collapsed below quadratic dominance");

    // Rounds vs the min{B/n + 1, f} reference over a (B, f) grid.
    let (n, t) = (40usize, 13usize);
    let mut grid_tab = Table::new(
        &format!("E10b: rounds vs min(B/n + 1, f) reference (auth, n={n}, t={t}, worst case)"),
        &["B", "f", "reference", "rounds"],
    );
    let mut refs = Vec::new();
    let mut meas = Vec::new();
    for f in [2usize, 6, 12] {
        for budget in [0usize, 40, 120, 360] {
            let cfg = ba_bench::worst_case(n, t, f, budget, Pipeline::Auth);
            let out = ba_bench::run_checked(&cfg);
            let reference = ((out.b_actual / n) + 1).min(f.max(1)) as f64;
            refs.push(reference);
            meas.push(out.rounds.expect("checked") as f64);
            grid_tab.row([
                out.b_actual.to_string(),
                f.to_string(),
                format!("{reference:.0}"),
                out.rounds.expect("checked").to_string(),
            ]);
        }
    }
    grid_tab.print();
    let r = correlation(&refs, &meas).expect("grid");
    println!("correlation(rounds, min(B/n+1, f)) = {r:.3} (expected strongly positive)");
    assert!(r > 0.6, "rounds do not track the theorem curve: r = {r:.3}");
}
