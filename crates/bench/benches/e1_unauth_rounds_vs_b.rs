//! E1 — Theorem 11: unauthenticated rounds follow `O(min{B/n + 1, f})`;
//! messages stay near `n² log(·)`.

use ba_bench::{run_checked, worst_case};
use ba_workloads::{round_lower_bound, Pipeline, Table};

fn main() {
    let (n, t, f) = (40, 12, 10);
    let mut table = Table::new(
        &format!("E1: unauth rounds vs B (n={n}, t={t}, f={f}, worst-case adversary)"),
        &["B", "B/n", "k_A", "rounds", "msgs", "msgs/n²", "LB(Thm13)"],
    );
    for budget in [0usize, 10, 20, 40, 80, 160, 320, 640] {
        let cfg = worst_case(n, t, f, budget, Pipeline::Unauth);
        let out = run_checked(&cfg);
        let r = out.rounds.expect("checked");
        table.row([
            out.b_actual.to_string(),
            (out.b_actual / n).to_string(),
            out.k_a.to_string(),
            r.to_string(),
            out.messages.to_string(),
            format!("{:.1}", out.messages as f64 / (n * n) as f64),
            round_lower_bound(n, t, f, out.b_actual).to_string(),
        ]);
    }
    table.print();

    // f-sweep at saturated B: the min{·, f} arm.
    let mut ftab = Table::new(
        &format!("E1b: unauth rounds vs f (B saturated, n={n}, t={t})"),
        &["f", "rounds", "msgs"],
    );
    for fx in [0usize, 1, 2, 4, 8, 12] {
        let cfg = worst_case(n, t, fx, n * n, Pipeline::Unauth);
        let out = run_checked(&cfg);
        ftab.row([
            fx.to_string(),
            out.rounds.expect("checked").to_string(),
            out.messages.to_string(),
        ]);
    }
    ftab.print();
}
