//! E6 — Theorem 6: Algorithm 7 standalone. With `kA ≤ k`,
//! `2k+1 ≤ n − t − k`, `t < n/2`: agreement + strong unanimity in
//! exactly `k + 3` rounds, `O(nk²)` messages.

use ba_auth::AuthBaWithClassification;
use ba_crypto::Pki;
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use ba_workloads::Table;
use std::sync::Arc;

fn main() {
    let mut table = Table::new(
        "E6: Algorithm 7 (auth conditional BA), f ≤ k, identity order",
        &[
            "n",
            "t",
            "k",
            "rounds(meas)",
            "k+3",
            "msgs",
            "nk² ref",
            "agree",
        ],
    );
    for (n, t, k, f) in [
        (10usize, 3usize, 2usize, 2usize),
        (20, 7, 4, 4),
        (40, 13, 8, 8),
        (80, 30, 16, 16),
    ] {
        assert!(AuthBaWithClassification::condition_holds(n, t, k));
        let pki = Arc::new(Pki::new(n, 7));
        let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
        let honest: std::collections::BTreeMap<ProcessId, _> = ProcessId::all(n)
            .skip(f)
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    AuthBaWithClassification::new(
                        id,
                        n,
                        t,
                        k,
                        1,
                        Value(1 + (slot % 2) as u64),
                        Arc::clone(&order),
                        Arc::clone(&pki),
                        pki.signing_key(id.0),
                    ),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(AuthBaWithClassification::rounds(k) + 2);
        assert!(report.agreement(), "Theorem 6 violated at n={n}, k={k}");
        let rounds = report.last_decision_round.expect("all decided");
        assert_eq!(rounds, AuthBaWithClassification::rounds(k), "exactly k+3");
        table.row([
            n.to_string(),
            t.to_string(),
            k.to_string(),
            rounds.to_string(),
            AuthBaWithClassification::rounds(k).to_string(),
            report.honest_messages.to_string(),
            (n * k * k).to_string(),
            report.agreement().to_string(),
        ]);
    }
    table.print();
    println!("Algorithm 7 runs in exactly k+3 rounds across the sweep.");
}
