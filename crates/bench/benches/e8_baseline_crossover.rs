//! E8 — the introduction's promise: with accurate predictions the
//! wrapper beats the prediction-free baselines; with garbage predictions
//! it degrades to the same order, never worse than a constant factor.
//!
//! Baselines and wrappers all run through the same `ProtocolDriver`
//! path: the baseline rows are `Pipeline::PhaseKing` (unauth) and
//! `Pipeline::TruncatedDolevStrong` (auth) under silent faults; the
//! wrapper rows face the worst-case disruptor.

use ba_bench::{baseline, run_checked, worst_case};
use ba_workloads::{grid_to_json, ExperimentConfig, Pipeline, SweepGrid, Table};

/// Prints one baseline row plus its wrapper rows; the wrapper runs at
/// the baseline's own (n, t, f) so the comparison cannot drift apart.
fn crossover_rows(
    table: &mut Table,
    label: &str,
    baseline_cfg: &ExperimentConfig,
    wrapper: Pipeline,
    budgets: &[usize],
) {
    let base_out = run_checked(baseline_cfg);
    let base_rounds = base_out.rounds.expect("checked");
    table.row([
        format!("{} baseline ({label})", baseline_cfg.pipeline.name()),
        "-".to_string(),
        base_rounds.to_string(),
        "1.0×".to_string(),
    ]);
    for &budget in budgets {
        let out = run_checked(&worst_case(
            baseline_cfg.n,
            baseline_cfg.t,
            baseline_cfg.f,
            budget,
            wrapper,
        ));
        let r = out.rounds.expect("checked");
        table.row([
            format!("wrapper ({label})"),
            out.b_actual.to_string(),
            r.to_string(),
            format!("{:.2}×", r as f64 / base_rounds as f64),
        ]);
    }
}

fn main() {
    let (n, t, f) = (40, 12, 10);
    let mut table = Table::new(
        &format!("E8: predictions vs prediction-free baselines (n={n}, t={t}, f={f})"),
        &["system", "B", "rounds", "vs baseline"],
    );
    let budgets = [0usize, 40, n * n];
    crossover_rows(
        &mut table,
        "unauth",
        &baseline(n, t, f, Pipeline::PhaseKing),
        Pipeline::Unauth,
        &budgets,
    );
    let (ta, fa) = (13usize, 12usize);
    crossover_rows(
        &mut table,
        "auth",
        &baseline(n, ta, fa, Pipeline::TruncatedDolevStrong),
        Pipeline::Auth,
        &budgets,
    );
    table.print();
    println!(
        "Accurate predictions win; the baselines face only silent faults here\n\
         while the wrapper rows face the worst-case disruptor, so the garbage-\n\
         prediction rows overstate the wrapper's degradation — the honest\n\
         apples-to-apples comparison is the paper's asymptotic claim."
    );

    // Machine-readable trajectory points from one parallel grid. This
    // is a gentler dataset than the table above: all cells run the
    // base config's Silent adversary (not the disruptor), and the
    // prediction-free baselines collapse to a single B = 0 cell each
    // since they never read the matrix.
    let grid = SweepGrid::new(baseline(24, 7, 5, Pipeline::Unauth))
        .budgets([0, 24, 96])
        .pipelines(Pipeline::ALL)
        .seeds(0..3);
    let points = ba_workloads::sweep_grid(&grid);
    assert!(points.iter().all(|p| p.summary.always_agreed));
    println!("\nE8 grid (JSON):\n{}", grid_to_json(&points));
}
