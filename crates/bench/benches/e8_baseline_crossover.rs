//! E8 — the introduction's promise: with accurate predictions the
//! wrapper beats the prediction-free baselines; with garbage predictions
//! it degrades to the same order, never worse than a constant factor.
//!
//! Baselines: early-stopping phase-king (unauth, `PhaseKing::full`) and
//! full Dolev–Strong (auth, `TruncatedDs::full`).

use ba_bench::{run_checked, worst_case};
use ba_crypto::Pki;
use ba_early::{PhaseKing, TruncatedDs};
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use ba_workloads::{Pipeline, Table};
use std::sync::Arc;

fn baseline_phase_king_rounds(n: usize, t: usize, f: usize) -> u64 {
    let honest: std::collections::BTreeMap<ProcessId, _> = ProcessId::all(n)
        .skip(f)
        .enumerate()
        .map(|(slot, id)| {
            (
                id,
                PhaseKing::full(id, n, t, Value(1 + (slot % 2) as u64)),
            )
        })
        .collect();
    let mut runner = Runner::with_ids(n, honest, SilentAdversary);
    let report = runner.run(PhaseKing::rounds(t + 2) + 2);
    assert!(report.agreement());
    report.last_decision_round.expect("baseline decided")
}

fn baseline_ds_rounds(n: usize, t: usize, f: usize) -> u64 {
    let pki = Arc::new(Pki::new(n, 3));
    let honest: std::collections::BTreeMap<ProcessId, _> = ProcessId::all(n)
        .skip(f)
        .enumerate()
        .map(|(slot, id)| {
            (
                id,
                TruncatedDs::full(
                    id,
                    n,
                    t,
                    1,
                    Value(1 + (slot % 2) as u64),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            )
        })
        .collect();
    let mut runner = Runner::with_ids(n, honest, SilentAdversary);
    let report = runner.run(TruncatedDs::rounds(t) + 2);
    assert!(report.agreement());
    report.last_decision_round.expect("baseline decided")
}

fn main() {
    let (n, t, f) = (40, 12, 10);
    let pk_baseline = baseline_phase_king_rounds(n, t, f);
    let mut table = Table::new(
        &format!("E8: predictions vs prediction-free baselines (n={n}, t={t}, f={f})"),
        &["system", "B", "rounds", "vs baseline"],
    );
    table.row([
        "phase-king baseline (unauth)".to_string(),
        "-".to_string(),
        pk_baseline.to_string(),
        "1.0×".to_string(),
    ]);
    for budget in [0usize, 40, n * n] {
        let out = run_checked(&worst_case(n, t, f, budget, Pipeline::Unauth));
        let r = out.rounds.expect("checked");
        table.row([
            "wrapper (unauth)".to_string(),
            out.b_actual.to_string(),
            r.to_string(),
            format!("{:.2}×", r as f64 / pk_baseline as f64),
        ]);
    }
    let (ta, fa) = (13usize, 12usize);
    let ds_baseline = baseline_ds_rounds(n, ta, fa);
    table.row([
        "Dolev–Strong baseline (auth)".to_string(),
        "-".to_string(),
        ds_baseline.to_string(),
        "1.0×".to_string(),
    ]);
    for budget in [0usize, 40, n * n] {
        let out = run_checked(&worst_case(n, ta, fa, budget, Pipeline::Auth));
        let r = out.rounds.expect("checked");
        table.row([
            "wrapper (auth)".to_string(),
            out.b_actual.to_string(),
            r.to_string(),
            format!("{:.2}×", r as f64 / ds_baseline as f64),
        ]);
    }
    table.print();
    println!(
        "Accurate predictions win; the baselines face only silent faults here\n\
         while the wrapper rows face the worst-case disruptor, so the garbage-\n\
         prediction rows overstate the wrapper's degradation — the honest\n\
         apples-to-apples comparison is the paper's asymptotic claim."
    );
}
