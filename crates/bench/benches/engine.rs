//! Engine microbenchmarks: the substrates' wall-clock costs.
//!
//! The offline container has no `criterion`, so this is a plain timing
//! harness: each benchmark is warmed up, then run for a fixed number of
//! iterations, reporting the per-iteration mean and the fastest
//! observed batch (a serviceable noise floor for a deterministic
//! workload).

use ba_crypto::{hmac_sha256, sha256, Pki};
use ba_graded::UnauthGraded;
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use ba_workloads::Table;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `batches × per_batch` iterations, returning
/// (mean ns/iter, best batch ns/iter).
fn measure<R>(batches: u32, per_batch: u32, mut f: impl FnMut() -> R) -> (f64, f64) {
    for _ in 0..per_batch.min(16) {
        black_box(f());
    }
    let mut total_ns = 0u128;
    let mut best_ns_per_iter = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos();
        total_ns += ns;
        best_ns_per_iter = best_ns_per_iter.min(ns as f64 / f64::from(per_batch));
    }
    let mean = total_ns as f64 / (f64::from(batches) * f64::from(per_batch));
    (mean, best_ns_per_iter)
}

fn main() {
    let mut table = Table::new(
        "engine microbenchmarks (ns/iter)",
        &["benchmark", "mean", "best batch"],
    );

    let data = vec![0xa5u8; 1024];
    let (mean, best) = measure(20, 200, || sha256(black_box(&data)));
    table.row([
        "sha256_1kib".to_string(),
        format!("{mean:.0}"),
        format!("{best:.0}"),
    ]);

    let key = [7u8; 32];
    let msg = vec![1u8; 128];
    let (mean, best) = measure(20, 500, || hmac_sha256(black_box(&key), black_box(&msg)));
    table.row([
        "hmac_sha256_128b".to_string(),
        format!("{mean:.0}"),
        format!("{best:.0}"),
    ]);

    let pki = Pki::new(64, 1);
    let signing_key = pki.signing_key(3);
    let sig = signing_key.sign(b"benchmark message");
    let (mean, best) = measure(20, 500, || {
        pki.verify(black_box(b"benchmark message"), black_box(&sig))
    });
    table.row([
        "pki_verify".to_string(),
        format!("{mean:.0}"),
        format!("{best:.0}"),
    ]);

    let (mean, best) = measure(10, 20, || {
        let n = 32;
        let procs: Vec<_> = (0..n as u32)
            .map(|i| UnauthGraded::new(ProcessId(i), n, 10, Value(u64::from(i % 2))))
            .collect();
        let mut runner = Runner::new(n, procs, SilentAdversary);
        black_box(runner.run(4))
    });
    table.row([
        "unauth_graded_consensus_n32".to_string(),
        format!("{mean:.0}"),
        format!("{best:.0}"),
    ]);

    table.print();
}
