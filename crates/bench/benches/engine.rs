//! Engine microbenchmarks (criterion): the substrates' wall-clock costs.

use ba_crypto::{hmac_sha256, sha256, Pki};
use ba_graded::UnauthGraded;
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("sha256_1kib", |b| {
        b.iter(|| sha256(black_box(&data)));
    });
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = vec![1u8; 128];
    c.bench_function("hmac_sha256_128b", |b| {
        b.iter(|| hmac_sha256(black_box(&key), black_box(&msg)));
    });
}

fn bench_sign_verify(c: &mut Criterion) {
    let pki = Pki::new(64, 1);
    let key = pki.signing_key(3);
    let sig = key.sign(b"benchmark message");
    c.bench_function("pki_verify", |b| {
        b.iter(|| pki.verify(black_box(b"benchmark message"), black_box(&sig)));
    });
}

fn bench_graded_consensus_round(c: &mut Criterion) {
    c.bench_function("unauth_graded_consensus_n32", |b| {
        b.iter(|| {
            let n = 32;
            let procs: Vec<_> = (0..n as u32)
                .map(|i| UnauthGraded::new(ProcessId(i), n, 10, Value(u64::from(i % 2))))
                .collect();
            let mut runner = Runner::new(n, procs, SilentAdversary);
            black_box(runner.run(4))
        });
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_sign_verify,
    bench_graded_consensus_round
);
criterion_main!(benches);
