//! E4 — Theorem 14: `Ω(n + t²)` messages even with 100% correct
//! predictions. Message counts with perfect predictions scale
//! quadratically in `n` (classification alone is `n(n−1)`), and never
//! drop below the `max(⌈n/4⌉, ⌊t/2⌋⌈t/2⌉)` floor from the proof.

use ba_workloads::{message_lower_bound, ExperimentConfig, InputPattern, Pipeline, Table};

fn main() {
    let mut table = Table::new(
        "E4: messages with perfect predictions (B = 0) vs Theorem 14 floor",
        &[
            "n",
            "t",
            "f",
            "pipeline",
            "msgs",
            "msgs/n²",
            "floor",
            "≥ floor",
        ],
    );
    for (n, t) in [(16usize, 5usize), (24, 7), (32, 10), (48, 15), (64, 21)] {
        for (pipeline, f) in [(Pipeline::Unauth, t), (Pipeline::Auth, t)] {
            let cfg =
                ExperimentConfig::new(n, t, f, 0, pipeline).with_inputs(InputPattern::Unanimous(5));
            let out = cfg.run();
            assert!(out.agreement);
            let floor = message_lower_bound(n, t);
            assert!(out.messages >= floor, "below the Dolev–Reischuk floor");
            table.row([
                n.to_string(),
                t.to_string(),
                f.to_string(),
                format!("{pipeline:?}"),
                out.messages.to_string(),
                format!("{:.1}", out.messages as f64 / (n * n) as f64),
                floor.to_string(),
                "true".to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "Perfect predictions do not reduce message complexity below Ω(n + t²):\n\
         the measured counts stay Θ(n²) across the sweep — Theorem 14's point."
    );
}
