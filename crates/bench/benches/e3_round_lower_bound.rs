//! E3 — Theorem 13: the round lower bound
//! `min{f+2, t+1, ⌊B/(n−f)⌋+2, ⌊B/(n−t)⌋+1}` versus measured rounds.
//!
//! The bound is worst-case existential; the check here is that measured
//! worst-case rounds dominate the bound and track its shape (both grow
//! with `B` until the `f` arm caps them).

use ba_bench::{run_checked, worst_case};
use ba_workloads::{round_lower_bound, Pipeline, Table};

fn main() {
    let (n, t, f) = (40, 13, 12);
    let mut table = Table::new(
        &format!("E3: measured rounds vs Theorem 13 bound (n={n}, t={t}, f={f}, auth)"),
        &["B", "LB", "measured", "measured ≥ LB"],
    );
    let mut all_above = true;
    for budget in [0usize, 40, 80, 160, 320, 640, 1600] {
        let cfg = worst_case(n, t, f, budget, Pipeline::Auth);
        let out = run_checked(&cfg);
        let lb = round_lower_bound(n, t, f, out.b_actual);
        let measured = out.rounds.expect("checked");
        all_above &= measured >= lb;
        table.row([
            out.b_actual.to_string(),
            lb.to_string(),
            measured.to_string(),
            (measured >= lb).to_string(),
        ]);
    }
    table.print();
    assert!(all_above, "an execution undercut the lower bound");
    println!("All measured executions dominate the Theorem 13 bound.");
}
