//! E2 — Theorem 12: authenticated rounds follow `O(min{B/n + 1, f})` for
//! *all* `B` (the committee machinery keeps paying up to `B = Θ(n²)`),
//! at `t` beyond `n/3`.

use ba_bench::{run_checked, worst_case};
use ba_workloads::{round_lower_bound, Pipeline, Table};

fn main() {
    let (n, t, f) = (40, 13, 12);
    let mut table = Table::new(
        &format!("E2: auth rounds vs B (n={n}, t={t} > n/3, f={f}, worst-case adversary)"),
        &["B", "B/n", "k_A", "rounds", "msgs", "LB(Thm13)"],
    );
    for budget in [0usize, 10, 20, 40, 80, 160, 320, 640, 1280] {
        let cfg = worst_case(n, t, f, budget, Pipeline::Auth);
        let out = run_checked(&cfg);
        table.row([
            out.b_actual.to_string(),
            (out.b_actual / n).to_string(),
            out.k_a.to_string(),
            out.rounds.expect("checked").to_string(),
            out.messages.to_string(),
            round_lower_bound(n, t, f, out.b_actual).to_string(),
        ]);
    }
    table.print();

    let mut ftab = Table::new(
        &format!("E2b: auth rounds vs f (B saturated, n={n}, t={t})"),
        &["f", "rounds", "msgs"],
    );
    for fx in [0usize, 1, 2, 4, 8, 12] {
        let cfg = worst_case(n, t, fx, n * n, Pipeline::Auth);
        let out = run_checked(&cfg);
        ftab.row([
            fx.to_string(),
            out.rounds.expect("checked").to_string(),
            out.messages.to_string(),
        ]);
    }
    ftab.print();
}
