//! E9 — ablations over the design choices documented in `DESIGN.md`:
//!
//! * error placement: who gets hurt more by the same budget `B`
//!   (concentrated vs uniform vs missed-faults-only);
//! * fault placement: head-packed vs spread coalitions;
//! * adversary strength: silent < classify-liar < disruptor.

use ba_workloads::{
    AdversaryKind, ErrorPlacement, ExperimentConfig, FaultPlacement, LiarStyle, Pipeline, Table,
};

fn main() {
    let (n, t, f, b) = (40, 12, 8, 120);

    let mut p_tab = Table::new(
        &format!("E9a: error placement at fixed B={b} (n={n}, t={t}, f={f}, disruptor)"),
        &["placement", "k_A", "rounds", "msgs"],
    );
    for placement in [
        ErrorPlacement::Uniform,
        ErrorPlacement::Concentrated,
        ErrorPlacement::MissedFaultsOnly,
        ErrorPlacement::FalseAccusationsOnly,
        ErrorPlacement::TrustedFaults,
    ] {
        let cfg = ExperimentConfig::new(n, t, f, b, Pipeline::Unauth)
            .with_placement(placement)
            .with_fault_placement(FaultPlacement::Head)
            .with_adversary(AdversaryKind::Disruptor);
        let out = cfg.run();
        assert!(out.agreement);
        p_tab.row([
            format!("{placement:?}"),
            out.k_a.to_string(),
            out.rounds.map(|r| r.to_string()).unwrap_or_default(),
            out.messages.to_string(),
        ]);
    }
    p_tab.print();

    let mut f_tab = Table::new(
        "E9b: fault placement (same B, disruptor)",
        &["fault ids", "rounds", "msgs"],
    );
    for fp in [
        FaultPlacement::Head,
        FaultPlacement::Pairs,
        FaultPlacement::Spread,
        FaultPlacement::Tail,
    ] {
        let cfg = ExperimentConfig::new(n, t, f, b, Pipeline::Unauth)
            .with_placement(ErrorPlacement::TrustedFaults)
            .with_fault_placement(fp)
            .with_adversary(AdversaryKind::Disruptor);
        let out = cfg.run();
        assert!(out.agreement);
        f_tab.row([
            format!("{fp:?}"),
            out.rounds.map(|r| r.to_string()).unwrap_or_default(),
            out.messages.to_string(),
        ]);
    }
    f_tab.print();

    let mut a_tab = Table::new(
        "E9c: adversary strength (same B and faults)",
        &["adversary", "rounds", "msgs"],
    );
    for (name, adv) in [
        ("silent", AdversaryKind::Silent),
        (
            "classify-liar",
            AdversaryKind::ClassifyLiar(LiarStyle::AllOnes),
        ),
        ("replay", AdversaryKind::Replay),
        ("disruptor", AdversaryKind::Disruptor),
    ] {
        let cfg = ExperimentConfig::new(n, t, f, b, Pipeline::Unauth)
            .with_placement(ErrorPlacement::TrustedFaults)
            .with_fault_placement(FaultPlacement::Head)
            .with_adversary(adv);
        let out = cfg.run();
        assert!(out.agreement, "{name} broke agreement");
        a_tab.row([
            name.to_string(),
            out.rounds.map(|r| r.to_string()).unwrap_or_default(),
            out.messages.to_string(),
        ]);
    }
    a_tab.print();
    println!("Stronger adversaries and nastier placements cost rounds, never safety.");
}
