//! # ba-bench — experiment harnesses for every claim in the paper
//!
//! Each bench target (`cargo bench -p ba-bench`) regenerates one
//! theorem's complexity table; the printed markdown is what
//! `EXPERIMENTS.md` records. See `DESIGN.md` §4 for the experiment index
//! (E1–E9).
//!
//! The measured quantities are deterministic (rounds, messages), so the
//! harnesses run each configuration once per seed and print tables
//! rather than sampling wall-clock distributions; the `engine` bench
//! times the substrate microbenchmarks directly.

use ba_workloads::{
    AdversaryKind, ErrorPlacement, ExperimentConfig, ExperimentOutcome, FaultPlacement, Pipeline,
};

/// The worst-case experiment configuration used by the shape sweeps:
/// head-placed coalition, trusted-fault prediction spend, schedule-driven
/// disruptor.
pub fn worst_case(
    n: usize,
    t: usize,
    f: usize,
    budget: usize,
    pipeline: Pipeline,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .n(n)
        .t(t)
        .faults(f, FaultPlacement::Head)
        .budget(budget, ErrorPlacement::TrustedFaults)
        .pipeline(pipeline)
        .adversary(AdversaryKind::Disruptor)
        .build()
}

/// A silent-fault baseline configuration for a prediction-free
/// pipeline: the reference row the wrapper rows are compared against.
pub fn baseline(n: usize, t: usize, f: usize, pipeline: Pipeline) -> ExperimentConfig {
    ExperimentConfig::builder()
        .n(n)
        .t(t)
        .faults(f, FaultPlacement::Head)
        .pipeline(pipeline)
        .build()
}

/// Runs and asserts the safety invariants every experiment must keep.
pub fn run_checked(cfg: &ExperimentConfig) -> ExperimentOutcome {
    let out = cfg.run();
    assert!(
        out.agreement,
        "agreement violated at n={} t={} f={} B={}",
        cfg.n, cfg.t, cfg.f, cfg.budget
    );
    assert!(
        out.rounds.is_some(),
        "liveness violated at n={} t={} f={} B={}",
        cfg.n,
        cfg.t,
        cfg.f,
        cfg.budget
    );
    out
}
