//! Property-based hardening of the king-schedule constructors.
//!
//! `PhaseKing::with_kings` panics on empty and out-of-range schedules,
//! and the resilient pipelines build their schedules from
//! *adversary-influenced* suspicion vectors (Byzantine classifications
//! feed the aggregation). These properties pin the safety contract: for
//! **any** suspicion input — arbitrary magnitudes, adversarial
//! orderings, conviction patterns — both [`king_schedule`] (unsigned,
//! with rotation suffix) and [`signed_king_schedule`] (suffix-free)
//! produce schedules that are non-empty, in range, of the documented
//! length, with a duplicate-free trust prefix, and that
//! `PhaseKing::with_kings` accepts without panicking.

use ba_early::PhaseKing;
use ba_resilient::{king_schedule, signed_king_schedule, ResilientBa, ResilientSigned};
use ba_sim::{ProcessId, Value};
use proptest::prelude::*;

/// Draws `(n, t, suspicion, convicted)` with `3t < n` (the pipelines'
/// resilience bound, which guarantees `t + 2 ≤ n` for n ≥ 3) and fully
/// arbitrary per-identifier scores, including adversarially huge ones.
fn arbitrary_inputs() -> impl Strategy<Value = (usize, usize, Vec<usize>, Vec<bool>)> {
    (5usize..40).prop_flat_map(|n| {
        let t_max = (n - 1) / 3;
        (
            Just(n),
            0usize..=t_max,
            proptest::collection::vec(0usize..=usize::MAX - 1, n..=n),
            proptest::collection::vec(proptest::bool::ANY, n..=n),
        )
    })
}

fn assert_in_range_and_nonempty(schedule: &[ProcessId], n: usize) {
    assert!(!schedule.is_empty(), "schedule must cover ≥ 1 phase");
    assert!(
        schedule.iter().all(|k| (k.0 as usize) < n),
        "every scheduled king must be inside the system"
    );
}

fn assert_prefix_distinct(prefix: &[ProcessId]) {
    let mut seen = prefix.to_vec();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        prefix.len(),
        "the trust prefix must not repeat an identifier"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The unsigned schedule: `t + 1` distinct trust slots plus the
    /// exact `t + 2`-phase rotation suffix, everything in range, and
    /// `with_kings` accepts it for any suspicion input.
    #[test]
    fn unsigned_king_schedule_is_always_well_formed(
        (n, t, suspicion, _convicted) in arbitrary_inputs(),
    ) {
        let schedule = king_schedule(n, t, &suspicion);
        prop_assert_eq!(schedule.len(), ResilientBa::phases(t));
        assert_in_range_and_nonempty(&schedule, n);
        assert_prefix_distinct(&schedule[..t + 1]);
        let suffix: Vec<ProcessId> = (0..=t + 1).map(|j| ProcessId(j as u32)).collect();
        prop_assert_eq!(&schedule[t + 1..], suffix.as_slice(), "unconditional suffix");
        // The hardening target: with_kings must accept every schedule
        // a suspicion vector can induce (it panics on empty or
        // out-of-range input, so reaching here proves neither occurs).
        let _ = PhaseKing::with_kings(ProcessId(0), n, t, Value(0), schedule);
    }

    /// The signed schedule: exactly `t + 2` *distinct* in-range slots
    /// (no suffix), convicted identifiers demoted below every
    /// unconvicted one, and `with_kings` accepts it.
    #[test]
    fn signed_king_schedule_is_always_well_formed(
        (n, t, suspicion, convicted) in arbitrary_inputs(),
    ) {
        let schedule = signed_king_schedule(n, t, &suspicion, &convicted);
        prop_assert_eq!(schedule.len(), ResilientSigned::phases(t));
        assert_in_range_and_nonempty(&schedule, n);
        assert_prefix_distinct(&schedule);
        // Conviction demotion: an unconvicted identifier outside the
        // schedule would contradict a convicted one inside it.
        let unconvicted_total = convicted.iter().filter(|c| !**c).count();
        for k in &schedule {
            if convicted[k.0 as usize] {
                prop_assert!(
                    unconvicted_total < schedule.len(),
                    "a convicted king may reign only when unconvicted \
                     identifiers cannot fill the schedule"
                );
            }
        }
        let _ = PhaseKing::with_kings(ProcessId(0), n, t, Value(0), schedule);
    }

    /// Suspicion ties always break toward the smaller identifier, so
    /// schedules are a pure function of the scores — no hidden
    /// iteration-order dependence an adversary could exploit.
    #[test]
    fn schedules_are_deterministic_in_the_scores(
        (n, t, suspicion, convicted) in arbitrary_inputs(),
    ) {
        prop_assert_eq!(
            king_schedule(n, t, &suspicion),
            king_schedule(n, t, &suspicion)
        );
        prop_assert_eq!(
            signed_king_schedule(n, t, &suspicion, &convicted),
            signed_king_schedule(n, t, &suspicion, &convicted)
        );
    }
}
