//! The signed classification exchange: agreeing suspicion views, a
//! `t + 2`-phase budget, and no rotation suffix.
//!
//! The unsigned resilient pipeline ([`crate::ResilientBa`]) broadcasts
//! prediction strings unauthenticated, so a Byzantine classifier can
//! send a *different* string to every recipient and split the honest
//! suspicion views — which is exactly why the unsigned
//! [`crate::king_schedule`] pays an unconditional `t + 2`-phase
//! identifier-rotation suffix (worst case `2t + 3` phases; the split is
//! pinned by `equivocated_classifications_split_the_unsigned_schedules`).
//! Following Dallot et al.'s signed exchange, this module removes the
//! suffix:
//!
//! 1. **Signed classifications, verify-on-receive** — round 0
//!    broadcasts each process's prediction string in a
//!    [`ba_crypto::Signed`] envelope; forged tags and replayed honest
//!    signatures are dropped.
//! 2. **Echo round with carrier attestation** — round 1 re-broadcasts
//!    every *valid* signed classification received, and round 2
//!    aggregates only strings carried by **`≥ t + 1` distinct
//!    echoers**. Honest echoes are broadcast, so the honest carrier
//!    count of every string is identical at every honest process: a
//!    string broadcast in round 0 clears the threshold everywhere
//!    (`n − f ≥ t + 1` honest echo it), while a string *injected*
//!    selectively into echo-round inboxes — never broadcast — can
//!    muster at most `f ≤ t` faulty carriers and is ignored
//!    everywhere. Without the threshold, one such injection would
//!    split the suspicion views with zero equivocation.
//! 3. **Equivocation conviction** — two distinct attested strings from
//!    one signer are transferable *proof* of equivocation: the signer
//!    is convicted and demoted below every unconvicted identifier
//!    ([`signed_king_schedule`]), its strings ignored. Honest
//!    processes sign exactly one string, so they can never be
//!    convicted. Finer-grained equivocation (each string shown to
//!    `≤ t` processes) stays below the attestation threshold and is
//!    ignored wholesale — either way the equivocator contributes
//!    nothing, and the aggregated views agree.
//!
//! With agreeing schedules the suffix is dead weight: the schedule is
//! just the `t + 2` least-suspected identifiers, which always include
//! at least two honest ones (`f ≤ t`), so a common honest king reigns
//! by phase `t + 1` and the run decides within `t + 2` phases — down
//! from the unsigned variant's `2t + 3`. Every faulty identifier the
//! error budget promotes still costs exactly one stalled phase, so the
//! graceful staircase is preserved; only the equivocation insurance
//! premium is gone. The price is the echo round's `O(n³)` signed-string
//! bytes, charged faithfully by the wire model.
//!
//! *Scope.* One window remains: a string delivered in round 0 to
//! `k ∈ [t + 1 − f, t]` honest processes sits at the attestation
//! boundary, where selective faulty echoes can tip inclusion for some
//! honest processes and not others. Closing it needs interactive
//! consistency on the classification set — `Θ(t)` more rounds — which
//! would cost more than the `t + 1` phases the suffix-free schedule
//! saves; the conformance suite pins the behaviour the threshold does
//! guarantee (pure injection and per-recipient equivocation defeated
//! at n ∈ {16, 32, 64}).

use crate::{suspicion_scores, ResilientDisruptor};
use ba_core::BitVec;
use ba_crypto::{Encodable, Encoder, Pki, Signed, SigningKey};
use ba_early::{PhaseKing, PhaseKingMsg};
use ba_sim::{
    forward_sub, sub_inbox, Adversary, AdversaryCtx, Envelope, Outbox, Process, ProcessId, Value,
    WireSize,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// First phase-king round: classification occupies round 0, the echo
/// round 1.
const PHASE_START: u64 = 2;

/// Signed body of a classification broadcast: the sender's `n`-bit
/// prediction string. The leading tag byte domain-separates it from
/// every other signed body kind in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassifyBody {
    /// The prediction string (bit `j` set ⇔ `p_j` predicted honest).
    pub bits: BitVec,
}

impl Encodable for ClassifyBody {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(16);
        enc.u64(self.bits.len() as u64);
        let mut packed = vec![0u8; self.bits.len().div_ceil(8)];
        for j in 0..self.bits.len() {
            if self.bits.get(j) {
                packed[j / 8] |= 1 << (j % 8);
            }
        }
        enc.bytes(&packed);
    }
}

impl WireSize for ClassifyBody {
    fn wire_bytes(&self) -> u64 {
        self.bits.wire_bytes()
    }
}

/// Messages of the signed resilient pipeline.
#[derive(Clone, Debug)]
pub enum ResilientSignedMsg {
    /// Round 0 → all: the sender's signed prediction string.
    Classify(Arc<Signed<ClassifyBody>>),
    /// Round 1 → all: every valid signed classification the sender
    /// received — the common-pool mechanism behind agreeing views.
    Echo(Arc<Vec<Signed<ClassifyBody>>>),
    /// Rounds 2+: wrapped trust-ordered phase-king traffic.
    Phase(Arc<PhaseKingMsg>),
}

/// A discriminant byte plus the variant's payload; a signed
/// classification costs its unsigned counterpart plus exactly the
/// 20-byte signature.
impl WireSize for ResilientSignedMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            ResilientSignedMsg::Classify(s) => s.wire_bytes(),
            ResilientSignedMsg::Echo(entries) => entries.wire_bytes(),
            ResilientSignedMsg::Phase(inner) => inner.wire_bytes(),
        }
    }
}

/// The throne order of the signed pipeline: the `t + 2` least-suspected
/// identifiers (ties toward the smaller id), with convicted
/// equivocators demoted below every unconvicted identifier — and **no**
/// rotation suffix, because the signed exchange makes the honest
/// suspicion views (and therefore the schedules) agree.
///
/// The schedule always contains at least two honest identifiers (at
/// most `f ≤ t` faulty ones exist), so under an agreeing view a common
/// honest king reigns by phase `t + 1` and the early-stopping phase
/// king decides within `t + 2` phases.
///
/// # Panics
///
/// Panics unless `suspicion` and `convicted` have one entry per
/// identifier and `t + 2 ≤ n`.
pub fn signed_king_schedule(
    n: usize,
    t: usize,
    suspicion: &[usize],
    convicted: &[bool],
) -> Vec<ProcessId> {
    assert_eq!(suspicion.len(), n, "one suspicion score per identifier");
    assert_eq!(convicted.len(), n, "one conviction flag per identifier");
    assert!(t + 2 <= n, "the schedule needs t + 2 identifiers");
    let mut by_trust: Vec<usize> = (0..n).collect();
    by_trust.sort_by_key(|&j| (convicted[j], suspicion[j], j));
    by_trust
        .into_iter()
        .take(t + 2)
        .map(|j| ProcessId(j as u32))
        .collect()
}

/// One process's state machine for the signed resilient pipeline.
///
/// # Examples
///
/// ```
/// use ba_core::PredictionMatrix;
/// use ba_crypto::Pki;
/// use ba_resilient::ResilientSigned;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use std::collections::BTreeSet;
/// use std::sync::Arc;
///
/// // n = 7, one silent fault (p6), perfect predictions.
/// let n = 7;
/// let faulty: BTreeSet<ProcessId> = [ProcessId(6)].into_iter().collect();
/// let matrix = PredictionMatrix::perfect(n, &faulty);
/// let pki = Arc::new(Pki::new(n, 1));
/// let procs: Vec<ResilientSigned> = (0..6u32)
///     .map(|i| {
///         let id = ProcessId(i);
///         let key = pki.signing_key(i);
///         ResilientSigned::new(id, n, 2, Value(9), matrix.row(id).clone(), Arc::clone(&pki), key)
///     })
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(ResilientSigned::rounds(2));
/// assert_eq!(report.decision(), Some(&Value(9)));
/// ```
pub struct ResilientSigned {
    me: ProcessId,
    n: usize,
    t: usize,
    input: Value,
    prediction: BitVec,
    pki: Arc<Pki>,
    key: SigningKey,
    /// Valid signed classifications received directly in round 0
    /// (possibly several distinct ones per equivocating sender).
    /// Consumed by the round-1 echo; the round-2 aggregation reads
    /// echoes only (its own echo included, via self-delivery).
    received: Vec<Signed<ClassifyBody>>,
    suspicion: Option<Vec<usize>>,
    convicted: Option<Vec<bool>>,
    classification: Option<BitVec>,
    inner: Option<PhaseKing>,
    out: Option<Value>,
}

impl std::fmt::Debug for ResilientSigned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSigned")
            .field("me", &self.me)
            .field("suspicion", &self.suspicion)
            .field("convicted", &self.convicted)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl ResilientSigned {
    /// Phase budget: `t + 2` suspicion-ordered slots — no rotation
    /// suffix (compare [`crate::ResilientBa::phases`]'s `2t + 3`).
    pub fn phases(t: usize) -> usize {
        t + 2
    }

    /// Total round budget: classification + echo + the phase-king
    /// rounds of the suffix-free schedule.
    pub fn rounds(t: usize) -> u64 {
        PHASE_START + PhaseKing::rounds(Self::phases(t))
    }

    /// Creates the state machine for process `me`.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` and the prediction has `n` bits.
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        input: Value,
        prediction: BitVec,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert!(3 * t < n, "resilient BA needs 3t < n");
        assert_eq!(prediction.len(), n, "prediction must have n bits");
        ResilientSigned {
            me,
            n,
            t,
            input,
            prediction,
            pki,
            key,
            received: Vec::new(),
            suspicion: None,
            convicted: None,
            classification: None,
            inner: None,
            out: None,
        }
    }

    /// The raw prediction string this process started from.
    pub fn prediction(&self) -> &BitVec {
        &self.prediction
    }

    /// The aggregated majority classification (the probe surface, as in
    /// the unsigned variant); convicted equivocators are classified
    /// faulty. `None` until round 2.
    pub fn classification(&self) -> Option<&BitVec> {
        self.classification.as_ref()
    }

    /// The per-identifier suspicion scores aggregated at round 2.
    pub fn suspicion(&self) -> Option<&[usize]> {
        self.suspicion.as_deref()
    }

    /// Which identifiers were convicted of classification equivocation
    /// (`None` until round 2).
    pub fn convicted(&self) -> Option<&[bool]> {
        self.convicted.as_deref()
    }

    /// The suffix-free king schedule this process derived (`None` until
    /// round 2).
    pub fn schedule(&self) -> Option<Vec<ProcessId>> {
        match (&self.suspicion, &self.convicted) {
            (Some(s), Some(c)) => Some(signed_king_schedule(self.n, self.t, s, c)),
            _ => None,
        }
    }

    /// Collects the valid signed classifications of an inbox: signature
    /// verified for the envelope sender, duplicates dropped, *distinct*
    /// equivocated strings kept (they are conviction evidence).
    fn valid_classifications(
        &self,
        inbox: &[Envelope<ResilientSignedMsg>],
    ) -> Vec<Signed<ClassifyBody>> {
        let mut valid: Vec<Signed<ClassifyBody>> = Vec::new();
        for env in inbox {
            let ResilientSignedMsg::Classify(signed) = &*env.payload else {
                continue;
            };
            if signed.verified_from(&self.pki, env.from.0).is_none() {
                continue;
            }
            if !valid.iter().any(|s| *s == **signed) {
                valid.push((**signed).clone());
            }
        }
        valid
    }

    /// Aggregates the echoed common pool into suspicion scores,
    /// convictions, and the seated phase king.
    ///
    /// Only strings carried by **at least `t + 1` distinct echoers**
    /// count (for scoring *and* conviction). Honest echoes are
    /// broadcast, so the honest carrier count of every string is the
    /// same at every honest process; a string broadcast in round 0
    /// reaches `n − f ≥ t + 1` honest echoers and is counted
    /// everywhere, while a string *injected* directly into echo-round
    /// inboxes (never broadcast in round 0) can muster at most `f ≤ t`
    /// faulty carriers and is ignored everywhere — so the coalition
    /// cannot split the aggregated views without committing a string
    /// to `≥ t + 1 − f` honest processes in round 0 first. Own direct
    /// receptions need no special case: a process's round-1 echo is
    /// broadcast, so it reaches its own round-2 inbox too.
    fn ingest_pool(&mut self, inbox: &[Envelope<ResilientSignedMsg>]) {
        // Per signer: each distinct validly-signed string with its set
        // of distinct echo carriers. Echoed entries verify on their own
        // signatures — the echoer needs no trust for *validity*, only
        // the carrier count gates *inclusion*. Each distinct
        // (signer, string) pair is verified once, on first sight.
        let mut per_signer: BTreeMap<u32, Vec<(BitVec, BTreeSet<ProcessId>)>> = BTreeMap::new();
        for env in inbox {
            let ResilientSignedMsg::Echo(entries) = &*env.payload else {
                continue;
            };
            for signed in entries.iter() {
                if (signed.signer() as usize) >= self.n {
                    continue;
                }
                let strings = per_signer.entry(signed.signer()).or_default();
                match strings
                    .iter_mut()
                    .find(|(bits, _)| *bits == signed.body().bits)
                {
                    Some((_, carriers)) => {
                        carriers.insert(env.from);
                    }
                    None if signed.verify(&self.pki) => {
                        strings.push((signed.body().bits.clone(), BTreeSet::from([env.from])));
                    }
                    None => {}
                }
            }
        }
        let mut convicted = vec![false; self.n];
        let mut singles: Vec<&BitVec> = Vec::new();
        for (&signer, strings) in &per_signer {
            let attested: Vec<&BitVec> = strings
                .iter()
                .filter(|(_, carriers)| carriers.len() > self.t)
                .map(|(bits, _)| bits)
                .collect();
            match attested[..] {
                [] => {}
                [one] => singles.push(one),
                _ => convicted[signer as usize] = true,
            }
        }
        let voters = singles.iter().filter(|c| c.len() == self.n).count().max(1);
        let suspicion = suspicion_scores(self.n, singles);
        let mut classification = BitVec::zeros(self.n);
        for (j, &s) in suspicion.iter().enumerate() {
            classification.set(j, 2 * s < voters && !convicted[j]);
        }
        let schedule = signed_king_schedule(self.n, self.t, &suspicion, &convicted);
        self.inner = Some(PhaseKing::with_kings(
            self.me, self.n, self.t, self.input, schedule,
        ));
        self.suspicion = Some(suspicion);
        self.convicted = Some(convicted);
        self.classification = Some(classification);
    }
}

impl Process for ResilientSigned {
    type Msg = ResilientSignedMsg;
    type Output = Value;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<ResilientSignedMsg>],
        out: &mut Outbox<ResilientSignedMsg>,
    ) {
        match round {
            0 => {
                out.broadcast(ResilientSignedMsg::Classify(Arc::new(Signed::new(
                    ClassifyBody {
                        bits: self.prediction.clone(),
                    },
                    &self.key,
                ))));
                return;
            }
            1 => {
                self.received = self.valid_classifications(inbox);
                out.broadcast(ResilientSignedMsg::Echo(Arc::new(self.received.clone())));
                return;
            }
            2 => self.ingest_pool(inbox),
            _ => {}
        }
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let sub = sub_inbox(inbox, |m| match m {
            ResilientSignedMsg::Phase(x) => Some(Arc::clone(x)),
            _ => None,
        });
        let mut sub_out = Outbox::new(out.sender(), out.system_size());
        inner.step(round - PHASE_START, &sub, &mut sub_out);
        forward_sub(sub_out, out, ResilientSignedMsg::Phase);
        if let Some(o) = inner.output() {
            self.out = Some(o.decision.unwrap_or(o.value));
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

/// The worst-case coalition against the signed resilient pipeline —
/// [`ResilientDisruptor`]'s strategy adapted to the signed exchange:
/// properly signed all-ones shield votes in the classification round
/// (equivocating there would get the coalition convicted and demoted),
/// silence in the echo round (honest echoes already spread the
/// shields), then the same quorum-splitting equivocation and
/// crown-splitting during every phase whose king it owns. Used by the
/// bench sweeps to realize the signed family's (suffix-free) graceful
/// degradation staircase.
pub struct SignedResilientDisruptor {
    n: usize,
    t: usize,
    faulty: Vec<ProcessId>,
    keys: Vec<SigningKey>,
    pki: Arc<Pki>,
    schedule: Vec<ProcessId>,
}

impl SignedResilientDisruptor {
    /// Creates the disruptor for the given system parameters; `keys`
    /// are the corrupted identifiers' signing keys (the harness hands
    /// the adversary exactly those, never honest ones).
    pub fn new(n: usize, t: usize, keys: Vec<SigningKey>, pki: Arc<Pki>) -> Self {
        let faulty = keys.iter().map(|k| ProcessId(k.id())).collect();
        SignedResilientDisruptor {
            n,
            t,
            faulty,
            keys,
            pki,
            schedule: Vec::new(),
        }
    }

    /// The suffix-free schedule the rushed honest round-0
    /// classification traffic induces. Aggregation is one string *per
    /// sender* — identical strings from different senders each count,
    /// exactly as in the honest [`ResilientSigned`] aggregation (and
    /// the unsigned disruptor's `classifications_by_sender` path); a
    /// content-deduplicated count would rank identifiers differently
    /// and desynchronize the coalition from the throne order it means
    /// to disrupt.
    fn reconstruct_schedule(
        n: usize,
        t: usize,
        pki: &Pki,
        traffic: &[Envelope<ResilientSignedMsg>],
    ) -> Vec<ProcessId> {
        let mut per_sender: BTreeMap<ProcessId, &BitVec> = BTreeMap::new();
        for env in traffic {
            let ResilientSignedMsg::Classify(signed) = &*env.payload else {
                continue;
            };
            if signed.verified_from(pki, env.from.0).is_none() {
                continue;
            }
            per_sender.entry(env.from).or_insert(&signed.body().bits);
        }
        let suspicion = suspicion_scores(n, per_sender.into_values());
        signed_king_schedule(n, t, &suspicion, &vec![false; n])
    }
}

impl Adversary<ResilientSignedMsg> for SignedResilientDisruptor {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>) {
        if ctx.round == 0 {
            // Reconstruct the schedule the honest processes will derive
            // at round 2: their signed classifications (rushed), no
            // convictions (honest processes never equivocate and the
            // coalition will not either), plus the coalition's all-ones
            // shields — which add no suspicion.
            self.schedule =
                Self::reconstruct_schedule(self.n, self.t, &self.pki, ctx.honest_traffic);
            for key in &self.keys {
                let shield = ResilientSignedMsg::Classify(Arc::new(Signed::new(
                    ClassifyBody {
                        bits: BitVec::ones(self.n),
                    },
                    key,
                )));
                ctx.broadcast(ProcessId(key.id()), shield);
            }
            return;
        }
        if ctx.round == 1 {
            return; // honest echoes already spread the shields
        }
        let local = ctx.round - PHASE_START;
        let phase = (local / 5) as usize;
        if phase >= self.schedule.len() {
            return;
        }
        ResilientDisruptor::disrupt_phase(
            ctx,
            &self.faulty,
            self.n,
            self.schedule[phase],
            phase as u16,
            local % 5,
            ResilientSignedMsg::Phase,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::PredictionMatrix;
    use ba_sim::{FnAdversary, ReplayAdversary, Runner, SilentAdversary};
    use std::collections::BTreeSet;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(
        n: usize,
        t: usize,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        pki: &Arc<Pki>,
        input: impl Fn(usize) -> u64,
    ) -> BTreeMap<ProcessId, ResilientSigned> {
        ProcessId::all(n)
            .filter(|id| !faulty.contains(id))
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    ResilientSigned::new(
                        id,
                        n,
                        t,
                        Value(input(slot)),
                        matrix.row(id).clone(),
                        Arc::clone(pki),
                        pki.signing_key(id.0),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn perfect_predictions_decide_in_the_first_phase() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, &pki, |_| 6), SilentAdversary);
        let report = runner.run(ResilientSigned::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert!(report.last_decision_round.expect("decided") <= 2 + 2 * 5 + 1);
    }

    /// Extracts every honest schedule and asserts they are identical —
    /// the invariant the suffix removal rests on.
    fn assert_schedules_agree(
        runner: &Runner<ResilientSigned, impl ba_sim::Adversary<ResilientSignedMsg>>,
        n: usize,
        f: &BTreeSet<ProcessId>,
    ) -> Vec<ProcessId> {
        let schedules: Vec<Vec<ProcessId>> = ProcessId::all(n)
            .filter(|p| !f.contains(p))
            .map(|id| {
                runner
                    .process(id)
                    .expect("honest")
                    .schedule()
                    .expect("seated")
            })
            .collect();
        assert!(
            schedules.windows(2).all(|w| w[0] == w[1]),
            "signed exchange must produce agreeing schedules, got {schedules:?}"
        );
        schedules.into_iter().next().expect("honest population")
    }

    /// The signed mirror of the unsigned schedule-split pin
    /// (`equivocated_classifications_split_the_unsigned_schedules` in
    /// the crate root): the same per-recipient classification
    /// equivocation leaves each of its strings with a single carrier —
    /// below the `t + 1` attestation threshold — so every honest
    /// process ignores the equivocator wholesale, derives the *same*
    /// suffix-free schedule (the honest strings' suspicion already
    /// demotes it), and decides within the first phases instead of
    /// crawling to the rotation suffix.
    #[test]
    fn per_recipient_equivocation_is_ignored_and_schedules_agree() {
        let n = 7;
        let t = 2;
        let f = faults(&[6]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let key6 = pki.signing_key(6);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>| {
            if ctx.round == 0 {
                for to in ProcessId::all(7) {
                    // Suspect a different singleton per recipient —
                    // each string validly signed with p6's own key.
                    let mut bits = BitVec::ones(7);
                    bits.set((to.0 as usize) % 7, false);
                    let msg = ResilientSignedMsg::Classify(Arc::new(Signed::new(
                        ClassifyBody { bits },
                        &key6,
                    )));
                    ctx.send(ProcessId(6), to, msg);
                }
            }
        });
        let mut runner =
            Runner::with_ids(n, system(n, t, &f, &m, &pki, |slot| (slot % 2) as u64), adv);
        let report = runner.run(ResilientSigned::rounds(t));
        assert!(report.agreement());
        assert!(report.all_decided());
        let schedule = assert_schedules_agree(&runner, n, &f);
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            let p = runner.process(id).expect("honest");
            assert_eq!(
                p.convicted().expect("aggregated"),
                vec![false; n].as_slice(),
                "single-carrier strings stay below the attestation \
                 threshold: ignored, not convicted"
            );
            assert_eq!(
                p.suspicion().expect("aggregated")[..6],
                [0, 0, 0, 0, 0, 0],
                "{id}: sub-threshold strings must not add suspicion"
            );
            assert!(
                !p.classification().expect("aggregated").get(6),
                "the honest majority still classifies p6 faulty"
            );
        }
        assert!(
            !schedule.contains(&ProcessId(6)),
            "honest suspicion keeps the equivocator off the throne"
        );
        assert!(
            report.last_decision_round.expect("decided") <= 2 + 2 * 5 + 1,
            "an honest phase-0 king decides immediately — no suffix crawl"
        );
    }

    /// Coarse equivocation — each conflicting string broadcast widely
    /// enough to clear the `t + 1` attestation threshold — is the case
    /// conviction exists for: both strings enter the common pool
    /// everywhere, the signer is convicted uniformly and demoted below
    /// every unconvicted identifier.
    #[test]
    fn coarse_equivocation_is_convicted_uniformly() {
        let n = 7;
        let t = 2;
        let f = faults(&[6]);
        let m = PredictionMatrix::all_honest(n); // nobody suspects p6 a priori
        let pki = Arc::new(Pki::new(n, 5));
        let key6 = pki.signing_key(6);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>| {
            if ctx.round == 0 {
                for to in ProcessId::all(7) {
                    // Half the population sees "all honest", the other
                    // half "suspect everyone": each string reaches ≥
                    // t + 1 honest echoers.
                    let bits = if to.0.is_multiple_of(2) {
                        BitVec::ones(7)
                    } else {
                        BitVec::zeros(7)
                    };
                    let msg = ResilientSignedMsg::Classify(Arc::new(Signed::new(
                        ClassifyBody { bits },
                        &key6,
                    )));
                    ctx.send(ProcessId(6), to, msg);
                }
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, &pki, |_| 4), adv);
        let report = runner.run(ResilientSigned::rounds(t));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(4)), "unanimity survives");
        let schedule = assert_schedules_agree(&runner, n, &f);
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            let p = runner.process(id).expect("honest");
            let convicted = p.convicted().expect("aggregated");
            assert!(convicted[6], "{id} must convict the coarse equivocator");
            assert_eq!(convicted.iter().filter(|c| **c).count(), 1);
            assert!(
                !p.classification().expect("aggregated").get(6),
                "convicted ⇒ classified faulty"
            );
        }
        assert!(
            !schedule.contains(&ProcessId(6)),
            "a convicted equivocator never reaches the throne"
        );
    }

    /// The echo-injection attack the attestation threshold exists for:
    /// a string that was *never broadcast in round 0* is wrapped in an
    /// `Echo` and delivered to half the honest processes only, during
    /// the echo round itself. Its carrier count is at most `f ≤ t`
    /// everywhere, so every honest process ignores it — without the
    /// threshold this zero-equivocation injection would split the
    /// suspicion views (and, suffix-free, the schedules).
    #[test]
    fn echo_injected_strings_cannot_split_the_schedules() {
        let n = 7;
        let t = 2;
        let f = faults(&[6]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let key6 = pki.signing_key(6);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>| {
            if ctx.round == 1 {
                // Validly signed, never committed in round 0: frame the
                // low identifiers to half the population.
                let mut bits = BitVec::ones(7);
                for j in 0..4 {
                    bits.set(j, false);
                }
                let smear = Signed::new(ClassifyBody { bits }, &key6);
                for to in ProcessId::all(7).filter(|p| p.0.is_multiple_of(2)) {
                    ctx.send(
                        ProcessId(6),
                        to,
                        ResilientSignedMsg::Echo(Arc::new(vec![smear.clone()])),
                    );
                }
            }
        });
        let mut runner =
            Runner::with_ids(n, system(n, t, &f, &m, &pki, |slot| (slot % 2) as u64), adv);
        let report = runner.run(ResilientSigned::rounds(t));
        assert!(report.agreement());
        assert!(report.all_decided());
        let schedule = assert_schedules_agree(&runner, n, &f);
        assert_eq!(
            schedule,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)],
            "the injected smear must not reorder the throne"
        );
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            let p = runner.process(id).expect("honest");
            assert_eq!(
                p.suspicion().expect("aggregated")[..4],
                [0, 0, 0, 0],
                "{id}: an injected (sub-threshold) string adds no suspicion"
            );
        }
        assert!(
            report.last_decision_round.expect("decided") <= 2 + 2 * 5 + 1,
            "agreeing schedules decide in the first phases"
        );
    }

    #[test]
    fn forged_and_replayed_classification_signatures_are_inert() {
        let n = 10;
        let t = 3;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let key3 = pki.signing_key(3);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>| {
            if ctx.round != 0 {
                return;
            }
            // Forge an all-zeros classification claiming an honest
            // signer: the tag cannot verify.
            let body = ClassifyBody {
                bits: BitVec::zeros(10),
            };
            let mut sig = *Signed::new(body.clone(), &key3).signature();
            sig.signer = 0;
            ctx.broadcast(
                ProcessId(3),
                ResilientSignedMsg::Classify(Arc::new(Signed::from_parts(body, sig))),
            );
            // Replay honest signed strings from the corrupted identity:
            // the signer no longer matches the envelope sender.
            let observed: Vec<Arc<ResilientSignedMsg>> = ctx
                .honest_traffic
                .iter()
                .map(|e| Arc::clone(&e.payload))
                .collect();
            for payload in observed {
                for to in ProcessId::all(10) {
                    ctx.replay(ProcessId(7), to, Arc::clone(&payload));
                }
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, &pki, |_| 6), adv);
        let report = runner.run(ResilientSigned::rounds(t));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        let p = runner.process(ProcessId(0)).expect("honest");
        assert_eq!(
            p.convicted().expect("aggregated"),
            vec![false; n].as_slice(),
            "forgeries and replays must convict nobody"
        );
        assert_eq!(
            p.suspicion().expect("aggregated")[0],
            0,
            "the forged all-zeros string must not add suspicion"
        );
    }

    #[test]
    fn disruptor_reconstruction_counts_strings_per_sender() {
        // Regression: the reconstruction used to deduplicate strings by
        // *content*, so three senders sharing one string counted once —
        // here that would seat p3 (dedup score 1) in the last slot
        // instead of p5, desynchronizing the coalition from the honest
        // throne order it means to disrupt.
        let n = 7;
        let t = 2;
        let pki = Pki::new(n, 3);
        let classify = |sender: u32, suspects: &[usize]| {
            let mut bits = BitVec::ones(7);
            for &j in suspects {
                bits.set(j, false);
            }
            Envelope::new(
                ProcessId(sender),
                ProcessId(6),
                ResilientSignedMsg::Classify(Arc::new(Signed::new(
                    ClassifyBody { bits },
                    &pki.signing_key(sender),
                ))),
            )
        };
        // p0/p1/p2 share one string suspecting p3; p3 and p4 hold
        // distinct strings both suspecting p4.
        let traffic = vec![
            classify(0, &[3]),
            classify(1, &[3]),
            classify(2, &[3]),
            classify(3, &[4, 5]),
            classify(4, &[4, 6]),
        ];
        let schedule = SignedResilientDisruptor::reconstruct_schedule(n, t, &pki, &traffic);
        // Per-sender scores: p3 ← 3, p4 ← 2, p5 ← 1, p6 ← 1; the last
        // slot goes to p5 (tie with p6 broken by id).
        assert_eq!(
            schedule,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(5)]
        );
        // And it matches the honest-side aggregation of the same pool.
        let strings: Vec<BitVec> = traffic
            .iter()
            .map(|env| match &*env.payload {
                ResilientSignedMsg::Classify(s) => s.body().bits.clone(),
                _ => unreachable!(),
            })
            .collect();
        let honest =
            signed_king_schedule(n, t, &suspicion_scores(n, strings.iter()), &vec![false; n]);
        assert_eq!(schedule, honest);
    }

    #[test]
    fn signed_disruptor_realizes_the_suffix_free_staircase() {
        let n = 13;
        let t = 4;
        let f = faults(&[0, 1]);
        let pki = Arc::new(Pki::new(n, 5));
        let run = |promoted: usize| {
            let mut m = PredictionMatrix::perfect(n, &f);
            for target in 0..promoted {
                for row in ProcessId::all(n).filter(|p| !f.contains(p)) {
                    m.row_mut(row).set(target, true);
                }
            }
            let keys = vec![pki.signing_key(0), pki.signing_key(1)];
            let mut runner = Runner::with_ids(
                n,
                system(n, t, &f, &m, &pki, |slot| 1 + (slot % 2) as u64),
                SignedResilientDisruptor::new(n, t, keys, Arc::clone(&pki)),
            );
            let report = runner.run(ResilientSigned::rounds(t));
            assert!(report.agreement(), "promoted = {promoted}");
            report.last_decision_round.expect("decided")
        };
        let base = run(0);
        assert!(run(1) > base, "a promoted faulty king must cost rounds");
        assert!(run(2) > run(1), "and the cost must grow with the count");
        assert!(
            run(2) <= ResilientSigned::rounds(t),
            "even fully promoted, the suffix-free budget suffices"
        );
    }

    #[test]
    fn replayed_traffic_is_inert() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(
            n,
            system(n, 3, &f, &m, &pki, |_| 6),
            ReplayAdversary::new(1),
        );
        let report = runner.run(ResilientSigned::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
    }

    #[test]
    fn signed_schedule_is_suffix_free_distinct_and_in_range() {
        let suspicion = vec![5, 0, 4, 0, 1, 6, 6];
        let convicted = vec![false, false, true, false, false, false, false];
        let ks = signed_king_schedule(7, 2, &suspicion, &convicted);
        assert_eq!(ks.len(), ResilientSigned::phases(2));
        // p2 (score 4) would beat p0 (score 5) on suspicion alone, but
        // its conviction demotes it below every unconvicted identifier.
        assert_eq!(
            ks,
            vec![ProcessId(1), ProcessId(3), ProcessId(4), ProcessId(0)]
        );
        let mut distinct = ks.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), ks.len(), "no identifier reigns twice");
    }

    #[test]
    fn signed_budget_is_smaller_than_unsigned() {
        for t in 1..12 {
            assert!(ResilientSigned::phases(t) < crate::ResilientBa::phases(t));
            assert!(ResilientSigned::rounds(t) < crate::ResilientBa::rounds(t));
        }
    }

    #[test]
    fn message_sizes_follow_the_signature_model() {
        let pki = Pki::new(16, 1);
        let bits = BitVec::ones(16);
        let unsigned = crate::ResilientMsg::Classify(Arc::new(bits.clone()));
        let signed = ResilientSignedMsg::Classify(Arc::new(Signed::new(
            ClassifyBody { bits },
            &pki.signing_key(0),
        )));
        assert_eq!(
            signed.wire_bytes(),
            unsigned.wire_bytes() + 20,
            "signed classify = unsigned + the 20-byte signature"
        );
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn rejects_too_many_faults() {
        let pki = Arc::new(Pki::new(9, 1));
        let key = pki.signing_key(0);
        let _ = ResilientSigned::new(ProcessId(0), 9, 3, Value(0), BitVec::ones(9), pki, key);
    }
}
