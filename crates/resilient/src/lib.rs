//! # ba-resilient — resilient BA with predictions
//!
//! The source paper and the communication-efficient follow-up both treat
//! predictions as a *lane choice*: a fast path that assumes the hints
//! are good, plus a fallback that abandons them wholesale the moment an
//! inconsistency surfaces. The round cost is therefore a step function
//! of prediction quality — perfect hints are cheap, and one wrong bit
//! past the tolerance cliff costs the entire fallback. *Resilient
//! Byzantine Agreement with Predictions* (Dallot–Melnyk–Milentijevic–
//! Schmid–Welters, 2026) asks for the missing middle: a protocol whose
//! round complexity degrades **gracefully** — proportionally to the
//! realized prediction error — instead of cliff-switching.
//!
//! This crate reproduces that trade-off in the repository's execution
//! model (`t < n/3`, no signatures) by making predictions steer *who
//! leads*, not *which protocol runs*:
//!
//! 1. **Classification exchange** (1 round): every process broadcasts
//!    its `n`-bit prediction string and aggregates the strings it
//!    receives into a per-identifier *suspicion score* — the number of
//!    peers predicting that identifier faulty.
//! 2. **Trust-ordered phase king** (5 rounds per phase): a standard
//!    early-stopping phase-king agreement ([`ba_early::PhaseKing`])
//!    whose throne order is the suspicion order, most-trusted first
//!    ([`king_schedule`]). Accurate predictions put an honest king on
//!    the throne in phase 0; every faulty identifier the error budget
//!    `B` manages to promote above the first honest one costs exactly
//!    one extra (stalled) phase. The round count is thus a staircase in
//!    `B` with unit steps — no fast lane, no cliff — and it can never
//!    exceed the prediction-free baseline by more than the schedule
//!    constant, because at most `f` faulty identifiers exist to be
//!    promoted.
//!
//! Safety never depends on the predictions: deciding requires a grade-2
//! detect consensus exactly as in the baseline, so arbitrarily wrong
//! (or arbitrarily adversarial) hints can only cost rounds. Liveness
//! holds unconditionally too: the king schedule ends with a `t + 2`
//! phase suffix in plain identifier rotation, so even if Byzantine
//! classifications split the honest processes' suspicion views (they
//! are broadcast unauthenticated), every honest process eventually
//! crowns the same honest king.
//!
//! The worst-case budget is `2t + 3` phases — the `t + 1` suspicion-
//! ordered slots plus the unconditional suffix — i.e. within a small
//! constant factor of the baseline's `t + 2`, which is the resilience
//! contract: *graceful* gains when the predictions help, bounded loss
//! when they are garbage.
//!
//! The suffix is insurance against *classification equivocation* (the
//! schedule split is pinned by
//! `equivocated_classifications_split_the_unsigned_schedules`); the
//! [`signed`] variant ([`ResilientSigned`]) replaces the insurance with
//! signed, echoed classifications whose equivocators are convicted by
//! their own signatures — shrinking the budget to `t + 2` phases with
//! no suffix at all.

pub mod signed;

pub use signed::{
    signed_king_schedule, ResilientSigned, ResilientSignedMsg, SignedResilientDisruptor,
};

use ba_core::BitVec;
use ba_early::{PhaseKing, PhaseKingMsg};
use ba_graded::UnauthGcMsg;
use ba_sim::{
    forward_sub, sub_inbox, Adversary, AdversaryCtx, Envelope, Outbox, Process, ProcessId, Value,
    WireSize,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the resilient pipeline. The classification exchange is
/// bound to round 0 and phase-king traffic carries its own phase tags,
/// so replayed messages are inert.
#[derive(Clone, Debug)]
pub enum ResilientMsg {
    /// Round 0 → all: the sender's n-bit prediction string.
    Classify(Arc<BitVec>),
    /// Rounds 1+: wrapped trust-ordered phase-king traffic.
    Phase(Arc<PhaseKingMsg>),
}

/// A discriminant byte plus the variant's payload.
impl WireSize for ResilientMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            ResilientMsg::Classify(bits) => bits.wire_bytes(),
            ResilientMsg::Phase(inner) => inner.wire_bytes(),
        }
    }
}

/// The first classification each sender shipped in an envelope batch —
/// the one aggregation view of the round-0 exchange. Honest processes
/// apply it to their round-1 inbox and [`ResilientDisruptor`] applies
/// it to the rushed honest traffic of round 0; both sides *must* go
/// through this function, because the disruptor's schedule
/// reconstruction is only exact while the two aggregations agree.
pub fn classifications_by_sender(
    envelopes: &[Envelope<ResilientMsg>],
) -> BTreeMap<ProcessId, &BitVec> {
    let mut per_sender: BTreeMap<ProcessId, &BitVec> = BTreeMap::new();
    for env in envelopes {
        if let ResilientMsg::Classify(bits) = &*env.payload {
            per_sender.entry(env.from).or_insert(bits);
        }
    }
    per_sender
}

/// Aggregates classification strings into per-identifier suspicion
/// scores: `scores[j]` counts the strings predicting `p_j` faulty.
/// Strings whose length is not `n` are ignored (Byzantine senders may
/// ship garbage).
pub fn suspicion_scores<'a>(
    n: usize,
    classifications: impl IntoIterator<Item = &'a BitVec>,
) -> Vec<usize> {
    let mut scores = vec![0usize; n];
    for c in classifications {
        if c.len() != n {
            continue;
        }
        for (j, s) in scores.iter_mut().enumerate() {
            if !c.get(j) {
                *s += 1;
            }
        }
    }
    scores
}

/// The throne order a suspicion vector induces: the `t + 1` least
/// suspected identifiers (ties toward the smaller id) followed by the
/// unconditional `t + 2`-phase identifier-rotation suffix `p_0 … p_{t+1}`.
///
/// The prefix is where predictions pay: with accurate hints it starts
/// with honest identifiers and the phase-0 king already unifies. The
/// prefix always contains an honest identifier (only `f ≤ t` faulty ones
/// exist, and the prefix has `t + 1` slots), so under a consistent
/// suspicion view the run decides inside the prefix; the suffix is the
/// liveness net for *inconsistent* views seeded by equivocated
/// classifications.
pub fn king_schedule(n: usize, t: usize, suspicion: &[usize]) -> Vec<ProcessId> {
    assert_eq!(suspicion.len(), n, "one suspicion score per identifier");
    assert!(t + 2 <= n, "suffix rotation needs t + 2 identifiers");
    let mut by_trust: Vec<usize> = (0..n).collect();
    by_trust.sort_by_key(|&j| (suspicion[j], j));
    by_trust
        .into_iter()
        .take(t + 1)
        .chain(0..=t + 1)
        .map(|j| ProcessId(j as u32))
        .collect()
}

/// One process's state machine for the resilient pipeline.
///
/// # Examples
///
/// ```
/// use ba_core::{PredictionMatrix, BitVec};
/// use ba_resilient::ResilientBa;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use std::collections::BTreeSet;
///
/// // n = 7, one silent fault (p6), perfect predictions.
/// let n = 7;
/// let faulty: BTreeSet<ProcessId> = [ProcessId(6)].into_iter().collect();
/// let matrix = PredictionMatrix::perfect(n, &faulty);
/// let procs: Vec<ResilientBa> = (0..6u32)
///     .map(|i| {
///         let id = ProcessId(i);
///         ResilientBa::new(id, n, 2, Value(9), matrix.row(id).clone())
///     })
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(ResilientBa::rounds(2));
/// assert_eq!(report.decision(), Some(&Value(9)));
/// ```
pub struct ResilientBa {
    me: ProcessId,
    n: usize,
    t: usize,
    input: Value,
    prediction: BitVec,
    suspicion: Option<Vec<usize>>,
    classification: Option<BitVec>,
    inner: Option<PhaseKing>,
    out: Option<Value>,
}

impl std::fmt::Debug for ResilientBa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientBa")
            .field("me", &self.me)
            .field("suspicion", &self.suspicion)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl ResilientBa {
    /// Worst-case phase budget: the `t + 1` suspicion-ordered slots plus
    /// the unconditional `t + 2`-phase rotation suffix.
    pub fn phases(t: usize) -> usize {
        2 * t + 3
    }

    /// Total round budget: one classification round plus the phase-king
    /// rounds of the full schedule.
    pub fn rounds(t: usize) -> u64 {
        1 + PhaseKing::rounds(Self::phases(t))
    }

    /// Creates the state machine for process `me`.
    ///
    /// `prediction` is `me`'s n-bit prediction string (bit `j` set ⇔
    /// `p_j` predicted honest), exactly as handed to the paper's
    /// Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` and the prediction has `n` bits.
    pub fn new(me: ProcessId, n: usize, t: usize, input: Value, prediction: BitVec) -> Self {
        assert!(3 * t < n, "resilient BA needs 3t < n");
        assert_eq!(prediction.len(), n, "prediction must have n bits");
        ResilientBa {
            me,
            n,
            t,
            input,
            prediction,
            suspicion: None,
            classification: None,
            inner: None,
            out: None,
        }
    }

    /// The raw prediction string this process started from.
    pub fn prediction(&self) -> &BitVec {
        &self.prediction
    }

    /// The aggregated classification — bit `j` set ⇔ a majority of the
    /// received prediction strings trusts `p_j`. This is the pipeline's
    /// probe surface: its realized `k_A` measures prediction quality
    /// *after* the exchange has washed out minority noise, which is the
    /// resilience mechanism in one number. `None` until round 1.
    pub fn classification(&self) -> Option<&BitVec> {
        self.classification.as_ref()
    }

    /// The per-identifier suspicion scores aggregated at round 1.
    pub fn suspicion(&self) -> Option<&[usize]> {
        self.suspicion.as_deref()
    }

    /// The king schedule this process derived (`None` until round 1).
    pub fn schedule(&self) -> Option<Vec<ProcessId>> {
        self.suspicion
            .as_ref()
            .map(|s| king_schedule(self.n, self.t, s))
    }

    /// Aggregates the round-0 classifications and seats the inner
    /// trust-ordered phase king.
    fn ingest_classifications(&mut self, inbox: &[Envelope<ResilientMsg>]) {
        let per_sender = classifications_by_sender(inbox);
        let voters = per_sender
            .values()
            .filter(|c| c.len() == self.n)
            .count()
            .max(1);
        let suspicion = suspicion_scores(self.n, per_sender.into_values());
        let mut classification = BitVec::zeros(self.n);
        for (j, &s) in suspicion.iter().enumerate() {
            classification.set(j, 2 * s < voters);
        }
        let schedule = king_schedule(self.n, self.t, &suspicion);
        self.inner = Some(PhaseKing::with_kings(
            self.me, self.n, self.t, self.input, schedule,
        ));
        self.suspicion = Some(suspicion);
        self.classification = Some(classification);
    }
}

impl Process for ResilientBa {
    type Msg = ResilientMsg;
    type Output = Value;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<ResilientMsg>],
        out: &mut Outbox<ResilientMsg>,
    ) {
        if round == 0 {
            out.broadcast(ResilientMsg::Classify(Arc::new(self.prediction.clone())));
            return;
        }
        if round == 1 {
            self.ingest_classifications(inbox);
        }
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let sub = sub_inbox(inbox, |m| match m {
            ResilientMsg::Phase(x) => Some(Arc::clone(x)),
            _ => None,
        });
        let mut sub_out = Outbox::new(out.sender(), out.system_size());
        inner.step(round - 1, &sub, &mut sub_out);
        forward_sub(sub_out, out, ResilientMsg::Phase);
        if let Some(o) = inner.output() {
            self.out = Some(o.decision.unwrap_or(o.value));
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

/// The worst-case coalition against the resilient pipeline — the
/// adversary the bench sweeps use to realize the graceful-degradation
/// round curve (every faulty king the error budget promotes stalls its
/// phase):
///
/// * **classification round** — votes "everyone is honest", shielding
///   the coalition so that missed-detection budget spent on its members
///   keeps them at the head of the throne order;
/// * **every graded-consensus round** — equivocates value 0 to
///   even-numbered recipients and silence to the odd ones, keeping
///   honest values split below every quorum while no honest king reigns;
/// * **faulty king phases** — splits the crown broadcast (0 to evens,
///   1 to odds).
///
/// The coalition derives the throne order exactly as the honest
/// processes do: rushing visibility over the round-0 classifications
/// (plus its own shield votes) reproduces the suspicion scores, so it
/// always knows which phases are its own to waste. Deterministic: no
/// randomness anywhere.
pub struct ResilientDisruptor {
    n: usize,
    t: usize,
    faulty: Vec<ProcessId>,
    schedule: Vec<ProcessId>,
}

impl ResilientDisruptor {
    /// Creates the disruptor for the given system parameters.
    pub fn new(n: usize, t: usize, faulty: Vec<ProcessId>) -> Self {
        ResilientDisruptor {
            n,
            t,
            faulty,
            schedule: Vec::new(),
        }
    }

    /// One phase-slot's worth of coalition disruption, shared by the
    /// unsigned and signed disruptors: equivocate every graded-consensus
    /// round (the message to even recipients, silence to the odd ones —
    /// the selective half-cast that keeps minimum/plurality-style
    /// honest aggregation split) and split the crown broadcast whenever
    /// the scheduled king is a coalition member.
    pub(crate) fn disrupt_phase<M: Clone>(
        ctx: &mut AdversaryCtx<'_, M>,
        faulty: &[ProcessId],
        n: usize,
        king: ProcessId,
        tag: u16,
        slot: u64,
        wrap: impl Fn(Arc<PhaseKingMsg>) -> M,
    ) {
        let gc = |inner: UnauthGcMsg, main: bool| {
            let inner = Arc::new(inner);
            wrap(Arc::new(if main {
                PhaseKingMsg::Main { phase: tag, inner }
            } else {
                PhaseKingMsg::Detect { phase: tag, inner }
            }))
        };
        let split_cast = |ctx: &mut AdversaryCtx<'_, M>, msg: M| {
            for &from in faulty {
                for to in ProcessId::all(n).filter(|p| p.0.is_multiple_of(2)) {
                    ctx.send(from, to, msg.clone());
                }
            }
        };
        match slot {
            0 => split_cast(ctx, gc(UnauthGcMsg::Vote(Value(0)), true)),
            1 => split_cast(ctx, gc(UnauthGcMsg::Echo(Value(0)), true)),
            2 => {
                if faulty.contains(&king) {
                    for to in ProcessId::all(n) {
                        let value = Value(u64::from(to.0 % 2));
                        let msg = wrap(Arc::new(PhaseKingMsg::King { phase: tag, value }));
                        ctx.send(king, to, msg);
                    }
                }
            }
            3 => split_cast(ctx, gc(UnauthGcMsg::Vote(Value(0)), false)),
            4 => split_cast(ctx, gc(UnauthGcMsg::Echo(Value(0)), false)),
            _ => unreachable!(),
        }
    }
}

impl Adversary<ResilientMsg> for ResilientDisruptor {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, ResilientMsg>) {
        if ctx.round == 0 {
            // Reconstruct the suspicion scores the honest processes will
            // compute at round 1: their classifications (rushed) plus the
            // coalition's all-ones shield votes (which add no suspicion).
            let per_sender = classifications_by_sender(ctx.honest_traffic);
            let suspicion = suspicion_scores(self.n, per_sender.into_values());
            self.schedule = king_schedule(self.n, self.t, &suspicion);
            let shield = ResilientMsg::Classify(Arc::new(BitVec::ones(self.n)));
            for &from in &self.faulty {
                ctx.broadcast(from, shield.clone());
            }
            return;
        }
        let local = ctx.round - 1;
        let phase = (local / 5) as usize;
        if phase >= self.schedule.len() {
            return;
        }
        Self::disrupt_phase(
            ctx,
            &self.faulty,
            self.n,
            self.schedule[phase],
            phase as u16,
            local % 5,
            ResilientMsg::Phase,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::PredictionMatrix;
    use ba_sim::{ReplayAdversary, Runner, SilentAdversary};
    use std::collections::BTreeSet;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(
        n: usize,
        t: usize,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        input: impl Fn(usize) -> u64,
    ) -> BTreeMap<ProcessId, ResilientBa> {
        ProcessId::all(n)
            .filter(|id| !faulty.contains(id))
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    ResilientBa::new(id, n, t, Value(input(slot)), matrix.row(id).clone()),
                )
            })
            .collect()
    }

    #[test]
    fn perfect_predictions_decide_in_the_first_phase() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 6), SilentAdversary);
        let report = runner.run(ResilientBa::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        // Classify + phase 0 decides + phase 1 returns: well inside two
        // phases' worth of rounds.
        assert!(report.last_decision_round.expect("decided") <= 1 + 2 * 5 + 1);
    }

    #[test]
    fn rounds_grow_one_phase_per_promoted_faulty_king() {
        // Split inputs never self-unify in the graded consensus (no
        // quorum), so each phase whose scheduled king is silent-faulty
        // stalls. Fully trusting k faulty identifiers (zero suspicion,
        // lowest ids) must cost exactly k extra phases.
        let n = 13;
        let t = 4;
        let f = faults(&[0, 1]);
        let decide_round = |promoted: usize| {
            let mut m = PredictionMatrix::perfect(n, &f);
            for target in 0..promoted {
                for row in ProcessId::all(n).filter(|p| !f.contains(p)) {
                    m.row_mut(row).set(target, true);
                }
            }
            let mut runner = Runner::with_ids(
                n,
                system(n, t, &f, &m, |slot| 1 + (slot % 2) as u64),
                SilentAdversary,
            );
            let report = runner.run(ResilientBa::rounds(t));
            assert!(report.agreement(), "promoted = {promoted}");
            report.last_decision_round.expect("decided")
        };
        let base = decide_round(0);
        assert_eq!(decide_round(1), base + 5, "one faulty king, one phase");
        assert_eq!(decide_round(2), base + 10, "two faulty kings, two phases");
    }

    #[test]
    fn garbage_predictions_still_decide_within_the_budget() {
        // All-zero predictions: everyone suspects everyone, the schedule
        // degenerates to identifier order — the baseline — and the run
        // must still agree on split inputs.
        let n = 10;
        let f = faults(&[0, 4]);
        let m = PredictionMatrix::from_rows(vec![BitVec::zeros(n); n]);
        let mut runner = Runner::with_ids(
            n,
            system(n, 3, &f, &m, |slot| 1 + (slot % 2) as u64),
            SilentAdversary,
        );
        let report = runner.run(ResilientBa::rounds(3));
        assert!(report.agreement());
        assert!(report.all_decided());
    }

    #[test]
    fn unanimity_validity_holds_regardless_of_prediction_quality() {
        let n = 10;
        let f = faults(&[2, 5]);
        let m = PredictionMatrix::all_honest(n);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 4), SilentAdversary);
        let report = runner.run(ResilientBa::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(4)), "unanimity survives");
    }

    #[test]
    fn equivocated_classifications_cannot_break_agreement_or_liveness() {
        // A Byzantine classifier sends a different prediction string to
        // every recipient: honest suspicion views (and therefore throne
        // prefixes) diverge. The identifier-rotation suffix must still
        // crown a common honest king inside the budget.
        use ba_sim::FnAdversary;
        let n = 7;
        let t = 2;
        let f = faults(&[6]);
        let m = PredictionMatrix::perfect(n, &f);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientMsg>| {
            if ctx.round == 0 {
                for to in ProcessId::all(7) {
                    // Suspect a different singleton per recipient.
                    let mut bits = BitVec::ones(7);
                    bits.set((to.0 as usize) % 7, false);
                    ctx.send(ProcessId(6), to, ResilientMsg::Classify(Arc::new(bits)));
                }
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, |slot| (slot % 2) as u64), adv);
        let report = runner.run(ResilientBa::rounds(t));
        assert!(report.agreement());
        assert!(report.all_decided(), "suffix rotation guarantees liveness");
    }

    #[test]
    fn equivocated_classifications_split_the_unsigned_schedules() {
        // Pins the *documented conditional* behaviour the rotation
        // suffix exists for: a per-recipient classification equivocator
        // splits the honest suspicion views so thoroughly that no two
        // honest processes share a throne prefix, every prefix phase
        // stalls (nobody believes itself king), and the decision only
        // lands in the common identifier-rotation suffix. The signed
        // variant convicts the equivocator instead — see
        // `signed::tests::equivocated_classifications_are_convicted_and_schedules_agree`.
        use ba_sim::FnAdversary;
        let n = 7;
        let t = 2;
        let f = faults(&[6]);
        let m = PredictionMatrix::perfect(n, &f);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ResilientMsg>| {
            if ctx.round == 0 {
                for to in ProcessId::all(7) {
                    let mut bits = BitVec::ones(7);
                    bits.set((to.0 as usize) % 7, false);
                    ctx.send(ProcessId(6), to, ResilientMsg::Classify(Arc::new(bits)));
                }
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, |slot| (slot % 2) as u64), adv);
        let report = runner.run(ResilientBa::rounds(t));
        assert!(report.agreement());
        assert!(report.all_decided());
        let schedules: Vec<Vec<ProcessId>> = ProcessId::all(n)
            .filter(|p| !f.contains(p))
            .map(|id| {
                runner
                    .process(id)
                    .expect("honest")
                    .schedule()
                    .expect("seated")
            })
            .collect();
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "unsigned equivocation must split the schedules (got \
             {schedules:?}) — if this starts failing, the documented \
             conditionality has changed and the signed variant's \
             contrast tests need revisiting"
        );
        assert!(
            report.last_decision_round.expect("decided") > 1 + 5 * (t as u64 + 1),
            "with fully split prefixes, only the rotation suffix decides"
        );
    }

    #[test]
    fn disruptor_realizes_the_promoted_king_staircase() {
        // Against the worst-case coalition, promoting both faulty
        // identifiers to full trust costs two stalled phases even though
        // the coalition also equivocates every quorum protocol.
        let n = 13;
        let t = 4;
        let f = faults(&[0, 1]);
        let run = |promoted: usize| {
            let mut m = PredictionMatrix::perfect(n, &f);
            for target in 0..promoted {
                for row in ProcessId::all(n).filter(|p| !f.contains(p)) {
                    m.row_mut(row).set(target, true);
                }
            }
            let mut runner = Runner::with_ids(
                n,
                system(n, t, &f, &m, |slot| 1 + (slot % 2) as u64),
                ResilientDisruptor::new(n, t, vec![ProcessId(0), ProcessId(1)]),
            );
            let report = runner.run(ResilientBa::rounds(t));
            assert!(report.agreement(), "promoted = {promoted}");
            report.last_decision_round.expect("decided")
        };
        let base = run(0);
        assert!(run(1) > base, "a promoted faulty king must cost rounds");
        assert!(run(2) > run(1), "and the cost must grow with the count");
    }

    #[test]
    fn replayed_traffic_is_inert() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 6), ReplayAdversary::new(1));
        let report = runner.run(ResilientBa::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
    }

    #[test]
    fn aggregated_classification_washes_out_minority_noise() {
        // Two honest rows falsely accuse p1 and miss p3: the majority
        // verdict still classifies everyone correctly.
        let n = 10;
        let f = faults(&[3, 7]);
        let mut m = PredictionMatrix::perfect(n, &f);
        m.row_mut(ProcessId(0)).set(1, false);
        m.row_mut(ProcessId(2)).set(1, false);
        m.row_mut(ProcessId(0)).set(3, true);
        m.row_mut(ProcessId(2)).set(3, true);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 6), SilentAdversary);
        let _ = runner.run(ResilientBa::rounds(3));
        let p = runner.process(ProcessId(1)).expect("honest");
        let c = p.classification().expect("aggregated");
        for j in 0..n {
            assert_eq!(
                c.get(j),
                !f.contains(&ProcessId(j as u32)),
                "majority verdict wrong about p{j}"
            );
        }
    }

    #[test]
    fn suspicion_scores_count_accusers_and_ignore_garbage_lengths() {
        let a = BitVec::from_bools(&[true, false, true]);
        let b = BitVec::from_bools(&[false, false, true]);
        let junk = BitVec::from_bools(&[false; 7]);
        let s = suspicion_scores(3, [&a, &b, &junk]);
        assert_eq!(s, vec![1, 2, 0]);
    }

    #[test]
    fn king_schedule_puts_trust_first_and_ends_in_rotation() {
        // n = 7, t = 2: 3-slot trust prefix plus rotation p0..p3.
        let suspicion = vec![5, 0, 4, 0, 1, 6, 6];
        let ks = king_schedule(7, 2, &suspicion);
        assert_eq!(ks.len(), ResilientBa::phases(2));
        assert_eq!(&ks[..3], &[ProcessId(1), ProcessId(3), ProcessId(4)]);
        assert_eq!(
            &ks[3..],
            &[ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn message_sizes_follow_the_wire_model() {
        let classify = ResilientMsg::Classify(Arc::new(BitVec::ones(16)));
        // 1 discriminant + 4 length prefix + 2 packed bytes.
        assert_eq!(classify.wire_bytes(), 7);
        let king = ResilientMsg::Phase(Arc::new(PhaseKingMsg::King {
            phase: 0,
            value: Value(1),
        }));
        // 1 + (1 discriminant + 2 phase + 8 value).
        assert_eq!(king.wire_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn rejects_too_many_faults() {
        let _ = ResilientBa::new(ProcessId(0), 9, 3, Value(0), BitVec::ones(9));
    }
}
