//! Property-based verification of the early-stopping substrates (S4/S5):
//! conditional correctness (`f ≤ k` ⇒ agreement + unanimity within the
//! advertised rounds) and unconditional safety of the full baselines.

use ba_crypto::Pki;
use ba_early::{EsUnauth, PhaseKing, TruncatedDs};
use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Phase-king with f ≤ t silent faults: agreement within 5(f+2)
    /// rounds — the early-stopping bound — not merely within the full
    /// t+2-phase budget.
    #[test]
    fn phase_king_early_stops(
        n in 7usize..16,
        f_frac in 0usize..=100,
        split in proptest::bool::ANY,
    ) {
        let t = (n - 1) / 3;
        let f = t * f_frac / 100;
        let honest: BTreeMap<ProcessId, PhaseKing> = ProcessId::all(n)
            .skip(f)
            .enumerate()
            .map(|(slot, id)| {
                let v = if split { Value(1 + (slot % 2) as u64) } else { Value(5) };
                (id, PhaseKing::full(id, n, t, v))
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(PhaseKing::rounds(t + 2) + 2);
        prop_assert!(report.agreement());
        let last = report.last_decision_round.expect("all decided");
        prop_assert!(
            last <= PhaseKing::rounds(f + 2) + 1,
            "decided at {}, early-stopping bound {}",
            last,
            PhaseKing::rounds(f + 2)
        );
        if !split {
            let d = report.decision().expect("agreement checked");
            prop_assert_eq!(d.decision, Some(Value(5)));
        }
    }

    /// Truncated Dolev–Strong with f ≤ k: agreement + unanimity in
    /// exactly k+1 rounds; at k = t it is the unconditional baseline.
    #[test]
    fn truncated_ds_conditional_contract(
        n in 5usize..12,
        k in 1usize..4,
        f_frac in 0usize..=100,
        seed in 0u64..500,
        split in proptest::bool::ANY,
    ) {
        let t = (n - 1) / 2;
        prop_assume!(k <= t);
        let f = (k * f_frac / 100).min(t);
        let pki = Arc::new(Pki::new(n, seed));
        let honest: BTreeMap<ProcessId, TruncatedDs> = ProcessId::all(n)
            .skip(f)
            .enumerate()
            .map(|(slot, id)| {
                let v = if split { Value(1 + (slot % 2) as u64) } else { Value(6) };
                (
                    id,
                    TruncatedDs::new(id, n, t, k, seed, v, Arc::clone(&pki), pki.signing_key(id.0)),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, SilentAdversary);
        let report = runner.run(TruncatedDs::rounds(k) + 2);
        prop_assert!(report.agreement(), "f = {f} ≤ k = {k} must agree");
        prop_assert_eq!(report.last_decision_round, Some(TruncatedDs::rounds(k)));
        if !split {
            prop_assert_eq!(report.decision(), Some(&Value(6)));
        }
    }

    /// The dispatcher picks a protocol whose advertised rounds are kept,
    /// and the choice is consistent across all processes (a divergent
    /// choice would deadlock the lockstep schedule).
    #[test]
    fn dispatcher_rounds_are_exact(
        n in 10usize..24,
        k in 1usize..6,
    ) {
        let t = (n - 1) / 3;
        prop_assume!(t >= 1);
        let rounds = EsUnauth::rounds(n, t, k);
        let procs: Vec<EsUnauth> = (0..n)
            .map(|i| EsUnauth::new(ProcessId(i as u32), n, t, k, Value(1 + (i % 2) as u64)))
            .collect();
        let same_kind = procs
            .windows(2)
            .all(|w| matches!(
                (&w[0], &w[1]),
                (EsUnauth::Alg5(_), EsUnauth::Alg5(_)) | (EsUnauth::King(_), EsUnauth::King(_))
            ));
        prop_assert!(same_kind, "dispatch must be deterministic in (n, t, k)");
        let mut runner = Runner::new(n, procs, SilentAdversary);
        let report = runner.run(rounds + 2);
        prop_assert!(report.all_decided(), "must finish within EsUnauth::rounds");
        prop_assert!(report.last_decision_round.expect("decided") <= rounds + 1);
    }
}
