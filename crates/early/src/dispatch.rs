//! The early-stopping dispatcher used by the guess-and-double wrapper.
//!
//! Algorithm 1 runs, in each phase, an early-stopping BA with a fault
//! budget `k = 2^{φ-1}`. This module picks the concrete protocol:
//!
//! * **Unauthenticated** ([`EsUnauth`]): when Theorem 5's condition
//!   `(2k+1)(3k+1) ≤ n − t − k` holds, reuse the paper's own Algorithm 5
//!   with the *trivial all-honest classification* (identity priority
//!   order). Every faulty process is then "misclassified", so `f ≤ k`
//!   implies the ≤ `k` misclassification precondition and Theorem 5
//!   applies verbatim — `5(2k+1)` rounds, `O(nk²)` messages. Otherwise,
//!   fall back to the truncated [`PhaseKing`] (`min(k,t)+2` phases).
//! * **Authenticated**: [`TruncatedDs`](crate::TruncatedDs) with budget
//!   `k` directly (it is self-conditional on `f ≤ k`).

use crate::phase_king::{PhaseKing, PhaseKingMsg};
use ba_sim::{forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Value, WireSize};
use ba_unauth::{Alg5Msg, UnauthBaWithClassification};
use std::sync::Arc;

/// Messages of the unauthenticated early-stopping dispatcher.
#[derive(Clone, Debug)]
pub enum EsUnauthMsg {
    /// Algorithm-5-with-trivial-classification traffic.
    Alg5(Arc<Alg5Msg>),
    /// Phase-king traffic.
    King(Arc<PhaseKingMsg>),
}

/// A discriminant byte plus the inner payload.
impl WireSize for EsUnauthMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            EsUnauthMsg::Alg5(inner) => inner.wire_bytes(),
            EsUnauthMsg::King(inner) => inner.wire_bytes(),
        }
    }
}

/// Unauthenticated early-stopping Byzantine agreement with fault budget
/// `k` (substitution S4).
///
/// Contract: if `f ≤ k`, all honest processes output the same value
/// within [`EsUnauth::rounds`] rounds, and unanimous honest inputs are
/// preserved; otherwise the protocol still terminates on schedule but
/// guarantees nothing.
pub enum EsUnauth {
    /// The Algorithm-5 path (condition holds).
    Alg5(UnauthBaWithClassification),
    /// The phase-king fallback.
    King(PhaseKing),
}

impl std::fmt::Debug for EsUnauth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EsUnauth::Alg5(_) => write!(f, "EsUnauth::Alg5"),
            EsUnauth::King(_) => write!(f, "EsUnauth::King"),
        }
    }
}

impl EsUnauth {
    /// Whether the Algorithm-5 path is selected for these parameters.
    pub fn uses_alg5(n: usize, t: usize, k: usize) -> bool {
        UnauthBaWithClassification::condition_holds(n, t, k)
    }

    /// Phase budget of the phase-king fallback.
    fn king_phases(t: usize, k: usize) -> usize {
        PhaseKing::phases_for(k.min(t))
    }

    /// Communication rounds used for budget `k` (output is available at
    /// this step index).
    pub fn rounds(n: usize, t: usize, k: usize) -> u64 {
        if Self::uses_alg5(n, t, k) {
            UnauthBaWithClassification::rounds(k)
        } else {
            PhaseKing::rounds(Self::king_phases(t, k))
        }
    }

    /// Creates the dispatcher for process `me` with fault budget `k`.
    pub fn new(me: ProcessId, n: usize, t: usize, k: usize, input: Value) -> Self {
        if Self::uses_alg5(n, t, k) {
            let order: Arc<Vec<ProcessId>> = Arc::new(ProcessId::all(n).collect());
            EsUnauth::Alg5(UnauthBaWithClassification::new(me, n, k, input, order))
        } else {
            EsUnauth::King(PhaseKing::new(me, n, t, input, Self::king_phases(t, k)))
        }
    }
}

impl Process for EsUnauth {
    type Msg = EsUnauthMsg;
    type Output = Value;

    fn step(&mut self, round: u64, inbox: &[Envelope<EsUnauthMsg>], out: &mut Outbox<EsUnauthMsg>) {
        match self {
            EsUnauth::Alg5(inner) => {
                let sub = sub_inbox(inbox, |m| match m {
                    EsUnauthMsg::Alg5(x) => Some(Arc::clone(x)),
                    EsUnauthMsg::King(_) => None,
                });
                let mut sub_out = Outbox::new(out.sender(), out.system_size());
                inner.step(round, &sub, &mut sub_out);
                forward_sub(sub_out, out, EsUnauthMsg::Alg5);
            }
            EsUnauth::King(inner) => {
                let sub = sub_inbox(inbox, |m| match m {
                    EsUnauthMsg::King(x) => Some(Arc::clone(x)),
                    EsUnauthMsg::Alg5(_) => None,
                });
                let mut sub_out = Outbox::new(out.sender(), out.system_size());
                inner.step(round, &sub, &mut sub_out);
                forward_sub(sub_out, out, EsUnauthMsg::King);
            }
        }
    }

    fn output(&self) -> Option<Value> {
        match self {
            EsUnauth::Alg5(inner) => inner.output().map(|o| o.value),
            EsUnauth::King(inner) => inner.output().map(|o| o.value),
        }
    }

    fn halted(&self) -> bool {
        match self {
            EsUnauth::Alg5(inner) => inner.halted(),
            EsUnauth::King(inner) => inner.halted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Runner, SilentAdversary};

    fn system(n: usize, t: usize, k: usize, inputs: &[u64]) -> Vec<EsUnauth> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| EsUnauth::new(ProcessId(i as u32), n, t, k, Value(v)))
            .collect()
    }

    #[test]
    fn small_k_selects_alg5() {
        assert!(EsUnauth::uses_alg5(40, 2, 2));
        let es = EsUnauth::new(ProcessId(0), 40, 2, 2, Value(1));
        assert!(matches!(es, EsUnauth::Alg5(_)));
    }

    #[test]
    fn large_k_falls_back_to_phase_king() {
        assert!(!EsUnauth::uses_alg5(10, 3, 3));
        let es = EsUnauth::new(ProcessId(0), 10, 3, 3, Value(1));
        assert!(matches!(es, EsUnauth::King(_)));
    }

    #[test]
    fn alg5_path_agrees_with_f_at_most_k() {
        let (n, t, k) = (40, 2, 2);
        let inputs: Vec<u64> = (0..38).map(|i| i % 2).collect();
        let mut runner = Runner::new(n, system(n, t, k, &inputs), SilentAdversary);
        let report = runner.run(EsUnauth::rounds(n, t, k) + 2);
        assert!(report.agreement());
    }

    #[test]
    fn king_path_agrees_with_f_at_most_k() {
        let (n, t, k) = (10, 3, 3);
        let inputs: Vec<u64> = (0..8).map(|i| i % 2).collect();
        let mut runner = Runner::new(n, system(n, t, k, &inputs), SilentAdversary);
        let report = runner.run(EsUnauth::rounds(n, t, k) + 2);
        assert!(report.agreement());
    }

    #[test]
    fn rounds_formula_matches_paths() {
        assert_eq!(EsUnauth::rounds(40, 2, 2), 25, "Alg5: 5(2k+1)");
        assert_eq!(EsUnauth::rounds(10, 3, 3), 25, "king: 5(k+2)");
        assert_eq!(EsUnauth::rounds(10, 3, 100), 25, "king phases capped by t");
    }
}
