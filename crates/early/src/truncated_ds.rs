//! Truncated parallel Dolev–Strong agreement (`t < n/2`, authenticated)
//! — substitution S5.
//!
//! The paper's wrapper needs an authenticated early-stopping agreement
//! (Theorem 10). We reuse the paper's own Algorithm 6 in
//! [`CommitteeMode::Universal`]: every process broadcasts its input
//! through a chain-signed broadcast instance truncated at `k + 1` rounds,
//! then everyone takes the plurality of the delivered vector.
//!
//! *Conditional correctness.* If the actual fault count satisfies
//! `f ≤ k`, every length-`k+1` chain carries an honest link, so this is
//! exactly `n` parallel Dolev–Strong broadcasts: all honest processes
//! agree on every instance's output, and the (smallest-most-frequent,
//! `⊥`-free) plurality yields Agreement; with unanimous honest inputs
//! `v`, honest instances (a strict majority, `n − f > n/2`) all deliver
//! `v`, so the plurality is `v` — Strong Unanimity.
//!
//! With `f > k` nothing is guaranteed — the wrapper's graded-consensus
//! sandwich protects safety, and a later (larger-`k`) phase completes the
//! job. At `k = t` this is a full Dolev–Strong run and unconditionally
//! correct for `t < n/2`: that configuration, [`TruncatedDs::full`], is
//! also the repository's prediction-free authenticated baseline.

use ba_auth::bb_committee::{BbBatch, CommitteeMode, ParallelBroadcast};
use ba_crypto::{Pki, SigningKey};
use ba_sim::{plurality_smallest, Envelope, Outbox, Process, ProcessId, Value};
use std::sync::Arc;

/// One process's state machine for truncated parallel Dolev–Strong
/// agreement.
///
/// Runs in `k + 1` communication rounds; the output is available at step
/// `k + 1`.
pub struct TruncatedDs {
    inner: ParallelBroadcast,
    input: Value,
    k: usize,
    out: Option<Value>,
}

impl std::fmt::Debug for TruncatedDs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TruncatedDs")
            .field("k", &self.k)
            .field("input", &self.input)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl TruncatedDs {
    /// Rounds used: `k + 1`.
    pub fn rounds(k: usize) -> u64 {
        k as u64 + 1
    }

    /// Creates the state machine for process `me` with fault budget `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `2t < n`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        input: Value,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert!(2 * t < n, "authenticated agreement needs 2t < n");
        let inner = ParallelBroadcast::new(
            me,
            n,
            t,
            k,
            session,
            CommitteeMode::Universal,
            input,
            None,
            pki,
            key,
        );
        TruncatedDs {
            inner,
            input,
            k,
            out: None,
        }
    }

    /// A full, unconditionally correct Dolev–Strong run (`k = t`): the
    /// authenticated prediction-free baseline.
    pub fn full(
        me: ProcessId,
        n: usize,
        t: usize,
        session: u64,
        input: Value,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        Self::new(me, n, t, t, session, input, pki, key)
    }
}

impl Process for TruncatedDs {
    type Msg = BbBatch;
    type Output = Value;

    fn step(&mut self, round: u64, inbox: &[Envelope<BbBatch>], out: &mut Outbox<BbBatch>) {
        if self.out.is_some() {
            return;
        }
        self.inner.step(round, inbox, out);
        if round == self.k as u64 + 1 {
            let outputs = self
                .inner
                .outputs()
                .expect("parallel broadcast outputs after k+1 rounds");
            self.out =
                Some(plurality_smallest(outputs.iter().flatten().copied()).unwrap_or(self.input));
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_auth::chains::MessageChain;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};

    fn system(
        n: usize,
        t: usize,
        k: usize,
        session: u64,
        inputs: &[u64],
        pki: &Arc<Pki>,
    ) -> Vec<TruncatedDs> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                TruncatedDs::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    k,
                    session,
                    Value(v),
                    Arc::clone(pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn strong_unanimity_beyond_one_third_faults() {
        // n = 5, t = 2 silent faults: impossible without signatures.
        let n = 5;
        let pki = Arc::new(Pki::new(n, 3));
        let mut runner = Runner::new(n, system(n, 2, 2, 1, &[4, 4, 4], &pki), SilentAdversary);
        let report = runner.run(8);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(4)));
        assert_eq!(report.last_decision_round, Some(TruncatedDs::rounds(2)));
    }

    #[test]
    fn agreement_mixed_inputs_f_within_budget() {
        let n = 7;
        let pki = Arc::new(Pki::new(n, 9));
        // f = 2 silent ≤ k = 2.
        let mut runner = Runner::new(
            n,
            system(n, 3, 2, 1, &[0, 1, 0, 1, 0], &pki),
            SilentAdversary,
        );
        let report = runner.run(10);
        assert!(report.agreement());
        // Plurality of delivered honest inputs: three 0s, two 1s.
        assert_eq!(report.decision(), Some(&Value(0)));
    }

    #[test]
    fn equivocating_sender_collapses_to_bottom_consistently() {
        let n = 5;
        let t = 2;
        let session = 4;
        let pki = Arc::new(Pki::new(n, 17));
        let key4 = pki.signing_key(4);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, BbBatch>| {
            if ctx.round == 0 {
                let a = MessageChain::start(session, 4, Value(70), &key4, None);
                let b = MessageChain::start(session, 4, Value(80), &key4, None);
                // a to everyone, b only to p0 — p0 must spread it.
                ctx.broadcast(ProcessId(4), vec![(4, a)]);
                ctx.send(ProcessId(4), ProcessId(0), vec![(4, b)]);
            }
        });
        let mut runner = Runner::new(n, system(n, t, 1, session, &[2, 2, 2, 2], &pki), adv);
        let report = runner.run(8);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(2)), "unanimity survives");
    }

    #[test]
    fn full_run_is_unconditionally_correct() {
        // k = t: adversary count f = t, mixed inputs — still agreement.
        let n = 5;
        let t = 2;
        let pki = Arc::new(Pki::new(n, 23));
        let procs: Vec<TruncatedDs> = [7u64, 8, 7]
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                TruncatedDs::full(
                    ProcessId(i as u32),
                    n,
                    t,
                    6,
                    Value(v),
                    Arc::clone(&pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect();
        let mut runner = Runner::new(n, procs, SilentAdversary);
        let report = runner.run(10);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(7)));
    }

    #[test]
    fn rounds_scale_with_k_not_t() {
        let n = 9;
        let t = 4;
        let pki = Arc::new(Pki::new(n, 2));
        let mut runner = Runner::new(n, system(n, t, 1, 1, &[3; 9], &pki), SilentAdversary);
        let report = runner.run(10);
        assert_eq!(report.last_decision_round, Some(2), "k+1 = 2 rounds");
    }
}
