//! Early-stopping phase-king Byzantine agreement (`t < n/3`,
//! unauthenticated) — the generic half of substitution S4.
//!
//! The paper's wrapper needs an early-stopping BA (Theorem 9, citing
//! Lenzen–Sheikholeslami \[32\]) that, with `f` actual faults, completes in
//! `O(f)` rounds. This is a simplified protocol with the same structure
//! \[32\] itself builds on: per phase, a *validator* (graded consensus),
//! a king, and another validator to detect agreement:
//!
//! ```text
//! phase p (5 rounds), king = p_{p mod n}:
//!   (v, g)  ← graded-consensus(v)            // 2 rounds
//!   king broadcasts its value                 // 1 round
//!   if g < 2 then v ← king's value
//!   (v, g') ← graded-consensus(v)            // 2 rounds, detect
//!   if already decided in an earlier phase: return decision
//!   if g' = 2: decide v
//! ```
//!
//! *Safety.* Deciding requires detect-grade 2; grade-2 coherence of the
//! graded consensus then forces every honest process to carry the decided
//! value into the next phase, where strong unanimity makes everyone
//! decide it too. *Liveness.* In the first phase with an honest king,
//! either some honest process held main-grade 2 — in which case grade-2
//! coherence already put the same value (as the argmax) at every honest
//! process including the king — or nobody did and everyone adopts the
//! king; either way the phase ends unanimous and the detect consensus
//! fires grade 2 everywhere. With `f` faults an honest king appears
//! within `f + 1` phases, so all honest processes decide within `f + 2`
//! phases = `5(f + 2)` rounds — the early-stopping bound.
//!
//! Messages are `O(n²)` per phase, i.e. `O(fn²)` per run — the documented
//! deviation from \[32\]'s `O(n²)` total (DESIGN.md, substitution S4).

use ba_graded::{UnauthGcMsg, UnauthGraded};
use ba_sim::{
    distinct_values_by_sender, forward_sub, sub_inbox, Envelope, Outbox, Process, ProcessId, Value,
    WireSize,
};
use std::sync::Arc;

/// Messages of the phase-king protocol.
#[derive(Clone, Debug)]
pub enum PhaseKingMsg {
    /// Main graded consensus of a phase.
    Main {
        /// Phase number (0-based).
        phase: u16,
        /// Inner graded-consensus payload.
        inner: Arc<UnauthGcMsg>,
    },
    /// The king's value broadcast.
    King {
        /// Phase number (0-based).
        phase: u16,
        /// The king's post-consensus value.
        value: Value,
    },
    /// Detection graded consensus of a phase.
    Detect {
        /// Phase number (0-based).
        phase: u16,
        /// Inner graded-consensus payload.
        inner: Arc<UnauthGcMsg>,
    },
}

/// A discriminant byte, the phase tag, and the variant's payload.
impl WireSize for PhaseKingMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            PhaseKingMsg::Main { phase, inner } | PhaseKingMsg::Detect { phase, inner } => {
                phase.wire_bytes() + inner.wire_bytes()
            }
            PhaseKingMsg::King { phase, value } => phase.wire_bytes() + value.wire_bytes(),
        }
    }
}

/// Result of a phase-king run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseKingOutput {
    /// The value held when returning.
    pub value: Value,
    /// The decision, if the detect consensus ever fired grade 2 (always
    /// the case when `f + 2 ≤` the configured phase budget).
    pub decision: Option<Value>,
}

/// One process's state machine for early-stopping phase-king agreement.
///
/// # Examples
///
/// ```
/// use ba_early::PhaseKing;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
///
/// let n = 4;
/// let procs: Vec<_> = (0..n as u32)
///     .map(|i| PhaseKing::full(ProcessId(i), n, 1, Value(3)))
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(40);
/// for o in report.outputs.values() {
///     assert_eq!(o.decision, Some(Value(3)));
/// }
/// ```
pub struct PhaseKing {
    me: ProcessId,
    n: usize,
    t: usize,
    phases: usize,
    /// Explicit king schedule (one entry per phase); `None` falls back
    /// to the classic identity rotation `p_{phase mod n}`.
    kings: Option<Arc<[ProcessId]>>,
    value: Value,
    decision: Option<Value>,
    main: Option<UnauthGraded>,
    main_grade: u8,
    detect: Option<UnauthGraded>,
    out: Option<PhaseKingOutput>,
}

impl std::fmt::Debug for PhaseKing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseKing")
            .field("me", &self.me)
            .field("phases", &self.phases)
            .field("value", &self.value)
            .field("decision", &self.decision)
            .finish_non_exhaustive()
    }
}

impl PhaseKing {
    /// Rounds used by a run with the given phase budget.
    pub fn rounds(phases: usize) -> u64 {
        5 * phases as u64
    }

    /// Phase budget sufficient to early-stop with `f ≤ k` faults.
    pub fn phases_for(k: usize) -> usize {
        k + 2
    }

    /// Creates a state machine with an explicit phase budget.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` and `phases ≥ 1`.
    pub fn new(me: ProcessId, n: usize, t: usize, input: Value, phases: usize) -> Self {
        assert!(3 * t < n, "phase king needs 3t < n");
        assert!(phases >= 1);
        PhaseKing {
            me,
            n,
            t,
            phases,
            kings: None,
            value: input,
            decision: None,
            main: None,
            main_grade: 0,
            detect: None,
            out: None,
        }
    }

    /// A full, unconditionally correct run: `t + 2` phases (the
    /// prediction-free baseline BA of the benchmark suite).
    pub fn full(me: ProcessId, n: usize, t: usize, input: Value) -> Self {
        Self::new(me, n, t, input, t + 2)
    }

    /// Creates a state machine with an explicit king schedule: the king
    /// of phase `p` is `kings[p]`, and the phase budget is
    /// `kings.len()`. This is the hook prediction-guided protocols (the
    /// resilient pipeline) use to put trusted identifiers on the throne
    /// first; safety never depends on the schedule, only liveness does
    /// (an honest king phase unifies only if every honest process
    /// agrees who the king is).
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n`, the schedule is non-empty, and every
    /// scheduled king is a valid identifier below `n`.
    pub fn with_kings(
        me: ProcessId,
        n: usize,
        t: usize,
        input: Value,
        kings: Vec<ProcessId>,
    ) -> Self {
        assert!(!kings.is_empty(), "king schedule must cover ≥ 1 phase");
        assert!(
            kings.iter().all(|k| (k.0 as usize) < n),
            "king schedule names an identifier outside the system"
        );
        let mut pk = Self::new(me, n, t, input, kings.len());
        pk.kings = Some(kings.into());
        pk
    }

    fn king_of(&self, phase: usize) -> ProcessId {
        match &self.kings {
            Some(kings) => kings[phase],
            None => ProcessId((phase % self.n) as u32),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_gc(
        gc: &mut UnauthGraded,
        local: u64,
        phase: u16,
        is_main: bool,
        inbox: &[Envelope<PhaseKingMsg>],
        out: &mut Outbox<PhaseKingMsg>,
        me: ProcessId,
        n: usize,
    ) {
        let sub = sub_inbox(inbox, |m| match (m, is_main) {
            (PhaseKingMsg::Main { phase: p, inner }, true) if *p == phase => {
                Some(Arc::clone(inner))
            }
            (PhaseKingMsg::Detect { phase: p, inner }, false) if *p == phase => {
                Some(Arc::clone(inner))
            }
            _ => None,
        });
        let mut sub_out = Outbox::new(me, n);
        gc.step(local, &sub, &mut sub_out);
        forward_sub(sub_out, out, |inner| {
            if is_main {
                PhaseKingMsg::Main { phase, inner }
            } else {
                PhaseKingMsg::Detect { phase, inner }
            }
        });
    }

    /// Completes a phase's detect consensus; returns `true` if the
    /// process returned.
    fn complete_phase(
        &mut self,
        inbox: &[Envelope<PhaseKingMsg>],
        out: &mut Outbox<PhaseKingMsg>,
        phase: usize,
    ) -> bool {
        let mut gc = self.detect.take().expect("detect live at completion");
        Self::drive_gc(&mut gc, 2, phase as u16, false, inbox, out, self.me, self.n);
        let graded = gc.output().expect("graded consensus outputs at step 2");
        self.value = graded.value;
        if let Some(decided) = self.decision {
            self.out = Some(PhaseKingOutput {
                value: decided,
                decision: self.decision,
            });
            return true;
        }
        if graded.grade == 2 {
            self.decision = Some(graded.value);
        }
        false
    }
}

impl Process for PhaseKing {
    type Msg = PhaseKingMsg;
    type Output = PhaseKingOutput;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<PhaseKingMsg>],
        out: &mut Outbox<PhaseKingMsg>,
    ) {
        if self.out.is_some() {
            return;
        }
        let phase = (round / 5) as usize;
        let off = round % 5;
        if phase > self.phases || (phase == self.phases && off > 0) {
            return;
        }
        match off {
            0 => {
                if phase > 0 && self.complete_phase(inbox, out, phase - 1) {
                    return;
                }
                if phase == self.phases {
                    self.out = Some(PhaseKingOutput {
                        value: self.value,
                        decision: self.decision,
                    });
                    return;
                }
                let mut gc = UnauthGraded::new(self.me, self.n, self.t, self.value);
                Self::drive_gc(&mut gc, 0, phase as u16, true, inbox, out, self.me, self.n);
                self.main = Some(gc);
            }
            1 => {
                let mut gc = self.main.take().expect("main live");
                Self::drive_gc(&mut gc, 1, phase as u16, true, inbox, out, self.me, self.n);
                self.main = Some(gc);
            }
            2 => {
                let mut gc = self.main.take().expect("main live");
                Self::drive_gc(&mut gc, 2, phase as u16, true, inbox, out, self.me, self.n);
                let graded = gc.output().expect("graded consensus outputs at step 2");
                self.value = graded.value;
                self.main_grade = graded.grade;
                if self.me == self.king_of(phase) {
                    out.broadcast(PhaseKingMsg::King {
                        phase: phase as u16,
                        value: self.value,
                    });
                }
            }
            3 => {
                // Receive the king's value; adopt it below grade 2.
                let king = self.king_of(phase);
                let king_values = distinct_values_by_sender(inbox, |m| match m {
                    PhaseKingMsg::King { phase: p, value } if *p as usize == phase => Some(*value),
                    _ => None,
                });
                if self.main_grade < 2 {
                    if let Some(v) = king_values.get(&king) {
                        self.value = *v;
                    }
                }
                let mut gc = UnauthGraded::new(self.me, self.n, self.t, self.value);
                Self::drive_gc(&mut gc, 0, phase as u16, false, inbox, out, self.me, self.n);
                self.detect = Some(gc);
            }
            4 => {
                let mut gc = self.detect.take().expect("detect live");
                Self::drive_gc(&mut gc, 1, phase as u16, false, inbox, out, self.me, self.n);
                self.detect = Some(gc);
            }
            _ => unreachable!(),
        }
    }

    fn output(&self) -> Option<PhaseKingOutput> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, Runner, SilentAdversary};

    fn system(n: usize, t: usize, inputs: &[u64], phases: usize) -> Vec<PhaseKing> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| PhaseKing::new(ProcessId(i as u32), n, t, Value(v), phases))
            .collect()
    }

    #[test]
    fn strong_unanimity_decides_in_first_phases() {
        let n = 7;
        let mut runner = Runner::new(n, system(n, 2, &[5; 7], 4), SilentAdversary);
        let report = runner.run(60);
        assert!(report.all_decided());
        for o in report.outputs.values() {
            assert_eq!(o.decision, Some(Value(5)));
        }
        // Unanimity: decide in phase 1, return in phase 2.
        assert!(report.last_decision_round.unwrap() <= 11);
    }

    #[test]
    fn early_stopping_with_f_silent_faults() {
        // f = 1 < t = 2: decision within f + 2 = 3 phases.
        let n = 7;
        let mut runner = Runner::new(n, system(n, 2, &[1, 2, 1, 2, 1, 2], 4), SilentAdversary);
        let report = runner.run(60);
        assert!(report.agreement());
        assert!(
            report.last_decision_round.unwrap() <= PhaseKing::rounds(3) + 1,
            "f+2 phase early stop"
        );
    }

    #[test]
    fn agreement_under_equivocating_king() {
        // p0 is the phase-0 king and faulty: it sends different king
        // values to different processes. Later honest kings must repair.
        let n = 7;
        let t = 2;
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, PhaseKingMsg>| {
            // Participate in GCs pretending input 0 or 1 depending on
            // recipient parity, and send split king values in phase 0.
            match ctx.round {
                0 | 3 => {
                    for to in 0..ctx.n as u32 {
                        let v = Value(u64::from(to % 2));
                        ctx.send(
                            ProcessId(0),
                            ProcessId(to),
                            if ctx.round == 0 {
                                PhaseKingMsg::Main {
                                    phase: 0,
                                    inner: Arc::new(UnauthGcMsg::Vote(v)),
                                }
                            } else {
                                PhaseKingMsg::Detect {
                                    phase: 0,
                                    inner: Arc::new(UnauthGcMsg::Vote(v)),
                                }
                            },
                        );
                    }
                }
                2 => {
                    for to in 0..ctx.n as u32 {
                        ctx.send(
                            ProcessId(0),
                            ProcessId(to),
                            PhaseKingMsg::King {
                                phase: 0,
                                value: Value(u64::from(to % 2)),
                            },
                        );
                    }
                }
                _ => {}
            }
        });
        let honest: std::collections::BTreeMap<ProcessId, PhaseKing> = (1..n as u32)
            .map(|i| {
                (
                    ProcessId(i),
                    PhaseKing::new(ProcessId(i), n, t, Value(u64::from(i % 2)), t + 2),
                )
            })
            .collect();
        let mut runner = Runner::with_ids(n, honest, adv);
        let report = runner.run(60);
        assert!(
            report.agreement(),
            "honest kings p1/p2 must repair the split"
        );
    }

    #[test]
    fn non_king_cannot_impersonate_king() {
        // A faulty non-king broadcasts King messages; honest processes
        // only adopt from the phase's designated king.
        let n = 4;
        let t = 1;
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, PhaseKingMsg>| {
            if ctx.round % 5 == 2 {
                let phase = (ctx.round / 5) as u16;
                // p3 pretends to be king every phase (it is king only in
                // phase 3).
                if phase != 3 {
                    ctx.broadcast(
                        ProcessId(3),
                        PhaseKingMsg::King {
                            phase,
                            value: Value(999),
                        },
                    );
                }
            }
        });
        let mut runner = Runner::new(n, system(n, t, &[6, 6, 6], t + 2), adv);
        let report = runner.run(60);
        assert!(report.agreement());
        assert_eq!(
            report.outputs.values().next().unwrap().decision,
            Some(Value(6)),
            "fake king values never adopted"
        );
    }

    #[test]
    fn safety_never_violated_across_random_faulty_noise() {
        // Deterministic pseudo-random Byzantine noise across all message
        // kinds; agreement and validity must hold in every run.
        for seed in 0..10u64 {
            let n = 7;
            let t = 2;
            let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, PhaseKingMsg>| {
                let phase = (ctx.round / 5) as u16;
                for (j, from) in [ProcessId(5), ProcessId(6)].into_iter().enumerate() {
                    let x = seed
                        .wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add(ctx.round * 31 + j as u64);
                    let v = Value(x % 3);
                    let msg = match x % 4 {
                        0 => PhaseKingMsg::Main {
                            phase,
                            inner: Arc::new(UnauthGcMsg::Vote(v)),
                        },
                        1 => PhaseKingMsg::Main {
                            phase,
                            inner: Arc::new(UnauthGcMsg::Echo(v)),
                        },
                        2 => PhaseKingMsg::King { phase, value: v },
                        _ => PhaseKingMsg::Detect {
                            phase,
                            inner: Arc::new(UnauthGcMsg::Vote(v)),
                        },
                    };
                    ctx.broadcast(from, msg);
                }
            });
            let mut runner = Runner::new(7, system(n, t, &[0, 1, 0, 1, 0], t + 2), adv);
            let report = runner.run(80);
            assert!(report.agreement(), "seed {seed} broke agreement");
            let d = report.outputs.values().next().unwrap().value;
            assert!(d == Value(0) || d == Value(1), "seed {seed} invented {d}");
        }
    }

    #[test]
    fn validity_all_same_input_under_noise() {
        let n = 7;
        let t = 2;
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, PhaseKingMsg>| {
            let phase = (ctx.round / 5) as u16;
            ctx.broadcast(
                ProcessId(6),
                PhaseKingMsg::Main {
                    phase,
                    inner: Arc::new(UnauthGcMsg::Vote(Value(9))),
                },
            );
        });
        let mut runner = Runner::new(n, system(n, t, &[4; 6], t + 2), adv);
        let report = runner.run(80);
        assert!(report.agreement());
        assert_eq!(report.outputs.values().next().unwrap().value, Value(4));
    }

    #[test]
    fn explicit_king_schedule_changes_who_unifies_first() {
        // Split inputs, one silent fault (p3). Under the identity
        // rotation p0 (honest) is the phase-0 king and the run decides
        // immediately; with p3 scheduled first, phase 0 stalls and the
        // honest phase-1 king repairs — exactly one phase later.
        let n = 7;
        let t = 2;
        let run = |kings: Vec<ProcessId>| {
            let honest: std::collections::BTreeMap<ProcessId, PhaseKing> = (0..n as u32)
                .filter(|i| *i != 3)
                .map(|i| {
                    let id = ProcessId(i);
                    (
                        id,
                        PhaseKing::with_kings(id, n, t, Value(u64::from(i % 2)), kings.clone()),
                    )
                })
                .collect();
            let mut runner = Runner::with_ids(n, honest, SilentAdversary);
            let report = runner.run(60);
            assert!(report.agreement());
            report.last_decision_round.expect("decided")
        };
        let trusted_first = run(vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(4)]);
        let faulty_first = run(vec![ProcessId(3), ProcessId(0), ProcessId(1), ProcessId(2)]);
        assert_eq!(
            faulty_first,
            trusted_first + 5,
            "a scheduled faulty king costs exactly one phase"
        );
    }

    #[test]
    #[should_panic(expected = "≥ 1 phase")]
    fn empty_king_schedule_is_rejected() {
        let _ = PhaseKing::with_kings(ProcessId(0), 4, 1, Value(0), vec![]);
    }

    #[test]
    #[should_panic(expected = "outside the system")]
    fn out_of_range_king_is_rejected() {
        let _ = PhaseKing::with_kings(ProcessId(0), 4, 1, Value(0), vec![ProcessId(9)]);
    }

    #[test]
    fn phase_budget_bounds_rounds() {
        let n = 4;
        let mut runner = Runner::new(n, system(n, 1, &[1, 2, 1, 2], 3), SilentAdversary);
        let report = runner.run(100);
        assert!(report.all_decided());
        assert!(report.rounds_executed <= PhaseKing::rounds(3) + 2);
    }
}
