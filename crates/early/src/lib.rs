//! # ba-early — early-stopping agreement substrates and baselines
//!
//! The guess-and-double wrapper of *Byzantine Agreement with Predictions*
//! (Algorithm 1) runs, in each phase, an early-stopping Byzantine
//! agreement with time budget `T = α·2^{φ−1}`: with `f` actual faults
//! below the budget, all honest processes must agree by the deadline.
//! The paper cites Lenzen–Sheikholeslami \[32\] (unauthenticated,
//! Theorem 9) and its authenticated variant (Theorem 10). This crate
//! provides the substitutes (S4, S5 in `DESIGN.md`):
//!
//! * [`PhaseKing`] — a 5-round-per-phase validator/king/validator
//!   protocol, early-stopping in `f + 2` phases (`t < n/3`);
//! * [`EsUnauth`] — the unauthenticated dispatcher: the paper's own
//!   Algorithm 5 under a trivial all-honest classification when its size
//!   condition allows, phase-king otherwise;
//! * [`TruncatedDs`] — `n` parallel universal-committee Dolev–Strong
//!   broadcasts truncated at `k + 1` rounds plus plurality
//!   (`t < n/2`, authenticated).
//!
//! The *prediction-free baselines* of the benchmark suite come from the
//! same code paths: [`PhaseKing::full`] (unauthenticated, `t + 2`
//! phases) and [`TruncatedDs::full`] (authenticated, `t + 1` rounds).

pub mod dispatch;
pub mod phase_king;
pub mod truncated_ds;

pub use dispatch::{EsUnauth, EsUnauthMsg};
pub use phase_king::{PhaseKing, PhaseKingMsg, PhaseKingOutput};
pub use truncated_ds::TruncatedDs;
