//! Instance-level tests of the certified gradecast state machine,
//! driving each of the five rounds by hand so the per-round rules
//! (echo uniqueness, certificate caps, the confirm snapshot, grade
//! conditions) are pinned in isolation from the batched scheduler.

use ba_crypto::{Pki, Signature};
use ba_graded::gradecast::{
    confirm_bytes, echo_bytes, value_bytes, CommitCert, EchoCert, GcastConfig, GcastInstance,
    GcastItem, GcastOutput,
};
use ba_sim::Value;

fn cfg() -> GcastConfig {
    GcastConfig {
        n: 5,
        t: 2,
        session: 11,
        inst: 0,
    }
}

fn pki() -> Pki {
    Pki::new(5, 77)
}

fn sender_sig(pki: &Pki, v: Value) -> Signature {
    pki.signing_key(0).sign(&value_bytes(11, 0, v))
}

fn echo_sig(pki: &Pki, signer: u32, v: Value) -> Signature {
    pki.signing_key(signer).sign(&echo_bytes(11, 0, v))
}

fn confirm_sig(pki: &Pki, signer: u32, v: Value) -> Signature {
    pki.signing_key(signer).sign(&confirm_bytes(11, 0, v))
}

fn cert(pki: &Pki, v: Value, echoers: &[u32]) -> EchoCert {
    EchoCert {
        value: v,
        sender_sig: sender_sig(pki, v),
        echo_sigs: echoers.iter().map(|&s| echo_sig(pki, s, v)).collect(),
    }
}

/// Runs a fully honest instance end to end by hand: every round's rule
/// fires, and the final output is grade 2.
#[test]
fn honest_happy_path_reaches_grade_2() {
    let pki = pki();
    let c = cfg();
    let mut inst = GcastInstance::new(c);
    let v = Value(6);

    // R1: sender input.
    inst.recv_input(&pki, v, &sender_sig(&pki, v));
    assert!(inst.make_echo(&pki.signing_key(1)).is_some());

    // R2: quorum (n − t = 3) of echoes.
    let ssig = sender_sig(&pki, v);
    for s in [0u32, 1, 2] {
        inst.recv_echo(&pki, v, &ssig, &echo_sig(&pki, s, v));
    }
    let certs = inst.make_certs();
    assert_eq!(certs.len(), 1);

    // R3 → R4: unique certificate ⇒ confirm.
    let confirm = inst.make_confirm(&pki.signing_key(1));
    assert!(matches!(confirm.as_slice(), [GcastItem::Confirm { value, .. }] if *value == v));

    // R4: quorum of direct confirms.
    let own_cert = cert(&pki, v, &[0, 1, 2]);
    for s in [0u32, 1, 2] {
        inst.recv_confirm(&pki, v, &confirm_sig(&pki, s, v), &own_cert);
    }
    let spread = inst.make_spread();
    assert!(
        spread.iter().any(|i| matches!(i, GcastItem::Commit(_))),
        "commit certificate must form from a direct confirm quorum"
    );

    assert_eq!(
        inst.finish(),
        GcastOutput {
            value: Some(v),
            grade: 2
        }
    );
}

/// A second certificate value arriving before the confirm decision
/// suppresses the confirmation (the round-4 conflict-report path).
#[test]
fn conflicting_certs_suppress_confirmation_and_grade() {
    let pki = pki();
    let mut inst = GcastInstance::new(cfg());
    inst.recv_cert(&pki, &cert(&pki, Value(1), &[0, 1, 2]));
    inst.recv_cert(&pki, &cert(&pki, Value(2), &[0, 3, 4]));
    let items = inst.make_confirm(&pki.signing_key(1));
    assert_eq!(items.len(), 2, "conflict report carries both certs");
    assert!(items.iter().all(|i| matches!(i, GcastItem::Cert(_))));
    let _ = inst.make_spread();
    assert_eq!(inst.finish().grade, 0);
}

/// Commit certificates received in round 5 give grade 1 only when the
/// end-of-round-4 certificate view was pure.
#[test]
fn grade_1_requires_pure_round_4_view() {
    let pki = pki();
    let v = Value(9);

    // Pure view: cert(v) only at confirm and spread time ⇒ grade 1 on a
    // received commit certificate.
    let mut pure = GcastInstance::new(cfg());
    pure.recv_cert(&pki, &cert(&pki, v, &[0, 1, 2]));
    let _ = pure.make_confirm(&pki.signing_key(1));
    let _ = pure.make_spread();
    let cc = CommitCert {
        value: v,
        confirm_sigs: [0u32, 1, 2]
            .iter()
            .map(|&s| confirm_sig(&pki, s, v))
            .collect(),
    };
    pure.recv_commit(&pki, &cc);
    assert_eq!(
        pure.finish(),
        GcastOutput {
            value: Some(v),
            grade: 1
        }
    );

    // Impure view: a second certificate value known by the end of round
    // 4 forces grade 0 even with the same commit certificate.
    let mut impure = GcastInstance::new(cfg());
    impure.recv_cert(&pki, &cert(&pki, v, &[0, 1, 2]));
    impure.recv_cert(&pki, &cert(&pki, Value(8), &[0, 3, 4]));
    let _ = impure.make_confirm(&pki.signing_key(1));
    let _ = impure.make_spread();
    impure.recv_commit(&pki, &cc);
    assert_eq!(impure.finish().grade, 0);
}

/// Confirm signatures for a value with no known certificate are noise.
#[test]
fn confirms_without_certificates_do_not_count() {
    let pki = pki();
    let mut inst = GcastInstance::new(cfg());
    let v = Value(3);
    let junk_cert = EchoCert {
        value: Value(4), // mismatched: attached cert is for another value
        sender_sig: sender_sig(&pki, Value(4)),
        echo_sigs: vec![echo_sig(&pki, 0, Value(4))],
    };
    for s in [0u32, 1, 2] {
        inst.recv_confirm(&pki, v, &confirm_sig(&pki, s, v), &junk_cert);
    }
    let _ = inst.make_confirm(&pki.signing_key(1));
    let spread = inst.make_spread();
    assert!(
        !spread.iter().any(|i| matches!(i, GcastItem::Commit(_))),
        "no certificate, no commit"
    );
    assert_eq!(inst.finish().grade, 0);
}

/// Duplicate echo signers never inflate a quorum.
#[test]
fn duplicate_echoers_do_not_reach_quorum() {
    let pki = pki();
    let mut inst = GcastInstance::new(cfg());
    let v = Value(5);
    let ssig = sender_sig(&pki, v);
    inst.recv_input(&pki, v, &ssig);
    for _ in 0..5 {
        inst.recv_echo(&pki, v, &ssig, &echo_sig(&pki, 1, v));
    }
    assert!(inst.make_certs().is_empty(), "one signer echoed five times");
}

/// A commit certificate below the confirm quorum is rejected.
#[test]
fn short_commit_certificates_rejected() {
    let pki = pki();
    let mut inst = GcastInstance::new(cfg());
    inst.recv_cert(&pki, &cert(&pki, Value(2), &[0, 1, 2]));
    let _ = inst.make_confirm(&pki.signing_key(1));
    let _ = inst.make_spread();
    let short = CommitCert {
        value: Value(2),
        confirm_sigs: vec![
            confirm_sig(&pki, 0, Value(2)),
            confirm_sig(&pki, 1, Value(2)),
        ],
    };
    inst.recv_commit(&pki, &short);
    assert_eq!(inst.finish().grade, 0, "2 < n − t = 3 confirm signatures");
}
