//! Property-based attacks on both graded-consensus substrates.
//!
//! For randomly sampled systems, inputs and Byzantine message patterns,
//! the invariants of `DESIGN.md` S2/S3 must hold in every execution:
//!
//! * **Strong Unanimity** — unanimous honest input `v` ⇒ all `(v, 2)`;
//! * **Grade-2 coherence** — any honest grade 2 on `v` ⇒ every honest
//!   process outputs value `v` with grade ≥ 1;
//! * **Grade-1 agreement** — any two honest grade ≥ 1 values coincide;
//! * **Validity of domain** — returned values at grade ≥ 1 originate
//!   from honest inputs or are never fabricated beyond the adversary's
//!   injected values.

use ba_crypto::Pki;
use ba_graded::{AuthGraded, Graded, UnauthGcMsg, UnauthGraded};
use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn check_invariants(outputs: &[Graded], unanimous: Option<Value>) -> Result<(), String> {
    if let Some(v) = unanimous {
        for g in outputs {
            if (g.value, g.grade) != (v, 2) {
                return Err(format!("strong unanimity: expected ({v:?},2) got {g:?}"));
            }
        }
    }
    if let Some(committed) = outputs.iter().find(|g| g.grade == 2) {
        for g in outputs {
            if g.value != committed.value || g.grade == 0 {
                return Err(format!(
                    "grade-2 coherence: {committed:?} vs {g:?} (all must share the value at grade ≥ 1)"
                ));
            }
        }
    }
    let adopted: Vec<Value> = outputs
        .iter()
        .filter(|g| g.grade >= 1)
        .map(|g| g.value)
        .collect();
    if adopted.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!("grade-1 split: {adopted:?}"));
    }
    Ok(())
}

/// A deterministic pseudo-random Byzantine strategy over the unauth GC
/// message space, parameterized by a seed.
fn unauth_chaos(seed: u64, n: usize) -> impl FnMut(&mut AdversaryCtx<'_, UnauthGcMsg>) {
    move |ctx| {
        let faulty: Vec<ProcessId> = ctx.corrupted.iter().copied().collect();
        for (j, from) in faulty.into_iter().enumerate() {
            for to in ProcessId::all(n) {
                let x = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(ctx.round * 1009 + j as u64 * 31 + u64::from(to.0));
                let v = Value(x % 3);
                let msg = if x.is_multiple_of(2) {
                    UnauthGcMsg::Vote(v)
                } else {
                    UnauthGcMsg::Echo(v)
                };
                if !x.is_multiple_of(5) {
                    ctx.send(from, to, msg);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn unauth_graded_invariants_under_chaos(
        n in 4usize..16,
        f_frac in 0usize..=100,
        seed in 0u64..10_000,
        unanimous in proptest::bool::ANY,
    ) {
        let t = (n - 1) / 3;
        let f = t * f_frac / 100;
        let honest_count = n - f;
        let inputs: Vec<Value> = (0..honest_count)
            .map(|i| if unanimous { Value(7) } else { Value(1 + (i % 2) as u64) })
            .collect();
        let procs: Vec<UnauthGraded> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| UnauthGraded::new(ProcessId(i as u32), n, t, v))
            .collect();
        let adv = FnAdversary::new(unauth_chaos(seed, n));
        let mut runner = Runner::new(n, procs, adv);
        let report = runner.run(4);
        prop_assert!(report.all_decided());
        let outputs: Vec<Graded> = report.outputs.values().copied().collect();
        let expect = unanimous.then_some(Value(7));
        if let Err(e) = check_invariants(&outputs, expect) {
            prop_assert!(false, "seed {seed}, n {n}, f {f}: {e}");
        }
    }

    #[test]
    fn auth_graded_invariants_with_silent_and_crash_faults(
        n in 4usize..10,
        f_frac in 0usize..=100,
        seed in 0u64..1_000,
        unanimous in proptest::bool::ANY,
    ) {
        let t = (n - 1) / 2;
        let f = t * f_frac / 100;
        let honest_count = n - f;
        let pki = Arc::new(Pki::new(n, seed));
        let procs: Vec<AuthGraded> = (0..honest_count)
            .map(|i| {
                let v = if unanimous { Value(9) } else { Value(1 + (i % 2) as u64) };
                AuthGraded::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    seed,
                    v,
                    Arc::clone(&pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect();
        let adv = ba_sim::SilentAdversary;
        let mut runner = Runner::new(n, procs, adv);
        let report = runner.run(8);
        prop_assert!(report.all_decided());
        let outputs: Vec<Graded> = report.outputs.values().copied().collect();
        let expect = unanimous.then_some(Value(9));
        if let Err(e) = check_invariants(&outputs, expect) {
            prop_assert!(false, "seed {seed}, n {n}, f {f}: {e}");
        }
    }

    /// The adversary replays signed gradecast items harvested from its
    /// own keys across instances; instance routing by signer must keep
    /// every honest instance unaffected.
    #[test]
    fn auth_graded_signed_equivocation(
        n in 5usize..9,
        seed in 0u64..500,
    ) {
        let t = (n - 1) / 2;
        let f = 1usize;
        let session = 77u64;
        let pki = Arc::new(Pki::new(n, seed));
        let honest_count = n - f;
        let procs: Vec<AuthGraded> = (0..honest_count)
            .map(|i| {
                AuthGraded::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    session,
                    Value(3),
                    Arc::clone(&pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect();
        let bad_id = (n - 1) as u32;
        let key = pki.signing_key(bad_id);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, ba_graded::AuthGcMsg>| {
            if ctx.round == 0 {
                for to in ProcessId::all(n) {
                    let v = Value(u64::from(to.0 % 2) + 100);
                    let sig = key.sign(&ba_graded::gradecast::value_bytes(session, bad_id, v));
                    ctx.send(
                        ProcessId(bad_id),
                        to,
                        ba_graded::AuthGcMsg {
                            items: vec![(bad_id, ba_graded::gradecast::GcastItem::Input { value: v, sig })],
                        },
                    );
                }
            }
        });
        let mut runner = Runner::new(n, procs, adv);
        let report = runner.run(8);
        // Unanimous honest input 3 must survive the equivocated instance.
        for g in report.outputs.values() {
            prop_assert_eq!((g.value, g.grade), (Value(3), 2));
        }
    }
}
