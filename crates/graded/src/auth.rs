//! Authenticated graded consensus for `t < n/2` (substitution S3).
//!
//! Runs `n` [certified gradecast](crate::gradecast) instances in parallel
//! — one per process, each gradecasting its input — with all per-instance
//! payloads of a round batched into a single physical message per ordered
//! process pair. Five rounds, `O(n²)` messages (of `O(n)` words each).
//!
//! ## Reduction
//!
//! Let instance `j`'s output at process `p` be `(u_j, g_j)`. With quorum
//! `q = n − t`:
//!
//! * **value** — the unique `v` with `#{j : g_j ≥ 1 ∧ u_j = v} ≥ q`
//!   (unique because `q > n/2` of `n` instances), else the own input;
//! * **grade 2** — some `v` has `#{j : g_j = 2 ∧ u_j = v} ≥ q`;
//! * **grade 1** — the value rule fired;
//! * **grade 0** — otherwise.
//!
//! *Strong Unanimity*: with unanimous honest input `v`, every honest
//! instance (≥ `n − t` of them) outputs `(v, 2)` everywhere (gradecast
//! property (c)), so all return `(v, 2)`.
//!
//! *Coherence (paper §5)*: if `pᵢ` returns grade 2, it saw `q` instances
//! at grade 2 with value `v`; by gradecast transfer (b) those same
//! instances are at grade ≥ 1 with value `v` at **every** honest process,
//! so everyone's value rule fires on `v` — every honest process returns
//! `v` (with grade ≥ 1).
//!
//! *Grade-1 agreement*: two honest grade-≥1 outputs share ≥ `n − 2t ≥ 1`
//! supporting instances; within one instance, honest grade-≥1 values
//! never split (gradecast property (d)).

use crate::gradecast::{GcastConfig, GcastInstance, GcastItem};
use crate::Graded;
use ba_crypto::{Pki, SigningKey};
use ba_sim::{Envelope, Outbox, Process, Tally, Value, WireSize};
use std::sync::Arc;

/// One round's batch: `(instance, payload)` pairs.
#[derive(Clone, Debug)]
pub struct AuthGcMsg {
    /// Per-instance payloads carried by this physical message.
    pub items: Vec<(u32, GcastItem)>,
}

impl WireSize for AuthGcMsg {
    fn wire_bytes(&self) -> u64 {
        self.items.wire_bytes()
    }
}

/// Authenticated graded consensus for `t < n/2` over `n` parallel
/// gradecasts.
///
/// # Examples
///
/// ```
/// use ba_graded::AuthGraded;
/// use ba_crypto::Pki;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use std::sync::Arc;
///
/// let n = 4;
/// let pki = Arc::new(Pki::new(n, 7));
/// let procs: Vec<_> = (0..n as u32)
///     .map(|i| AuthGraded::new(ProcessId(i), n, 1, 42, Value(5), Arc::clone(&pki), pki.signing_key(i)))
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(8);
/// for g in report.outputs.values() {
///     assert_eq!((g.value, g.grade), (Value(5), 2));
/// }
/// ```
pub struct AuthGraded {
    me: ba_sim::ProcessId,
    n: usize,
    t: usize,
    input: Value,
    pki: Arc<Pki>,
    key: SigningKey,
    instances: Vec<GcastInstance>,
    out: Option<Graded>,
}

impl std::fmt::Debug for AuthGraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthGraded")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("t", &self.t)
            .field("input", &self.input)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl AuthGraded {
    /// Number of communication rounds this protocol uses.
    pub const ROUNDS: u64 = 5;

    /// Creates the state machine for process `me`.
    ///
    /// `session` must be unique per protocol invocation within one
    /// execution (it binds every signature; see the session-tagging
    /// decision in `DESIGN.md`).
    ///
    /// # Panics
    ///
    /// Panics unless `2t < n`.
    pub fn new(
        me: ba_sim::ProcessId,
        n: usize,
        t: usize,
        session: u64,
        input: Value,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert!(2 * t < n, "authenticated graded consensus needs 2t < n");
        assert_eq!(key.id(), me.0, "signing key must belong to the process");
        let instances = (0..n as u32)
            .map(|inst| {
                GcastInstance::new(GcastConfig {
                    n,
                    t,
                    session,
                    inst,
                })
            })
            .collect();
        AuthGraded {
            me,
            n,
            t,
            input,
            pki,
            key,
            instances,
            out: None,
        }
    }

    /// The input this process started with.
    pub fn input(&self) -> Value {
        self.input
    }

    fn route_inbox(&mut self, inbox: &[Envelope<AuthGcMsg>]) {
        for env in inbox {
            for (inst, item) in &env.payload.items {
                let Some(instance) = self.instances.get_mut(*inst as usize) else {
                    continue;
                };
                match item {
                    GcastItem::Input { value, sig } => instance.recv_input(&self.pki, *value, sig),
                    GcastItem::Echo {
                        value,
                        sender_sig,
                        sig,
                    } => instance.recv_echo(&self.pki, *value, sender_sig, sig),
                    GcastItem::Cert(cert) => instance.recv_cert(&self.pki, cert),
                    GcastItem::Confirm { value, sig, cert } => {
                        instance.recv_confirm(&self.pki, *value, sig, cert)
                    }
                    GcastItem::Commit(cc) => instance.recv_commit(&self.pki, cc),
                }
            }
        }
    }

    fn finalize(&mut self) {
        let q = self.n - self.t;
        let mut strong: Tally<Value> = Tally::new();
        let mut any: Tally<Value> = Tally::new();
        for instance in &self.instances {
            let o = instance.finish();
            if let Some(v) = o.value {
                if o.grade >= 1 {
                    any.add(v);
                }
                if o.grade == 2 {
                    strong.add(v);
                }
            }
        }
        self.out = Some(match any.first_reaching(q) {
            Some(&v) => {
                let grade = if strong.count(&v) >= q { 2 } else { 1 };
                Graded::new(v, grade)
            }
            None => Graded::new(self.input, 0),
        });
    }
}

impl Process for AuthGraded {
    type Msg = AuthGcMsg;
    type Output = Graded;

    fn step(&mut self, round: u64, inbox: &[Envelope<AuthGcMsg>], out: &mut Outbox<AuthGcMsg>) {
        match round {
            0 => {
                // Round 1: start the own instance.
                let cfg = *self.instances[self.me.index()].config();
                let item = GcastInstance::make_input(&cfg, &self.key, self.input);
                out.broadcast(AuthGcMsg {
                    items: vec![(self.me.0, item)],
                });
            }
            1 => {
                // Round 2: echo every instance's unique value.
                self.route_inbox(inbox);
                let mut items = Vec::new();
                for (i, instance) in self.instances.iter().enumerate() {
                    if let Some(echo) = instance.make_echo(&self.key) {
                        items.push((i as u32, echo));
                    }
                }
                if !items.is_empty() {
                    out.broadcast(AuthGcMsg { items });
                }
            }
            2 => {
                // Round 3: broadcast assembled certificates.
                self.route_inbox(inbox);
                let mut items = Vec::new();
                for (i, instance) in self.instances.iter_mut().enumerate() {
                    for cert in instance.make_certs() {
                        items.push((i as u32, cert));
                    }
                }
                if !items.is_empty() {
                    out.broadcast(AuthGcMsg { items });
                }
            }
            3 => {
                // Round 4: confirm unique certified values (or report
                // conflicts).
                self.route_inbox(inbox);
                let mut items = Vec::new();
                for (i, instance) in self.instances.iter_mut().enumerate() {
                    for item in instance.make_confirm(&self.key) {
                        items.push((i as u32, item));
                    }
                }
                if !items.is_empty() {
                    out.broadcast(AuthGcMsg { items });
                }
            }
            4 => {
                // Round 5: spread commit certificates and known certs.
                self.route_inbox(inbox);
                let mut items = Vec::new();
                for (i, instance) in self.instances.iter_mut().enumerate() {
                    for item in instance.make_spread() {
                        items.push((i as u32, item));
                    }
                }
                if !items.is_empty() {
                    out.broadcast(AuthGcMsg { items });
                }
            }
            5 => {
                self.route_inbox(inbox);
                self.finalize();
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Graded> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradecast::{confirm_bytes, echo_bytes, value_bytes, CommitCert, EchoCert};
    use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, SilentAdversary};

    fn system(n: usize, t: usize, session: u64, inputs: &[u64], pki: &Arc<Pki>) -> Vec<AuthGraded> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                AuthGraded::new(
                    ProcessId(i as u32),
                    n,
                    t,
                    session,
                    Value(v),
                    Arc::clone(pki),
                    pki.signing_key(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn strong_unanimity_tolerates_nearly_half_silent() {
        // n = 5, t = 2 (beyond n/3 — only possible with authentication).
        let pki = Arc::new(Pki::new(5, 11));
        let mut runner = Runner::new(5, system(5, 2, 1, &[9, 9, 9], &pki), SilentAdversary);
        let report = runner.run(8);
        assert!(report.all_decided());
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(9), 2));
        }
        assert_eq!(report.last_decision_round, Some(AuthGraded::ROUNDS));
    }

    #[test]
    fn mixed_inputs_stay_safe() {
        let pki = Arc::new(Pki::new(4, 3));
        let mut runner = Runner::new(4, system(4, 1, 1, &[1, 1, 2, 2], &pki), SilentAdversary);
        let report = runner.run(8);
        // No faults: every instance delivers at grade 2, so counts are
        // 2 vs 2 — below the q = 3 threshold: everyone stays at grade 0.
        for (id, g) in &report.outputs {
            assert_eq!(g.grade, 0);
            let expect = if id.index() < 2 { 1 } else { 2 };
            assert_eq!(g.value, Value(expect));
        }
    }

    #[test]
    fn equivocating_sender_cannot_split_grades() {
        // The faulty sender p4 signs two values and sends one to each half
        // of the honest processes. Gradecast must not let instance 4 reach
        // grade 2 for different values at different processes; overall
        // outputs must satisfy coherence.
        let n = 5;
        let t = 2;
        let session = 7;
        let pki = Arc::new(Pki::new(n, 5));
        let adv_key = pki.signing_key(4);
        let adv_pki = Arc::clone(&pki);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, AuthGcMsg>| {
            let _ = &adv_pki;
            if ctx.round == 0 {
                let sig_a = adv_key.sign(&value_bytes(session, 4, Value(100)));
                let sig_b = adv_key.sign(&value_bytes(session, 4, Value(200)));
                for to in 0..2u32 {
                    ctx.send(
                        ProcessId(4),
                        ProcessId(to),
                        AuthGcMsg {
                            items: vec![(
                                4,
                                GcastItem::Input {
                                    value: Value(100),
                                    sig: sig_a,
                                },
                            )],
                        },
                    );
                }
                ctx.send(
                    ProcessId(4),
                    ProcessId(2),
                    AuthGcMsg {
                        items: vec![(
                            4,
                            GcastItem::Input {
                                value: Value(200),
                                sig: sig_b,
                            },
                        )],
                    },
                );
            }
        });
        let mut runner = Runner::new(n, system(n, t, session, &[3, 3, 3], &pki), adv);
        let report = runner.run(8);
        // All honest inputs equal 3: strong unanimity must survive the
        // equivocation in the faulty instance.
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(3), 2));
        }
    }

    #[test]
    fn forged_certificates_are_rejected() {
        // The adversary fabricates an echo certificate from its own two
        // signatures (below quorum) plus a garbage signature, and a commit
        // certificate signed only by itself. Honest processes must ignore
        // both, so unanimity on 6 survives untouched.
        let n = 4;
        let t = 1;
        let session = 13;
        let pki = Arc::new(Pki::new(n, 99));
        let k3 = pki.signing_key(3);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, AuthGcMsg>| {
            if ctx.round == 2 {
                let fake_val = Value(777);
                let sender_sig = k3.sign(&value_bytes(session, 3, fake_val));
                let echo_sig = k3.sign(&echo_bytes(session, 3, fake_val));
                let cert = EchoCert {
                    value: fake_val,
                    sender_sig,
                    echo_sigs: vec![echo_sig], // far below q = 3
                };
                ctx.broadcast(
                    ProcessId(3),
                    AuthGcMsg {
                        items: vec![(3, GcastItem::Cert(cert))],
                    },
                );
            }
            if ctx.round == 4 {
                let cc = CommitCert {
                    value: Value(777),
                    confirm_sigs: vec![k3.sign(&confirm_bytes(session, 3, Value(777)))],
                };
                ctx.broadcast(
                    ProcessId(3),
                    AuthGcMsg {
                        items: vec![(3, GcastItem::Commit(cc))],
                    },
                );
            }
        });
        let mut runner = Runner::new(n, system(n, t, session, &[6, 6, 6], &pki), adv);
        let report = runner.run(8);
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(6), 2));
        }
    }

    #[test]
    fn cross_session_signatures_are_useless() {
        // Signatures harvested from session 1 are replayed into session 2.
        // Honest processes in session 2 must treat them as invalid.
        let n = 4;
        let t = 1;
        let pki = Arc::new(Pki::new(n, 42));

        // Harvest: run session 1 honestly and capture an input signature.
        let harvested_sig = {
            let key0 = pki.signing_key(0);
            key0.sign(&value_bytes(1, 0, Value(5)))
        };

        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, AuthGcMsg>| {
            if ctx.round == 0 {
                // Claim instance 0's value is 5 inside *session 2* using
                // the session-1 signature.
                ctx.broadcast(
                    ProcessId(3),
                    AuthGcMsg {
                        items: vec![(
                            0,
                            GcastItem::Input {
                                value: Value(5),
                                sig: harvested_sig,
                            },
                        )],
                    },
                );
            }
        });
        // Session 2: all honest propose 8. If the replay were accepted,
        // instance 0 would see two sender values and fail to deliver,
        // breaking unanimity.
        let mut runner = Runner::new(n, system(n, t, 2, &[8, 8, 8], &pki), adv);
        let report = runner.run(8);
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(8), 2));
        }
    }

    #[test]
    fn camp_split_attack_cannot_produce_conflicting_grade2() {
        // The designed worst case from the gradecast analysis: the faulty
        // sender signs two values, splits the honest echoes into camps,
        // and completes echo quorums with faulty signatures, yielding two
        // valid certificates. Honest confirmers then see both certificates
        // (honest broadcasts cross camps), so nobody confirms and nobody
        // reaches grade ≥ 1 in that instance — and overall outputs remain
        // coherent.
        let n = 7;
        let t = 3; // 2t < n
        let session = 21;
        let pki = Arc::new(Pki::new(n, 1));
        let keys: Vec<SigningKey> = (4..7u32).map(|i| pki.signing_key(i)).collect();
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, AuthGcMsg>| {
            let va = Value(100);
            let vb = Value(200);
            let sig_a = keys[0].sign(&value_bytes(session, 4, va));
            let sig_b = keys[0].sign(&value_bytes(session, 4, vb));
            match ctx.round {
                0 => {
                    // Camp A = {p0, p1}, camp B = {p2, p3}.
                    for to in [0u32, 1] {
                        ctx.send(
                            ProcessId(4),
                            ProcessId(to),
                            AuthGcMsg {
                                items: vec![(
                                    4,
                                    GcastItem::Input {
                                        value: va,
                                        sig: sig_a,
                                    },
                                )],
                            },
                        );
                    }
                    for to in [2u32, 3] {
                        ctx.send(
                            ProcessId(4),
                            ProcessId(to),
                            AuthGcMsg {
                                items: vec![(
                                    4,
                                    GcastItem::Input {
                                        value: vb,
                                        sig: sig_b,
                                    },
                                )],
                            },
                        );
                    }
                }
                1 => {
                    // Faulty echoes complete both quorums (q = 4): camp A's
                    // two honest echoes + two faulty; likewise camp B.
                    for (value, ssig) in [(va, sig_a), (vb, sig_b)] {
                        for key in keys.iter().take(2) {
                            let esig = key.sign(&echo_bytes(session, 4, value));
                            ctx.broadcast(
                                ProcessId(key.id()),
                                AuthGcMsg {
                                    items: vec![(
                                        4,
                                        GcastItem::Echo {
                                            value,
                                            sender_sig: ssig,
                                            sig: esig,
                                        },
                                    )],
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
        });
        // Honest inputs unanimous at 1: instance 4's chaos must not break
        // strong unanimity of the overall graded consensus.
        let mut runner = Runner::new(n, system(n, t, session, &[1, 1, 1, 1], &pki), adv);
        let report = runner.run(8);
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(1), 2));
        }
    }

    #[test]
    fn message_count_is_quadratic_not_cubic() {
        // Batching: each process sends at most one physical message per
        // recipient per round — ≤ 5 n (n−1) honest envelopes in total.
        let n = 6;
        let pki = Arc::new(Pki::new(n, 2));
        let mut runner = Runner::new(
            n,
            system(n, 2, 1, &[4, 4, 4, 4, 4, 4], &pki),
            SilentAdversary,
        );
        let report = runner.run(8);
        let bound = 5 * (n as u64) * (n as u64 - 1);
        assert!(
            report.honest_messages <= bound,
            "{} > {bound}",
            report.honest_messages
        );
    }
}
