//! Unauthenticated graded consensus for `t < n/3` (substitution S2).
//!
//! A 2-round quorum protocol in the lineage of crusader agreement /
//! adopt-commit, standing in for the signature-free graded consensus of
//! Civit et al. \[14\] that the paper invokes in Theorem 7 (2 rounds,
//! `O(n²)` messages, `t < n/3`).
//!
//! ## Protocol
//!
//! * **Round 1 (vote).** Broadcast the input value. Let `cnt₁(v)` count
//!   distinct voters per value; if some `v` has `cnt₁(v) ≥ n − t`, bind
//!   `b := v` (at most one value can reach the quorum).
//! * **Round 2 (echo).** If bound, broadcast `b`. Let `cnt₂(v)` count
//!   distinct echoers, `v* := argmax cnt₂` (ties toward the smaller
//!   value). Output:
//!   * `(v*, 2)` if `cnt₂(v*) ≥ n − t`,
//!   * `(v*, 1)` if `cnt₂(v*) ≥ t + 1`,
//!   * `(input, 0)` otherwise.
//!
//! ## Why it is correct (`3t < n`)
//!
//! *Binding uniqueness.* If honest `pᵢ` binds `v` and `pⱼ` binds `w`, the
//! two vote quorums (distinct-sender sets of size `n − t`) intersect in
//! `≥ n − 2t ≥ t + 1` senders, so some **honest** sender voted both — so
//! `v = w`. Hence all honest round-2 echoes carry one common value `b*`,
//! and any other value receives at most `t` echoes (faulty only).
//!
//! *Strong Unanimity.* Unanimous input `v`: every honest process sees
//! `≥ n − t` votes and `≥ n − t` echoes for `v`, and junk stays `≤ t <
//! n − t`, so all output `(v, 2)`.
//!
//! *Grade-2 coherence.* If `pᵢ` outputs `(v, 2)` then `≥ n − 2t ≥ t + 1`
//! honest processes echoed `v`, so every honest `pₖ` has `cnt₂(v) ≥ t+1 >
//! t ≥ cnt₂(w)` for all `w ≠ v` (junk bound): `v* = v` with grade ≥ 1 at
//! every honest process — the paper's Coherence property under the
//! mapping paper-grade 1 := grade 2.
//!
//! *Grade-1 agreement.* Grade ≥ 1 requires `cnt₂ ≥ t + 1`, i.e. at least
//! one honest echo, so the value is the common binding `b*`.

use crate::Graded;
use ba_sim::{distinct_values_by_sender, Envelope, Outbox, Process, Tally, Value};

/// Messages of [`UnauthGraded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnauthGcMsg {
    /// Round-1 vote carrying the sender's input.
    Vote(Value),
    /// Round-2 echo carrying the sender's bound value.
    Echo(Value),
}

/// A discriminant byte plus the carried value.
impl ba_sim::WireSize for UnauthGcMsg {
    fn wire_bytes(&self) -> u64 {
        let (UnauthGcMsg::Vote(v) | UnauthGcMsg::Echo(v)) = self;
        1 + v.wire_bytes()
    }
}

/// One process's state machine for unauthenticated graded consensus.
///
/// Implements [`ba_sim::Process`]; two communication rounds, output
/// available from step 2 onward. Requires `3t < n`.
///
/// # Examples
///
/// ```
/// use ba_graded::UnauthGraded;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
///
/// let n = 4;
/// let procs: Vec<_> = (0..n)
///     .map(|i| UnauthGraded::new(ProcessId(i as u32), n, 1, Value(7)))
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(4);
/// // Unanimous input: everyone returns (7, grade 2).
/// for out in report.outputs.values() {
///     assert_eq!(out.value, Value(7));
///     assert_eq!(out.grade, 2);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct UnauthGraded {
    me: ba_sim::ProcessId,
    n: usize,
    t: usize,
    input: Value,
    bound: Option<Value>,
    out: Option<Graded>,
}

impl UnauthGraded {
    /// Number of communication rounds this protocol uses.
    pub const ROUNDS: u64 = 2;

    /// Creates the state machine for process `me` with the given input.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` (the protocol's resilience bound, Theorem 7
    /// of the paper).
    pub fn new(me: ba_sim::ProcessId, n: usize, t: usize, input: Value) -> Self {
        assert!(3 * t < n, "unauthenticated graded consensus needs 3t < n");
        UnauthGraded {
            me,
            n,
            t,
            input,
            bound: None,
            out: None,
        }
    }

    /// The input this process started with.
    pub fn input(&self) -> Value {
        self.input
    }

    /// This process's identifier.
    pub fn id(&self) -> ba_sim::ProcessId {
        self.me
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }
}

impl Process for UnauthGraded {
    type Msg = UnauthGcMsg;
    type Output = Graded;

    fn step(&mut self, round: u64, inbox: &[Envelope<UnauthGcMsg>], out: &mut Outbox<UnauthGcMsg>) {
        match round {
            0 => out.broadcast(UnauthGcMsg::Vote(self.input)),
            1 => {
                let votes = distinct_values_by_sender(inbox, |m| match m {
                    UnauthGcMsg::Vote(v) => Some(*v),
                    _ => None,
                });
                let tally: Tally<Value> = votes.into_values().collect();
                self.bound = tally.first_reaching(self.quorum()).copied();
                if let Some(b) = self.bound {
                    out.broadcast(UnauthGcMsg::Echo(b));
                }
            }
            2 => {
                let echoes = distinct_values_by_sender(inbox, |m| match m {
                    UnauthGcMsg::Echo(v) => Some(*v),
                    _ => None,
                });
                let tally: Tally<Value> = echoes.into_values().collect();
                let out_pair = match tally.plurality() {
                    None => Graded::new(self.input, 0),
                    Some(&v_star) => {
                        let c = tally.count(&v_star);
                        if c >= self.quorum() {
                            Graded::new(v_star, 2)
                        } else if c > self.t {
                            Graded::new(v_star, 1)
                        } else {
                            Graded::new(self.input, 0)
                        }
                    }
                };
                self.out = Some(out_pair);
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Graded> {
        self.out
    }

    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{AdversaryCtx, FnAdversary, ProcessId, Runner, SilentAdversary};

    fn system(n: usize, t: usize, inputs: &[u64]) -> Vec<UnauthGraded> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| UnauthGraded::new(ProcessId(i as u32), n, t, Value(v)))
            .collect()
    }

    #[test]
    fn strong_unanimity_with_silent_faults() {
        // n = 7, t = 2, both faulty silent, all honest propose 3.
        let mut runner = Runner::new(7, system(7, 2, &[3; 5]), SilentAdversary);
        let report = runner.run(4);
        assert!(report.all_decided());
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(3), 2));
        }
    }

    #[test]
    fn mixed_inputs_never_fabricate_grade_without_quorum() {
        // Split inputs 0/1 with no faults: nobody reaches the vote quorum
        // for a single value, so everyone keeps its input at grade 0.
        let mut runner = Runner::new(6, system(6, 1, &[0, 0, 0, 1, 1, 1]), SilentAdversary);
        let report = runner.run(4);
        for (id, g) in &report.outputs {
            assert_eq!(g.grade, 0);
            let expect = if id.index() < 3 { 0 } else { 1 };
            assert_eq!(g.value, Value(expect));
        }
    }

    #[test]
    fn grade2_coherence_under_equivocating_votes() {
        // n = 4, t = 1. Honest inputs 5,5,5. The faulty process p3 votes 5
        // to two processes and 9 to the third, then echoes 9 everywhere.
        // No honest process may end with a value other than 5 if anyone
        // reaches grade 2.
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, UnauthGcMsg>| match ctx.round {
            0 => {
                ctx.send(ProcessId(3), ProcessId(0), UnauthGcMsg::Vote(Value(5)));
                ctx.send(ProcessId(3), ProcessId(1), UnauthGcMsg::Vote(Value(5)));
                ctx.send(ProcessId(3), ProcessId(2), UnauthGcMsg::Vote(Value(9)));
            }
            1 => {
                ctx.broadcast(ProcessId(3), UnauthGcMsg::Echo(Value(9)));
            }
            _ => {}
        });
        let mut runner = Runner::new(4, system(4, 1, &[5, 5, 5]), adv);
        let report = runner.run(4);
        let outs: Vec<Graded> = report.outputs.values().copied().collect();
        let any_grade2 = outs.iter().any(|g| g.grade == 2);
        if any_grade2 {
            assert!(outs.iter().all(|g| g.value == Value(5) && g.grade >= 1));
        }
        // Junk value 9 can never be adopted: only the single faulty echo
        // supports it (≤ t < t+1).
        assert!(outs.iter().all(|g| g.value != Value(9)));
    }

    #[test]
    fn grade1_values_agree_across_honest_processes() {
        // Adversary gives the vote quorum for 1 to some processes only, so
        // grades split — but all grade ≥ 1 values must agree.
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, UnauthGcMsg>| match ctx.round {
            0 => {
                // p6 completes the quorum for value 1 at p0..p2 only.
                for to in 0..3 {
                    ctx.send(ProcessId(6), ProcessId(to), UnauthGcMsg::Vote(Value(1)));
                }
                ctx.send(ProcessId(5), ProcessId(0), UnauthGcMsg::Vote(Value(1)));
                ctx.send(ProcessId(5), ProcessId(1), UnauthGcMsg::Vote(Value(1)));
            }
            1 => {
                ctx.send(ProcessId(6), ProcessId(0), UnauthGcMsg::Echo(Value(1)));
            }
            _ => {}
        });
        // n = 7, t = 2; honest inputs: three 1s and two 8s.
        let mut runner = Runner::new(7, system(7, 2, &[1, 1, 1, 8, 8]), adv);
        let report = runner.run(4);
        let graded: Vec<&Graded> = report.outputs.values().collect();
        let adopted: Vec<Value> = graded
            .iter()
            .filter(|g| g.grade >= 1)
            .map(|g| g.value)
            .collect();
        assert!(
            adopted.windows(2).all(|w| w[0] == w[1]),
            "grade>=1 values diverged: {adopted:?}"
        );
    }

    #[test]
    fn duplicate_votes_from_one_sender_count_once() {
        // A faulty process floods 20 copies of its vote; the quorum logic
        // must count it once, so value 2 cannot reach the n−t = 3 quorum
        // from 2 honest + 1 flooding faulty... it can — but value 9 backed
        // by the same flooding trick with only one real voter cannot.
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, UnauthGcMsg>| {
            if ctx.round == 0 {
                for _ in 0..20 {
                    ctx.broadcast(ProcessId(3), UnauthGcMsg::Vote(Value(9)));
                }
            }
        });
        let mut runner = Runner::new(4, system(4, 1, &[5, 5, 5]), adv);
        let report = runner.run(4);
        for g in report.outputs.values() {
            assert_eq!((g.value, g.grade), (Value(5), 2));
        }
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn constructor_rejects_bad_resilience() {
        let _ = UnauthGraded::new(ProcessId(0), 6, 2, Value(0));
    }

    #[test]
    fn message_complexity_is_at_most_two_broadcasts_per_process() {
        let n = 9;
        let mut runner = Runner::new(n, system(n, 2, &[4; 9]), SilentAdversary);
        let report = runner.run(4);
        // Each process: one vote + one echo broadcast = 2(n−1) remote
        // messages.
        for &c in report.messages_per_process.values() {
            assert_eq!(c, 2 * (n as u64 - 1));
        }
    }

    #[test]
    fn output_available_exactly_after_two_rounds() {
        let mut runner = Runner::new(4, system(4, 1, &[1, 1, 1, 1]), SilentAdversary);
        let report = runner.run(10);
        assert_eq!(report.last_decision_round, Some(UnauthGraded::ROUNDS));
    }
}
