//! # ba-graded — graded consensus substrates
//!
//! The wrapper algorithm of *Byzantine Agreement with Predictions*
//! (Algorithm 1, §5) relies on graded consensus as a black box, citing
//! \[14\] for an unauthenticated and \[37\] for an authenticated
//! implementation. This crate provides both, built from scratch
//! (substitutions **S2** and **S3** in `DESIGN.md`):
//!
//! * [`unauth::UnauthGraded`] — a 2-round quorum protocol for `t < n/3`
//!   with `O(n²)` messages;
//! * [`gradecast`] — a 5-round *certified gradecast* for `t < n/2` with
//!   signatures (the single-sender primitive);
//! * [`auth::AuthGraded`] — authenticated graded consensus for `t < n/2`
//!   obtained by running `n` gradecast instances in parallel with
//!   per-round batching (`O(n²)` physical messages).
//!
//! ## Interface
//!
//! Both protocols return a [`Graded`] output with a three-level grade:
//!
//! * `grade == 2` — *commit* evidence: every honest process is guaranteed
//!   to output the same value with grade ≥ 1;
//! * `grade == 1` — *adoption* evidence: any two honest processes with
//!   grade ≥ 1 hold the same value;
//! * `grade == 0` — no evidence; the value is the process's own input.
//!
//! The paper's two-level interface (§5: Strong Unanimity, Coherence,
//! simultaneous Termination) is recovered by mapping paper-grade 1 :=
//! `grade == 2` and paper-grade 0 := `grade ≤ 1`; see
//! [`Graded::paper_grade`]. The extra level is what the early-stopping
//! phase-king construction in `ba-early` needs.

pub mod auth;
pub mod gradecast;
pub mod unauth;

use ba_sim::Value;

/// Output of a graded consensus protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Graded {
    /// The returned value.
    pub value: Value,
    /// Evidence level in `{0, 1, 2}`; see the crate docs.
    pub grade: u8,
}

impl Graded {
    /// Creates a graded output.
    pub fn new(value: Value, grade: u8) -> Self {
        debug_assert!(grade <= 2);
        Graded { value, grade }
    }

    /// The paper's two-level grade (§5): 1 iff this reproduction's
    /// grade is 2.
    pub fn paper_grade(&self) -> u8 {
        u8::from(self.grade == 2)
    }
}

pub use auth::{AuthGcMsg, AuthGraded};
pub use unauth::{UnauthGcMsg, UnauthGraded};
