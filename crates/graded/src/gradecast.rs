//! Certified gradecast: the single-sender authenticated primitive behind
//! [`crate::auth::AuthGraded`] (substitution S3 in `DESIGN.md`).
//!
//! A *gradecast* lets a designated sender `s` distribute a value such that
//! (for `t < n/2`, with signatures):
//!
//! * **(c) Honest sender.** If `s` is honest, every honest process outputs
//!   `(v_s, 2)`.
//! * **(a) Grade-2 consistency.** No two honest processes output grade 2
//!   with different values.
//! * **(b) Grade-2 transfer.** If some honest process outputs `(v, 2)`,
//!   every honest process outputs `v` with grade ≥ 1.
//! * **(d) No grade-1 splits.** Any two honest processes with grade ≥ 1
//!   output the same value.
//!
//! ## Protocol (5 rounds)
//!
//! Quorum `q = n − t`. All signed material binds `(session, instance)` so
//! signatures cannot be replayed across wrapper phases or instances.
//!
//! 1. **value** — `s` signs and broadcasts its value.
//! 2. **echo** — each process echoes the *unique* `s`-signed value it saw
//!    (two distinct `s`-signed values ⇒ echo nothing).
//! 3. **certify** — `q` echo signatures on one value form an *echo
//!    certificate* `EC(v)`; processes broadcast the certificates they
//!    formed (at most two distinct values matter).
//! 4. **confirm** — a process that knows certificates for *exactly one*
//!    value `v` signs and broadcasts a confirmation, attaching `EC(v)`;
//!    otherwise it broadcasts its (conflicting) certificates.
//! 5. **commit/spread** — `q` direct confirm signatures form a *commit
//!    certificate* `CC(v)`; processes broadcast any `CC` they formed plus
//!    every certificate value they know.
//!
//! Output: grade 2 iff the process formed `CC(v)` from direct confirms
//! *and* knows certificates for no value other than `v` even after round
//! 5; grade 1 iff exactly one commit-certificate value is known *and*
//! exactly one certificate value was known by the end of round 4.
//!
//! ## Proof sketch
//!
//! *(c)*: only `v_s` can be `s`-signed, so only `EC(v_s)` can exist; all
//! honest processes confirm and commit it.
//!
//! *(a)*: grade 2 at `pᵢ` needs `q` direct confirms, hence an honest
//! confirmer of `v`, who attached `EC(v)` to its round-4 broadcast. If
//! `pⱼ` also had grade 2 on `w ≠ v`, an honest confirmer of `w` broadcast
//! `EC(w)` in round 4, which reaches `pᵢ` before its end-of-round-5 purity
//! check — contradiction.
//!
//! *(b)*: `pᵢ` (grade 2 on `v`) broadcast `CC(v)` in round 5, so every
//! `pⱼ` knows it. If `pⱼ` knew a certificate for `w ≠ v` by end of round
//! 4 it would have spread it in round 5, destroying `pᵢ`'s grade 2; so
//! `pⱼ`'s round-4 certificate set is exactly `{v}`. If `pⱼ` knew `CC(w)`,
//! an honest confirmer of `w` would again have spread `EC(w)` in round 4
//! to `pᵢ` — contradiction. Hence `pⱼ` outputs `(v, ≥1)`.
//!
//! *(d)*: any known `CC(w)` implies an honest confirmer of `w` whose
//! attached `EC(w)` reached **every** process in round 4; two grade-1
//! holders on different values would each violate the other's
//! "exactly one certificate value by end of round 4" condition.

use ba_crypto::{Encoder, Pki, Signature, SigningKey};
use ba_sim::{Value, WireSize};
use std::collections::{BTreeMap, BTreeSet};

/// Static parameters of one gradecast instance.
#[derive(Clone, Copy, Debug)]
pub struct GcastConfig {
    /// System size.
    pub n: usize,
    /// Fault tolerance (requires `2t < n`).
    pub t: usize,
    /// Session tag binding all signatures of this protocol run.
    pub session: u64,
    /// The designated sender's identifier (= instance id).
    pub inst: u32,
}

impl GcastConfig {
    fn quorum(&self) -> usize {
        self.n - self.t
    }
}

/// Canonical bytes of the sender's value message.
pub fn value_bytes(session: u64, inst: u32, value: Value) -> Vec<u8> {
    let mut e = Encoder::new("gcast-val");
    e.u64(session).u32(inst).u64(value.0);
    e.finish()
}

/// Canonical bytes of an echo.
pub fn echo_bytes(session: u64, inst: u32, value: Value) -> Vec<u8> {
    let mut e = Encoder::new("gcast-echo");
    e.u64(session).u32(inst).u64(value.0);
    e.finish()
}

/// Canonical bytes of a confirmation.
pub fn confirm_bytes(session: u64, inst: u32, value: Value) -> Vec<u8> {
    let mut e = Encoder::new("gcast-confirm");
    e.u64(session).u32(inst).u64(value.0);
    e.finish()
}

/// An echo certificate: `q` distinct echo signatures over one `s`-signed
/// value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EchoCert {
    /// The certified value.
    pub value: Value,
    /// The sender's signature over the value (proof the value originated
    /// from the instance's sender).
    pub sender_sig: Signature,
    /// Echo signatures by distinct processes.
    pub echo_sigs: Vec<Signature>,
}

impl WireSize for EchoCert {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.sender_sig.wire_bytes() + self.echo_sigs.wire_bytes()
    }
}

impl EchoCert {
    /// Verifies structure and signatures against `cfg`.
    pub fn verify(&self, cfg: &GcastConfig, pki: &Pki) -> bool {
        if self.sender_sig.signer != cfg.inst {
            return false;
        }
        if !pki.verify(
            &value_bytes(cfg.session, cfg.inst, self.value),
            &self.sender_sig,
        ) {
            return false;
        }
        let mut signers = BTreeSet::new();
        for sig in &self.echo_sigs {
            if !signers.insert(sig.signer) {
                return false; // duplicate signer
            }
            if !pki.verify(&echo_bytes(cfg.session, cfg.inst, self.value), sig) {
                return false;
            }
        }
        signers.len() >= cfg.quorum()
    }
}

/// A commit certificate: `q` distinct confirm signatures on one value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitCert {
    /// The committed value.
    pub value: Value,
    /// Confirm signatures by distinct processes.
    pub confirm_sigs: Vec<Signature>,
}

impl WireSize for CommitCert {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.confirm_sigs.wire_bytes()
    }
}

impl CommitCert {
    /// Verifies structure and signatures against `cfg`.
    pub fn verify(&self, cfg: &GcastConfig, pki: &Pki) -> bool {
        let mut signers = BTreeSet::new();
        for sig in &self.confirm_sigs {
            if !signers.insert(sig.signer) {
                return false;
            }
            if !pki.verify(&confirm_bytes(cfg.session, cfg.inst, self.value), sig) {
                return false;
            }
        }
        signers.len() >= cfg.quorum()
    }
}

/// Per-round payloads of one gradecast instance (batched across instances
/// by [`crate::auth::AuthGraded`]).
#[derive(Clone, Debug)]
pub enum GcastItem {
    /// Round 1: the sender's signed value.
    Input {
        /// Proposed value.
        value: Value,
        /// Sender signature over [`value_bytes`].
        sig: Signature,
    },
    /// Round 2: an echo of the unique `s`-signed value.
    Echo {
        /// Echoed value.
        value: Value,
        /// The sender's signature being echoed.
        sender_sig: Signature,
        /// The echoer's signature over [`echo_bytes`].
        sig: Signature,
    },
    /// Rounds 3–5: an echo certificate (fresh, conflict report, or
    /// spread).
    Cert(EchoCert),
    /// Round 4: a confirmation with its supporting certificate.
    Confirm {
        /// Confirmed value.
        value: Value,
        /// Confirmer's signature over [`confirm_bytes`].
        sig: Signature,
        /// Certificate justifying the confirmation.
        cert: EchoCert,
    },
    /// Round 5: a commit certificate.
    Commit(CommitCert),
}

/// A discriminant byte plus the variant's payload.
impl WireSize for GcastItem {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            GcastItem::Input { value, sig } => value.wire_bytes() + sig.wire_bytes(),
            GcastItem::Echo {
                value,
                sender_sig,
                sig,
            } => value.wire_bytes() + sender_sig.wire_bytes() + sig.wire_bytes(),
            GcastItem::Cert(cert) => cert.wire_bytes(),
            GcastItem::Confirm { value, sig, cert } => {
                value.wire_bytes() + sig.wire_bytes() + cert.wire_bytes()
            }
            GcastItem::Commit(cert) => cert.wire_bytes(),
        }
    }
}

/// Output of one gradecast instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcastOutput {
    /// The delivered value (`None` at grade 0).
    pub value: Option<Value>,
    /// Grade in `{0, 1, 2}`.
    pub grade: u8,
}

/// State machine for one gradecast instance at one process.
///
/// Driven by an external scheduler ([`crate::auth::AuthGraded`]) that
/// routes payloads and collects outgoing items; it is not a standalone
/// [`ba_sim::Process`].
#[derive(Debug)]
pub struct GcastInstance {
    cfg: GcastConfig,
    /// Distinct sender-signed values seen (capped at 2: enough to prove
    /// equivocation).
    inputs_seen: Vec<(Value, Signature)>,
    /// Verified echo signatures per value (values capped at 2).
    echo_sigs: BTreeMap<Value, BTreeMap<u32, Signature>>,
    /// First valid certificate per value (values capped at 2).
    known_certs: BTreeMap<Value, EchoCert>,
    /// Certificate values known when the confirm decision was taken
    /// (end of round 3).
    certs_at_confirm: BTreeSet<Value>,
    /// Certificate values known by the end of round 4.
    certs_at_r4: BTreeSet<Value>,
    /// Verified direct confirm signatures per value (round 4; values
    /// capped at 2).
    confirm_sigs: BTreeMap<Value, BTreeMap<u32, Signature>>,
    /// Commit certificate this process formed from direct confirms.
    self_commit: Option<CommitCert>,
    /// Values with a known valid commit certificate (capped at 2).
    known_commit_values: BTreeSet<Value>,
}

impl GcastInstance {
    /// Creates the instance state.
    pub fn new(cfg: GcastConfig) -> Self {
        assert!(2 * cfg.t < cfg.n, "gradecast needs 2t < n");
        GcastInstance {
            cfg,
            inputs_seen: Vec::new(),
            echo_sigs: BTreeMap::new(),
            known_certs: BTreeMap::new(),
            certs_at_confirm: BTreeSet::new(),
            certs_at_r4: BTreeSet::new(),
            confirm_sigs: BTreeMap::new(),
            self_commit: None,
            known_commit_values: BTreeSet::new(),
        }
    }

    /// The instance configuration.
    pub fn config(&self) -> &GcastConfig {
        &self.cfg
    }

    /// Round-1 send: the designated sender signs its value.
    pub fn make_input(cfg: &GcastConfig, key: &SigningKey, value: Value) -> GcastItem {
        debug_assert_eq!(key.id(), cfg.inst, "only the sender starts an instance");
        let sig = key.sign(&value_bytes(cfg.session, cfg.inst, value));
        GcastItem::Input { value, sig }
    }

    /// Ingests a round-1 `Input` item.
    pub fn recv_input(&mut self, pki: &Pki, value: Value, sig: &Signature) {
        if self.inputs_seen.iter().any(|(v, _)| *v == value) {
            return;
        }
        if self.inputs_seen.len() >= 2 {
            return; // equivocation already proven; more values add nothing
        }
        if sig.signer != self.cfg.inst {
            return;
        }
        if pki.verify(&value_bytes(self.cfg.session, self.cfg.inst, value), sig) {
            self.inputs_seen.push((value, *sig));
        }
    }

    /// Round-2 send: echo the unique sender-signed value, if any.
    pub fn make_echo(&self, key: &SigningKey) -> Option<GcastItem> {
        match self.inputs_seen.as_slice() {
            [(value, sender_sig)] => {
                let sig = key.sign(&echo_bytes(self.cfg.session, self.cfg.inst, *value));
                Some(GcastItem::Echo {
                    value: *value,
                    sender_sig: *sender_sig,
                    sig,
                })
            }
            _ => None,
        }
    }

    /// Ingests a round-2 `Echo` item.
    pub fn recv_echo(&mut self, pki: &Pki, value: Value, sender_sig: &Signature, sig: &Signature) {
        // The embedded sender signature proves the value originated from
        // the sender; verify it once per value.
        let sender_ok = self.inputs_seen.iter().any(|(v, _)| *v == value)
            || (sender_sig.signer == self.cfg.inst
                && pki.verify(
                    &value_bytes(self.cfg.session, self.cfg.inst, value),
                    sender_sig,
                ));
        if !sender_ok {
            return;
        }
        if self.inputs_seen.len() < 2 && !self.inputs_seen.iter().any(|(v, _)| *v == value) {
            self.inputs_seen.push((value, *sender_sig));
        }
        if !self.inputs_seen.iter().any(|(v, _)| *v == value) {
            // A third sender-signed value: the sender has already proven
            // itself faulty twice over; certificates for it are not needed
            // for any output this instance can still produce.
            return;
        }
        if !self.echo_sigs.contains_key(&value) && self.echo_sigs.len() >= 2 {
            return; // two echo-able values already tracked
        }
        let per_value = self.echo_sigs.entry(value).or_default();
        if per_value.contains_key(&sig.signer) || per_value.len() >= self.cfg.quorum() {
            return; // duplicate or already at quorum: skip re-verification
        }
        if pki.verify(&echo_bytes(self.cfg.session, self.cfg.inst, value), sig) {
            per_value.insert(sig.signer, *sig);
        }
    }

    /// Round-3 send: certificates this process can assemble from echoes.
    pub fn make_certs(&mut self) -> Vec<GcastItem> {
        let q = self.cfg.quorum();
        let formed: Vec<EchoCert> = self
            .echo_sigs
            .iter()
            .filter(|(_, sigs)| sigs.len() >= q)
            .take(2)
            .map(|(value, sigs)| EchoCert {
                value: *value,
                sender_sig: self
                    .inputs_seen
                    .iter()
                    .find(|(v, _)| v == value)
                    .map(|(_, s)| *s)
                    .expect("echoed value always has a recorded sender signature"),
                echo_sigs: sigs.values().copied().collect(),
            })
            .collect();
        for cert in &formed {
            self.note_cert_unchecked(cert.clone());
        }
        formed.into_iter().map(GcastItem::Cert).collect()
    }

    /// Records a locally-formed (already valid) certificate.
    fn note_cert_unchecked(&mut self, cert: EchoCert) {
        if self.known_certs.len() >= 2 && !self.known_certs.contains_key(&cert.value) {
            return;
        }
        self.known_certs.entry(cert.value).or_insert(cert);
    }

    /// Ingests a received certificate (any round).
    pub fn recv_cert(&mut self, pki: &Pki, cert: &EchoCert) {
        if self.known_certs.contains_key(&cert.value) {
            return; // one valid certificate per value suffices
        }
        if self.known_certs.len() >= 2 {
            return; // conflict already established
        }
        if cert.verify(&self.cfg, pki) {
            self.known_certs.insert(cert.value, cert.clone());
        }
    }

    /// Round-4 send: confirm the unique certified value, or report the
    /// conflict by spreading certificates.
    ///
    /// Call after all round-3 receives; snapshots the end-of-round-3
    /// certificate set.
    pub fn make_confirm(&mut self, key: &SigningKey) -> Vec<GcastItem> {
        self.certs_at_confirm = self.known_certs.keys().copied().collect();
        let mut values = self.known_certs.keys();
        if self.known_certs.len() == 1 {
            let value = *values.next().expect("len checked");
            let cert = self.known_certs[&value].clone();
            let sig = key.sign(&confirm_bytes(self.cfg.session, self.cfg.inst, value));
            vec![GcastItem::Confirm { value, sig, cert }]
        } else {
            self.known_certs
                .values()
                .take(2)
                .cloned()
                .map(GcastItem::Cert)
                .collect()
        }
    }

    /// Ingests a round-4 `Confirm` item (records the attached certificate
    /// first, then the confirm signature).
    pub fn recv_confirm(&mut self, pki: &Pki, value: Value, sig: &Signature, cert: &EchoCert) {
        if cert.value == value {
            self.recv_cert(pki, cert);
        }
        // Count only confirms whose certificate checks out (a confirm for
        // an uncertifiable value is noise).
        if !self.known_certs.contains_key(&value) {
            return;
        }
        if !self.confirm_sigs.contains_key(&value) && self.confirm_sigs.len() >= 2 {
            return;
        }
        let per_value = self.confirm_sigs.entry(value).or_default();
        if per_value.contains_key(&sig.signer) || per_value.len() >= self.cfg.quorum() {
            return;
        }
        if pki.verify(&confirm_bytes(self.cfg.session, self.cfg.inst, value), sig) {
            per_value.insert(sig.signer, *sig);
        }
    }

    /// Round-5 send: spread any commit certificate formed from direct
    /// confirms, plus every certificate value known at the end of round 4.
    pub fn make_spread(&mut self) -> Vec<GcastItem> {
        self.certs_at_r4 = self.known_certs.keys().copied().collect();
        let q = self.cfg.quorum();
        let mut items = Vec::new();
        if let Some((value, sigs)) = self.confirm_sigs.iter().find(|(_, sigs)| sigs.len() >= q) {
            let cc = CommitCert {
                value: *value,
                confirm_sigs: sigs.values().copied().collect(),
            };
            self.self_commit = Some(cc.clone());
            self.known_commit_values.insert(*value);
            items.push(GcastItem::Commit(cc));
        }
        items.extend(
            self.known_certs
                .values()
                .take(2)
                .cloned()
                .map(GcastItem::Cert),
        );
        items
    }

    /// Ingests a round-5 `Commit` item.
    pub fn recv_commit(&mut self, pki: &Pki, cc: &CommitCert) {
        if self.known_commit_values.contains(&cc.value) {
            return;
        }
        if self.known_commit_values.len() >= 2 {
            return;
        }
        if cc.verify(&self.cfg, pki) {
            self.known_commit_values.insert(cc.value);
        }
    }

    /// Final output after all round-5 receives.
    pub fn finish(&self) -> GcastOutput {
        if let Some(cc) = &self.self_commit {
            let pure = self.known_certs.len() == 1 && self.known_certs.contains_key(&cc.value);
            if pure {
                return GcastOutput {
                    value: Some(cc.value),
                    grade: 2,
                };
            }
        }
        if self.known_commit_values.len() == 1 && self.certs_at_r4.len() == 1 {
            let cc_val = *self.known_commit_values.iter().next().expect("len checked");
            let cert_val = *self.certs_at_r4.iter().next().expect("len checked");
            if cc_val == cert_val {
                return GcastOutput {
                    value: Some(cc_val),
                    grade: 1,
                };
            }
        }
        GcastOutput {
            value: None,
            grade: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GcastConfig {
        GcastConfig {
            n: 5,
            t: 2,
            session: 9,
            inst: 0,
        }
    }

    fn pki() -> Pki {
        Pki::new(5, 1234)
    }

    fn valid_cert(pki: &Pki, cfg: &GcastConfig, value: Value, echoers: &[u32]) -> EchoCert {
        let sender_sig = pki
            .signing_key(cfg.inst)
            .sign(&value_bytes(cfg.session, cfg.inst, value));
        let echo_sigs = echoers
            .iter()
            .map(|&i| {
                pki.signing_key(i)
                    .sign(&echo_bytes(cfg.session, cfg.inst, value))
            })
            .collect();
        EchoCert {
            value,
            sender_sig,
            echo_sigs,
        }
    }

    #[test]
    fn echo_cert_verifies_with_quorum() {
        let (pki, cfg) = (pki(), cfg());
        let cert = valid_cert(&pki, &cfg, Value(7), &[0, 1, 2]);
        assert!(cert.verify(&cfg, &pki));
    }

    #[test]
    fn echo_cert_rejects_below_quorum() {
        let (pki, cfg) = (pki(), cfg());
        let cert = valid_cert(&pki, &cfg, Value(7), &[0, 1]);
        assert!(!cert.verify(&cfg, &pki), "q = n - t = 3 signatures needed");
    }

    #[test]
    fn echo_cert_rejects_duplicate_signers() {
        let (pki, cfg) = (pki(), cfg());
        let mut cert = valid_cert(&pki, &cfg, Value(7), &[0, 1, 2]);
        cert.echo_sigs[2] = cert.echo_sigs[0];
        assert!(
            !cert.verify(&cfg, &pki),
            "padding with duplicates must fail"
        );
    }

    #[test]
    fn echo_cert_rejects_wrong_session() {
        let (pki, cfg) = (pki(), cfg());
        let other = GcastConfig { session: 10, ..cfg };
        let cert = valid_cert(&pki, &other, Value(7), &[0, 1, 2]);
        assert!(
            !cert.verify(&cfg, &pki),
            "signatures are bound to the session tag"
        );
    }

    #[test]
    fn echo_cert_rejects_forged_sender_signature() {
        let (pki, cfg) = (pki(), cfg());
        let mut cert = valid_cert(&pki, &cfg, Value(7), &[0, 1, 2]);
        // Replace the sender signature by one from a different process.
        cert.sender_sig = pki
            .signing_key(3)
            .sign(&value_bytes(cfg.session, cfg.inst, Value(7)));
        assert!(!cert.verify(&cfg, &pki));
    }

    #[test]
    fn commit_cert_verification() {
        let (pki, cfg) = (pki(), cfg());
        let sigs: Vec<Signature> = [1u32, 2, 3]
            .iter()
            .map(|&i| {
                pki.signing_key(i)
                    .sign(&confirm_bytes(cfg.session, cfg.inst, Value(4)))
            })
            .collect();
        let cc = CommitCert {
            value: Value(4),
            confirm_sigs: sigs,
        };
        assert!(cc.verify(&cfg, &pki));
        let wrong = CommitCert {
            value: Value(5),
            ..cc
        };
        assert!(!wrong.verify(&cfg, &pki), "signatures bind the value");
    }

    #[test]
    fn instance_ignores_input_not_signed_by_sender() {
        let (pki, cfg) = (pki(), cfg());
        let mut inst = GcastInstance::new(cfg);
        let bad_sig = pki
            .signing_key(2)
            .sign(&value_bytes(cfg.session, cfg.inst, Value(3)));
        inst.recv_input(&pki, Value(3), &bad_sig);
        assert!(inst.make_echo(&pki.signing_key(1)).is_none());
    }

    #[test]
    fn instance_echoes_unique_value_and_refuses_on_equivocation() {
        let (pki, cfg) = (pki(), cfg());
        let sender = pki.signing_key(0);
        let mut inst = GcastInstance::new(cfg);
        let s1 = sender.sign(&value_bytes(cfg.session, 0, Value(1)));
        inst.recv_input(&pki, Value(1), &s1);
        assert!(inst.make_echo(&pki.signing_key(1)).is_some());
        // A second sender-signed value arrives: equivocation, echo nothing.
        let s2 = sender.sign(&value_bytes(cfg.session, 0, Value(2)));
        inst.recv_input(&pki, Value(2), &s2);
        assert!(inst.make_echo(&pki.signing_key(1)).is_none());
    }

    #[test]
    fn cert_formation_from_quorum_of_echoes() {
        let (pki, cfg) = (pki(), cfg());
        let sender = pki.signing_key(0);
        let mut inst = GcastInstance::new(cfg);
        let ssig = sender.sign(&value_bytes(cfg.session, 0, Value(6)));
        inst.recv_input(&pki, Value(6), &ssig);
        for i in [0u32, 1, 2] {
            let esig = pki
                .signing_key(i)
                .sign(&echo_bytes(cfg.session, 0, Value(6)));
            inst.recv_echo(&pki, Value(6), &ssig, &esig);
        }
        let certs = inst.make_certs();
        assert_eq!(certs.len(), 1);
        match &certs[0] {
            GcastItem::Cert(c) => {
                assert_eq!(c.value, Value(6));
                assert!(c.verify(&cfg, &pki));
            }
            other => panic!("expected Cert, got {other:?}"),
        }
    }

    #[test]
    fn no_cert_without_echo_quorum() {
        let (pki, cfg) = (pki(), cfg());
        let sender = pki.signing_key(0);
        let mut inst = GcastInstance::new(cfg);
        let ssig = sender.sign(&value_bytes(cfg.session, 0, Value(6)));
        inst.recv_input(&pki, Value(6), &ssig);
        for i in [1u32, 2] {
            let esig = pki
                .signing_key(i)
                .sign(&echo_bytes(cfg.session, 0, Value(6)));
            inst.recv_echo(&pki, Value(6), &ssig, &esig);
        }
        assert!(inst.make_certs().is_empty());
    }

    #[test]
    fn confirm_only_with_unique_certified_value() {
        let (pki, cfg) = (pki(), cfg());
        let mut inst = GcastInstance::new(cfg);
        inst.recv_cert(&pki, &valid_cert(&pki, &cfg, Value(1), &[0, 1, 2]));
        let items = inst.make_confirm(&pki.signing_key(3));
        assert!(
            matches!(items.as_slice(), [GcastItem::Confirm { value, .. }] if *value == Value(1))
        );

        // Conflicting certificates: report instead of confirming.
        let mut inst2 = GcastInstance::new(cfg);
        inst2.recv_cert(&pki, &valid_cert(&pki, &cfg, Value(1), &[0, 1, 2]));
        inst2.recv_cert(&pki, &valid_cert(&pki, &cfg, Value(2), &[0, 3, 4]));
        let items2 = inst2.make_confirm(&pki.signing_key(3));
        assert_eq!(items2.len(), 2);
        assert!(items2.iter().all(|i| matches!(i, GcastItem::Cert(_))));
    }

    #[test]
    fn grade0_when_nothing_happens() {
        let (_pki, cfg) = (pki(), cfg());
        let mut inst = GcastInstance::new(cfg);
        let _ = inst.make_confirm(&pki().signing_key(1));
        let _ = inst.make_spread();
        assert_eq!(
            inst.finish(),
            GcastOutput {
                value: None,
                grade: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "2t < n")]
    fn rejects_majority_corruption() {
        let _ = GcastInstance::new(GcastConfig {
            n: 4,
            t: 2,
            session: 0,
            inst: 0,
        });
    }
}
