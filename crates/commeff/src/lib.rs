//! # ba-commeff — communication-efficient BA with predictions
//!
//! The source paper buys *time* with predictions but leaves message
//! complexity quadratic; the follow-up *Communication Efficient
//! Byzantine Agreement with Predictions* (Dzulfikar–Gilbert, 2026)
//! shows the same prediction advantage is compatible with subquadratic
//! communication when the predictions are accurate. This crate
//! reproduces that trade-off in the repository's execution model
//! (`t < n/3`, no signatures) as a two-lane protocol:
//!
//! 1. **Committee-sampled fast lane** (5 rounds, `O(n · f̂)` messages):
//!    each process derives a *committee* from its own prediction string
//!    — the first `2f̂ + 1` identifiers it predicts honest, where `f̂`
//!    is the number of processes it predicts faulty — and routes its
//!    input through the committee instead of all-to-all. Committee
//!    members that provably heard from `n − t` processes aggregate,
//!    report, collect acknowledgements, and certify a decision.
//! 2. **Prediction-checked fallback** (phase-king, `O(t)` rounds): any
//!    inconsistency the fast lane surfaces — missing reports, split
//!    report values, aggregators that could not certify — diverts the
//!    run into a full early-stopping phase-king agreement seeded with
//!    the fast lane's tentative values.
//!
//! With accurate predictions and `f` actual faults the fast lane
//! decides in 5 rounds using `Θ(n · f)` messages of constant size —
//! asymptotically below both the wrappers' and the baselines' `Ω(n²)`
//! — and wrong predictions cost the fallback's rounds, never safety
//! against the execution-scale adversary gallery.
//!
//! *Conditional correctness.* Like [`ba_early::TruncatedDs`], the fast
//! lane's certify step assumes faulty processes cannot split the
//! honest view of broadcast traffic: against the repository's
//! execution-scale adversaries (silence, replay — see the driver's
//! degradation rules) every honest process observes identical report
//! and certificate sets, so the fast/fallback choice is uniform. A
//! fully Byzantine equivocator *can* split the unsigned lane choice
//! (pinned by `full_equivocation_can_split_the_unsigned_lane_choice`);
//! the [`signed`] variant ([`CommEffSigned`]) removes exactly that
//! conditionality with transferable certify certificates.

pub mod signed;

pub use signed::{CommEffSigned, CommEffSignedMsg};

use ba_core::BitVec;
use ba_early::{PhaseKing, PhaseKingMsg};
use ba_sim::{
    distinct_values_by_sender, plurality_smallest, sub_inbox, Envelope, Outbox, Process, ProcessId,
    Tally, Value, WireSize,
};
use std::sync::Arc;

/// First fallback round: the fast lane occupies steps `0..=4`.
pub(crate) const FALLBACK_START: u64 = 5;

/// Messages of the communication-efficient pipeline. Every fast-lane
/// variant is bound to exactly one protocol step, so traffic replayed
/// across rounds is inert.
#[derive(Clone, Debug)]
pub enum CommEffMsg {
    /// Step 0 → committee: the sender's input value.
    Submit(Value),
    /// Step 1 → all: an active aggregator's plurality over the inputs
    /// it collected.
    Report(Value),
    /// Step 2 → committee: the sender's tentative value and whether the
    /// reports it saw were unanimous.
    Ack {
        /// Tentative value adopted from the reports (or own input).
        value: Value,
        /// Whether every received report carried the same value.
        happy: bool,
    },
    /// Step 3 → all: an aggregator certifying that `n − t` processes
    /// acknowledged the same value happily.
    Commit(Value),
    /// Step 3 → all: an aggregator that could not certify; forces the
    /// fallback lane everywhere.
    Retreat,
    /// Steps 5+: wrapped phase-king fallback traffic.
    Fallback(Arc<PhaseKingMsg>),
}

/// A discriminant byte plus the variant's payload.
impl WireSize for CommEffMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            CommEffMsg::Submit(v) | CommEffMsg::Report(v) | CommEffMsg::Commit(v) => v.wire_bytes(),
            CommEffMsg::Ack { value, happy } => value.wire_bytes() + happy.wire_bytes(),
            CommEffMsg::Retreat => 0,
            CommEffMsg::Fallback(inner) => inner.wire_bytes(),
        }
    }
}

/// One process's state machine for the communication-efficient
/// pipeline.
///
/// # Examples
///
/// ```
/// use ba_commeff::CommEff;
/// use ba_core::{BitVec, PredictionMatrix};
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use std::collections::BTreeSet;
///
/// // n = 7, one silent fault (p6), perfect predictions.
/// let n = 7;
/// let faulty: BTreeSet<ProcessId> = [ProcessId(6)].into_iter().collect();
/// let matrix = PredictionMatrix::perfect(n, &faulty);
/// let procs: Vec<CommEff> = (0..6u32)
///     .map(|i| {
///         let id = ProcessId(i);
///         CommEff::new(id, n, 2, Value(9), matrix.row(id).clone())
///     })
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(CommEff::rounds(2));
/// assert_eq!(report.decision(), Some(&Value(9)));
/// assert_eq!(report.last_decision_round, Some(4), "fast lane");
/// ```
pub struct CommEff {
    me: ProcessId,
    n: usize,
    t: usize,
    input: Value,
    prediction: BitVec,
    committee: Vec<ProcessId>,
    /// Whether the prediction was degenerate (no fillable committee):
    /// the process drives no fast-lane traffic and leans toward the
    /// fallback.
    degenerate: bool,
    /// Set at step 1 when this process received `n − t` submissions.
    active: bool,
    tentative: Value,
    fallback: Option<PhaseKing>,
    out: Option<Value>,
}

impl std::fmt::Debug for CommEff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommEff")
            .field("me", &self.me)
            .field("committee", &self.committee)
            .field("active", &self.active)
            .field("fallback", &self.fallback.is_some())
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl CommEff {
    /// Total round budget: the 5-round fast lane plus the full
    /// phase-king fallback.
    pub fn rounds(t: usize) -> u64 {
        FALLBACK_START + PhaseKing::rounds(PhaseKing::phases_for(t))
    }

    /// Creates the state machine for process `me`.
    ///
    /// `prediction` is `me`'s n-bit prediction string (bit `j` set ⇔
    /// `pⱼ` predicted honest), exactly as handed to the paper's
    /// Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` and the prediction has `n` bits.
    pub fn new(me: ProcessId, n: usize, t: usize, input: Value, prediction: BitVec) -> Self {
        assert!(3 * t < n, "communication-efficient BA needs 3t < n");
        assert_eq!(prediction.len(), n, "prediction must have n bits");
        let (committee, degenerate) = match Self::committee_of(&prediction) {
            Some(c) => (c, false),
            None => (Vec::new(), true),
        };
        CommEff {
            me,
            n,
            t,
            input,
            prediction,
            committee,
            degenerate,
            active: false,
            tentative: input,
            fallback: None,
            out: None,
        }
    }

    /// The committee a prediction string induces: the first
    /// `min(n, 2f̂ + 1)` identifiers the string predicts *honest*, where
    /// `f̂` is the number of predicted-faulty processes. Accurate
    /// predictions make every honest process sample the same, fully
    /// honest committee of size `2f + 1`.
    ///
    /// Returns `None` for *degenerate* predictions — strings that mark
    /// fewer than `min(n, 2f̂ + 1)` identifiers trusted (e.g. an
    /// all-suspect string), so the committee cannot be filled from
    /// trusted identifiers alone. Earlier revisions silently padded the
    /// committee with predicted-faulty identifiers, which breaks the
    /// fast lane's "at most `f̂` of `2f̂ + 1` members faulty" premise; a
    /// degenerate prediction now diverts its holder to the fallback
    /// lane instead (it drives no fast-lane traffic and falls back at
    /// the certify checkpoint unless a consistent certificate view
    /// arrives from non-degenerate peers).
    pub fn committee_of(prediction: &BitVec) -> Option<Vec<ProcessId>> {
        let n = prediction.len();
        let predicted_faulty = n - prediction.count_ones();
        let size = n.min(2 * predicted_faulty + 1);
        let committee: Vec<ProcessId> = (0..n)
            .filter(|&j| prediction.get(j))
            .take(size)
            .map(|j| ProcessId(j as u32))
            .collect();
        (committee.len() == size).then_some(committee)
    }

    /// This process's sampled committee (empty when the prediction was
    /// degenerate — see [`CommEff::committee_of`]).
    pub fn committee(&self) -> &[ProcessId] {
        &self.committee
    }

    /// Whether the prediction was degenerate (fewer than `2f̂ + 1`
    /// trusted identifiers): the process drives no fast-lane traffic.
    pub fn degenerate(&self) -> bool {
        self.degenerate
    }

    /// The raw prediction string this process acts on — the pipeline's
    /// classification surface (it trusts predictions unrefined, so its
    /// realized `k_A` measures raw prediction quality).
    pub fn prediction(&self) -> &BitVec {
        &self.prediction
    }

    /// Whether the fallback lane was engaged.
    pub fn fell_back(&self) -> bool {
        self.fallback.is_some()
    }

    fn step_fallback(
        &mut self,
        round: u64,
        inbox: &[Envelope<CommEffMsg>],
        out: &mut Outbox<CommEffMsg>,
    ) {
        let Some(inner) = self.fallback.as_mut() else {
            return;
        };
        let sub = sub_inbox(inbox, |m| match m {
            CommEffMsg::Fallback(x) => Some(Arc::clone(x)),
            _ => None,
        });
        let mut sub_out = Outbox::new(out.sender(), out.system_size());
        inner.step(round - FALLBACK_START, &sub, &mut sub_out);
        ba_sim::forward_sub(sub_out, out, CommEffMsg::Fallback);
        if let Some(o) = inner.output() {
            self.out = Some(o.decision.unwrap_or(o.value));
        }
    }
}

impl Process for CommEff {
    type Msg = CommEffMsg;
    type Output = Value;

    fn step(&mut self, round: u64, inbox: &[Envelope<CommEffMsg>], out: &mut Outbox<CommEffMsg>) {
        if self.out.is_some() && self.fallback.is_none() {
            return; // fast-lane decision reached; nothing left to send
        }
        match round {
            // Step 0: route the input to the sampled committee.
            0 => out.multicast(
                self.committee.iter().copied(),
                CommEffMsg::Submit(self.input),
            ),
            // Step 1: processes trusted by n − t peers aggregate.
            // Degenerate predictions drive no fast-lane traffic, so
            // their holders never activate as aggregators either.
            1 => {
                if self.degenerate {
                    return;
                }
                let submits = distinct_values_by_sender(inbox, |m| match m {
                    CommEffMsg::Submit(v) => Some(*v),
                    _ => None,
                });
                if submits.len() >= self.n - self.t {
                    self.active = true;
                    let v = plurality_smallest(submits.values().copied())
                        .expect("n − t ≥ 1 submissions");
                    out.broadcast(CommEffMsg::Report(v));
                }
            }
            // Step 2: adopt the report plurality, acknowledge happiness.
            2 => {
                let reports = distinct_values_by_sender(inbox, |m| match m {
                    CommEffMsg::Report(v) => Some(*v),
                    _ => None,
                });
                let happy = !reports.is_empty()
                    && reports
                        .values()
                        .all(|v| *v == *reports.values().next().expect("non-empty"));
                self.tentative =
                    plurality_smallest(reports.values().copied()).unwrap_or(self.input);
                out.multicast(
                    self.committee.iter().copied(),
                    CommEffMsg::Ack {
                        value: self.tentative,
                        happy,
                    },
                );
            }
            // Step 3: aggregators certify n − t happy acknowledgements
            // of one value, or force the fallback.
            3 => {
                if !self.active {
                    return;
                }
                let acks = distinct_values_by_sender(inbox, |m| match m {
                    CommEffMsg::Ack { value, happy } => Some((*value, *happy)),
                    _ => None,
                });
                let mut happy_votes = Tally::new();
                for (value, happy) in acks.values() {
                    if *happy {
                        happy_votes.add(*value);
                    }
                }
                // Acks are one-per-sender and n − t > n/2, so at most
                // one value can reach the certification quorum.
                match happy_votes.first_reaching(self.n - self.t) {
                    Some(&v) => out.broadcast(CommEffMsg::Commit(v)),
                    None => out.broadcast(CommEffMsg::Retreat),
                }
            }
            // Step 4: a clean, unanimous certificate set decides; any
            // gap or retreat diverts into the fallback lane.
            4 => {
                let certs = distinct_values_by_sender(inbox, |m| match m {
                    CommEffMsg::Commit(v) => Some(Some(*v)),
                    CommEffMsg::Retreat => Some(None),
                    _ => None,
                });
                let commits: Vec<Value> = certs.values().filter_map(|c| *c).collect();
                let retreats = certs.values().any(|c| c.is_none());
                let unanimous = commits.windows(2).all(|w| w[0] == w[1]);
                if !commits.is_empty() && !retreats && unanimous {
                    self.out = Some(commits[0]);
                } else {
                    self.fallback = Some(PhaseKing::new(
                        self.me,
                        self.n,
                        self.t,
                        self.tentative,
                        PhaseKing::phases_for(self.t),
                    ));
                }
            }
            _ => self.step_fallback(round, inbox, out),
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        match &self.fallback {
            Some(inner) => inner.halted(),
            None => self.out.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::PredictionMatrix;
    use ba_sim::{ReplayAdversary, Runner, SilentAdversary};
    use std::collections::{BTreeMap, BTreeSet};

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(
        n: usize,
        t: usize,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        input: impl Fn(usize) -> u64,
    ) -> BTreeMap<ProcessId, CommEff> {
        ProcessId::all(n)
            .filter(|id| !faulty.contains(id))
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    CommEff::new(id, n, t, Value(input(slot)), matrix.row(id).clone()),
                )
            })
            .collect()
    }

    #[test]
    fn fast_lane_decides_in_five_rounds_with_perfect_predictions() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 6), SilentAdversary);
        let report = runner.run(CommEff::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert_eq!(report.last_decision_round, Some(4));
    }

    #[test]
    fn fast_lane_agrees_on_split_inputs() {
        let n = 13;
        let f = faults(&[1, 6]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(
            n,
            system(n, 4, &f, &m, |slot| 1 + (slot % 2) as u64),
            SilentAdversary,
        );
        let report = runner.run(CommEff::rounds(4));
        assert!(report.agreement());
        assert_eq!(report.last_decision_round, Some(4), "still the fast lane");
    }

    #[test]
    fn garbage_predictions_divert_into_the_fallback_and_still_agree() {
        // All-honest predictions put a single (faulty, silent) process
        // on every committee: no aggregator ever activates, so the run
        // must divert into phase-king and still decide unanimously.
        let n = 7;
        let f = faults(&[0]);
        let m = PredictionMatrix::all_honest(n);
        let mut runner = Runner::with_ids(n, system(n, 2, &f, &m, |_| 9), SilentAdversary);
        let report = runner.run(CommEff::rounds(2));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(9)), "unanimity survives");
        assert!(
            report.last_decision_round.expect("decided") > 4,
            "fallback lane"
        );
        assert!(runner.process(ProcessId(1)).expect("honest").fell_back());
    }

    #[test]
    fn divergent_committees_fall_back_consistently() {
        // Wrong bits scattered over the rows: committees differ, some
        // aggregators retreat — every honest process must make the same
        // lane choice and agree.
        let n = 10;
        let f = faults(&[4, 8]);
        let mut m = PredictionMatrix::perfect(n, &f);
        m.row_mut(ProcessId(0)).flip(1);
        m.row_mut(ProcessId(2)).flip(4);
        m.row_mut(ProcessId(3)).flip(0);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 5), SilentAdversary);
        let report = runner.run(CommEff::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(5)));
    }

    #[test]
    fn equivocating_committee_certifier_forces_the_fallback() {
        // Active equivocation inside the fast lane: every honest process
        // predicts the faulty p2 honest (missed detection) and suspects
        // the honest p9, so the shared committee is {0, 1, 2} with the
        // Byzantine p2 seated as an aggregator. p2 equivocates its
        // *report* (5 to evens, 77 to odds), souring half the
        // acknowledgements so no honest aggregator can certify, and then
        // sends conflicting *certify* messages to disjoint honest
        // halves. Every honest process must distrust the fast lane —
        // uniformly — and the fallback must still reach the unanimous
        // honest value.
        use ba_sim::{AdversaryCtx, FnAdversary};
        let n = 10;
        let t = 3;
        let f = faults(&[2]);
        let mut m = PredictionMatrix::perfect(n, &f);
        for row in ProcessId::all(n).filter(|p| !f.contains(p)) {
            m.row_mut(row).set(2, true); // trust the traitor
            m.row_mut(row).set(9, false); // suspect an innocent
        }
        let committee = CommEff::committee_of(m.row(ProcessId(0))).expect("non-degenerate");
        assert_eq!(
            committee,
            vec![ProcessId(0), ProcessId(1), ProcessId(2)],
            "fixture: the faulty process must sit on the committee"
        );
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, CommEffMsg>| {
            match ctx.round {
                // Split the report lane: honest acks come back unhappy.
                1 => {
                    for to in ProcessId::all(10) {
                        let v = if to.0 % 2 == 0 { Value(5) } else { Value(77) };
                        ctx.send(ProcessId(2), to, CommEffMsg::Report(v));
                    }
                }
                // Conflicting certificates to disjoint honest halves.
                3 => {
                    for to in ProcessId::all(10) {
                        let v = if to.0 < 5 { Value(5) } else { Value(77) };
                        ctx.send(ProcessId(2), to, CommEffMsg::Commit(v));
                    }
                }
                _ => {}
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, |_| 5), adv);
        let report = runner.run(CommEff::rounds(t));
        assert!(report.agreement(), "equivocation must not split the halves");
        assert_eq!(report.decision(), Some(&Value(5)), "unanimity survives");
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            assert!(
                runner.process(id).expect("honest").fell_back(),
                "{id} trusted an equivocated certificate set"
            );
        }
        assert!(
            report.last_decision_round.expect("decided") > 4,
            "decision must come from the fallback lane"
        );
    }

    #[test]
    fn replayed_traffic_is_inert() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, |_| 6), ReplayAdversary::new(1));
        let report = runner.run(CommEff::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert_eq!(report.last_decision_round, Some(4), "replay cannot stall");
    }

    #[test]
    fn full_equivocation_can_split_the_unsigned_lane_choice() {
        // Pins the *documented conditional* behaviour of the unsigned
        // fast lane (module docs: the certify step assumes faulty
        // processes cannot split the honest view of broadcast traffic).
        // With all-honest predictions the shared committee is the single
        // identifier p0 — which is faulty. p0 equivocates its report
        // (7 to evens, 9 to odds) and then delivers a certificate to the
        // even half only: the evens decide in the fast lane while the
        // odds divert into a fallback that can never reach quorum. This
        // split is exactly what `CommEffSigned`'s transferable,
        // echo-forwarded certificates remove — see
        // `crate::signed::tests::withheld_certificates_cannot_split_the_signed_lane`.
        use ba_sim::{AdversaryCtx, FnAdversary};
        let n = 7;
        let t = 2;
        let f = faults(&[0]);
        let m = PredictionMatrix::all_honest(n);
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, CommEffMsg>| match ctx.round {
            1 => {
                for to in ProcessId::all(7) {
                    let v = if to.0.is_multiple_of(2) {
                        Value(7)
                    } else {
                        Value(9)
                    };
                    ctx.send(ProcessId(0), to, CommEffMsg::Report(v));
                }
            }
            3 => {
                for to in ProcessId::all(7).filter(|p| p.0.is_multiple_of(2)) {
                    ctx.send(ProcessId(0), to, CommEffMsg::Commit(Value(7)));
                }
            }
            _ => {}
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, |_| 7), adv);
        let report = runner.run(CommEff::rounds(t));
        let fell_back: Vec<bool> = ProcessId::all(n)
            .filter(|p| !f.contains(p))
            .map(|id| runner.process(id).expect("honest").fell_back())
            .collect();
        assert!(
            fell_back.iter().any(|b| *b) && fell_back.iter().any(|b| !*b),
            "the unsigned lane choice must split under this equivocation \
             (got {fell_back:?}) — if this starts failing, the documented \
             conditionality has changed and the signed variant's contrast \
             tests need revisiting"
        );
        assert!(
            !report.all_decided(),
            "the under-quorum fallback half cannot decide"
        );
    }

    #[test]
    fn fast_lane_is_subquadratic_in_messages() {
        // With accurate predictions and f fixed, the fast lane costs
        // Θ(n · f) constant-size messages: for n = 31, 2 faults it must
        // stay far below the n² of a single all-to-all round.
        let n = 31;
        let f = faults(&[11, 23]);
        let m = PredictionMatrix::perfect(n, &f);
        let mut runner = Runner::with_ids(n, system(n, 10, &f, &m, |_| 2), SilentAdversary);
        let report = runner.run(CommEff::rounds(10));
        assert_eq!(report.last_decision_round, Some(4));
        assert!(
            report.honest_messages < (n * n) as u64,
            "got {} messages",
            report.honest_messages
        );
        // Constant-size payloads: ≤ 10 bytes each.
        assert!(report.honest_bytes <= report.honest_messages * 10);
    }

    #[test]
    fn committee_tracks_the_predicted_fault_count() {
        let mut p = BitVec::ones(9);
        assert_eq!(CommEff::committee_of(&p), Some(vec![ProcessId(0)]));
        p.set(2, false); // one predicted fault → 2f̂ + 1 = 3 members
        assert_eq!(
            CommEff::committee_of(&p),
            Some(vec![ProcessId(0), ProcessId(1), ProcessId(3)]),
            "suspects are skipped"
        );
        // All suspected: no trusted identifier can seat the committee.
        assert_eq!(CommEff::committee_of(&BitVec::zeros(3)), None);
        let mut tight = BitVec::ones(9);
        for j in 0..4 {
            tight.set(j, false); // f̂ = 4 → min(9, 2·4 + 1) = 9 seats, 5 trusted
        }
        assert_eq!(
            CommEff::committee_of(&tight),
            None,
            "5 trusted ids cannot seat a 9-member committee"
        );
        let mut exact = BitVec::ones(9);
        exact.set(0, false); // f̂ = 1 → 3 seats, 8 trusted
        assert_eq!(
            CommEff::committee_of(&exact),
            Some(vec![ProcessId(1), ProcessId(2), ProcessId(3)]),
            "committee contains trusted identifiers only"
        );
    }

    #[test]
    fn all_suspect_predictions_divert_to_the_fallback() {
        // Regression for the degenerate-committee edge case: an
        // all-suspect prediction used to build a committee padded with
        // the very identifiers it distrusts; it must instead divert the
        // run into the fallback lane — uniformly — and still agree.
        let n = 7;
        let f = faults(&[0]);
        let m = PredictionMatrix::from_rows(vec![BitVec::zeros(n); n]);
        let mut runner = Runner::with_ids(n, system(n, 2, &f, &m, |_| 9), SilentAdversary);
        let report = runner.run(CommEff::rounds(2));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(9)), "unanimity survives");
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            let p = runner.process(id).expect("honest");
            assert!(p.degenerate(), "{id} should have no fillable committee");
            assert!(p.committee().is_empty());
            assert!(p.fell_back(), "{id} must divert to the fallback lane");
        }
        assert!(
            report.last_decision_round.expect("decided") > 4,
            "decision must come from the fallback lane"
        );
    }

    #[test]
    fn message_sizes_follow_the_wire_model() {
        assert_eq!(CommEffMsg::Submit(Value(1)).wire_bytes(), 9);
        assert_eq!(
            CommEffMsg::Ack {
                value: Value(1),
                happy: true
            }
            .wire_bytes(),
            10
        );
        assert_eq!(CommEffMsg::Retreat.wire_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn rejects_too_many_faults() {
        let _ = CommEff::new(ProcessId(0), 9, 3, Value(0), BitVec::ones(9));
    }
}
