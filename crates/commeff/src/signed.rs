//! The signed fast path: equivocation-proof certify for the
//! communication-efficient pipeline.
//!
//! The unsigned fast lane ([`crate::CommEff`]) is *conditional*: its
//! certify step trusts that every honest process observes the same
//! report and certificate sets, so a Byzantine aggregator that shows a
//! certificate to one honest half and nothing (or a conflicting one) to
//! the other splits the fast/fallback decision — see the pinned
//! `full_equivocation_can_split_the_unsigned_lane_choice` test. This
//! module removes that conditionality with the [`ba_crypto::Signed`]
//! envelope, following the signed certify step of Dzulfikar–Gilbert's
//! *Communication Efficient Byzantine Agreement with Predictions*:
//!
//! 1. **Signed traffic, verify-on-receive** — submit, report, and
//!    acknowledgement bodies are signed; anything whose signature does
//!    not verify for the envelope sender (forged tags, honest
//!    signatures replayed from corrupted identities) is dropped as if
//!    never sent.
//! 2. **Transferable certificates** — an aggregator certifies by
//!    broadcasting the *proof* itself: `n − t` signed happy
//!    acknowledgements of one value ([`Certificate`]). Since honest
//!    processes sign at most one acknowledgement per execution and two
//!    `n − t` quorums intersect in an honest process (`3t < n`), valid
//!    certificates for two different values cannot both exist — a
//!    Byzantine aggregator can at most *withhold* a certificate, never
//!    fabricate a conflicting one.
//! 3. **Certificate echo** — one extra round: every process holding a
//!    valid certificate re-broadcasts it before anyone decides. A
//!    certificate delivered to even a single honest process *by the
//!    certify round* therefore reaches all of them by the decision
//!    round, so the lane decision is uniform: either every honest
//!    process decides in the (now 6-round) fast lane, or every honest
//!    process enters the fallback.
//!
//! The price is bandwidth, not rounds: a certificate carries `n − t`
//! signatures, so the commit/echo rounds cost `O(n³)` signed bytes —
//! the signed variant trades the unsigned lane's subquadratic
//! communication *under attack* for an unconditional lane choice. With
//! accurate predictions and no equivocation the totals still separate
//! from the `Ω(n²)`-per-round baselines per message count.
//!
//! Receivers additionally accept reports only from their own sampled
//! committee: with accurate predictions a non-member's (necessarily
//! faulty) signed-but-conflicting reports cannot sour acknowledgements,
//! so a signature equivocator cannot force the fallback from outside
//! the committee either.
//!
//! *Scope.* What the signatures buy is the **lane choice** for every
//! certificate first delivered during the certify round — the
//! conditionality the unsigned variant documents and the split pin
//! test demonstrates, including the withheld-certificate attack. Two
//! boundaries remain, both deliberate. First, a genuine certificate a
//! Byzantine holder *first* injects during the echo round itself
//! arrives only at the decision step, too late to be re-echoed; exact
//! last-round agreement is the classic simultaneity bound — closing it
//! costs `Θ(t)` echo rounds, the fallback's whole budget — and
//! reaching this window at all requires a committee with no active
//! honest aggregator (otherwise honest certificates already flooded
//! the echo round). Second, the *value* a certificate certifies is
//! backed by `≥ t + 1` honest signed acknowledgements, i.e. by honest
//! processes that adopted it from their committee-filtered report
//! view; like every committee-sampled fast path, that view is only as
//! honest as the committee, so thoroughly garbage predictions (again,
//! a committee with no active honest aggregator) remain the
//! fallback's, not the fast lane's, responsibility.

use crate::FALLBACK_START as UNSIGNED_FALLBACK_START;
use ba_core::BitVec;
use ba_crypto::{Encodable, Encoder, Pki, Signed, SigningKey};
use ba_early::{PhaseKing, PhaseKingMsg};
use ba_sim::{
    plurality_smallest, sub_inbox, Envelope, Outbox, Process, ProcessId, Value, WireSize,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// First fallback round: the signed fast lane occupies steps `0..=5`
/// (one certificate-echo round more than the unsigned lane).
const FALLBACK_START: u64 = UNSIGNED_FALLBACK_START + 1;

/// Signed body of a step-0 submission. The leading tag byte
/// domain-separates the fast-lane body kinds, so a signature on one
/// kind can never be replayed as another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitBody {
    /// The sender's input value.
    pub value: Value,
}

impl Encodable for SubmitBody {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(1);
        enc.u64(self.value.0);
    }
}

impl WireSize for SubmitBody {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes()
    }
}

/// Signed body of a step-1 aggregator report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportBody {
    /// The aggregator's plurality over the submissions it collected.
    pub value: Value,
}

impl Encodable for ReportBody {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(2);
        enc.u64(self.value.0);
    }
}

impl WireSize for ReportBody {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes()
    }
}

/// Signed body of a step-2 acknowledgement — the unit certificates are
/// made of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckBody {
    /// The tentative value adopted from the reports (or own input).
    pub value: Value,
    /// Whether every received report carried the same value.
    pub happy: bool,
}

impl Encodable for AckBody {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(3);
        enc.u64(self.value.0);
        enc.u8(u8::from(self.happy));
    }
}

impl WireSize for AckBody {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.happy.wire_bytes()
    }
}

/// A transferable certify proof: `n − t` distinct-signer signed happy
/// acknowledgements of one value. Self-certifying — validity depends
/// only on the signatures it carries, never on who relayed it — which
/// is what makes the echo round close the unsigned variant's
/// split-view loophole.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The certified value.
    pub value: Value,
    /// The quorum of signed happy acknowledgements backing it.
    pub acks: Vec<Signed<AckBody>>,
}

impl Certificate {
    /// Verifies the proof: at least `n − t` *distinct* in-range signers,
    /// every acknowledgement happy, for this value, validly signed.
    pub fn verify(&self, pki: &Pki, n: usize, t: usize) -> bool {
        let mut signers = BTreeSet::new();
        for ack in &self.acks {
            let signer = ack.signer();
            if (signer as usize) >= n {
                return false;
            }
            let Some(body) = ack.verified_from(pki, signer) else {
                return false;
            };
            if !body.happy || body.value != self.value {
                return false;
            }
            signers.insert(signer);
        }
        signers.len() >= n - t
    }
}

impl WireSize for Certificate {
    fn wire_bytes(&self) -> u64 {
        self.value.wire_bytes() + self.acks.wire_bytes()
    }
}

/// Messages of the signed communication-efficient pipeline. Fast-lane
/// bodies are signed and verified on receive; certificates are
/// self-certifying, so their variants carry no outer signature.
#[derive(Clone, Debug)]
pub enum CommEffSignedMsg {
    /// Step 0 → committee: the sender's signed input value.
    Submit(Signed<SubmitBody>),
    /// Step 1 → all: an active aggregator's signed report.
    Report(Signed<ReportBody>),
    /// Step 2 → committee: the sender's signed acknowledgement.
    Ack(Signed<AckBody>),
    /// Step 3 → all: an aggregator's certify proof.
    Commit(Arc<Certificate>),
    /// Step 4 → all: a certificate re-broadcast by any process that
    /// holds one, making the lane decision uniform.
    Echo(Arc<Certificate>),
    /// Steps 6+: wrapped phase-king fallback traffic.
    Fallback(Arc<PhaseKingMsg>),
}

/// A discriminant byte plus the variant's payload; each signed body
/// costs its unsigned counterpart plus exactly the 20-byte signature.
impl WireSize for CommEffSignedMsg {
    fn wire_bytes(&self) -> u64 {
        1 + match self {
            CommEffSignedMsg::Submit(s) => s.wire_bytes(),
            CommEffSignedMsg::Report(s) => s.wire_bytes(),
            CommEffSignedMsg::Ack(s) => s.wire_bytes(),
            CommEffSignedMsg::Commit(c) | CommEffSignedMsg::Echo(c) => c.wire_bytes(),
            CommEffSignedMsg::Fallback(inner) => inner.wire_bytes(),
        }
    }
}

/// One process's state machine for the signed communication-efficient
/// pipeline.
///
/// # Examples
///
/// ```
/// use ba_commeff::CommEffSigned;
/// use ba_core::PredictionMatrix;
/// use ba_crypto::Pki;
/// use ba_sim::{ProcessId, Runner, SilentAdversary, Value};
/// use std::collections::BTreeSet;
/// use std::sync::Arc;
///
/// // n = 7, one silent fault (p6), perfect predictions.
/// let n = 7;
/// let faulty: BTreeSet<ProcessId> = [ProcessId(6)].into_iter().collect();
/// let matrix = PredictionMatrix::perfect(n, &faulty);
/// let pki = Arc::new(Pki::new(n, 1));
/// let procs: Vec<CommEffSigned> = (0..6u32)
///     .map(|i| {
///         let id = ProcessId(i);
///         let key = pki.signing_key(i);
///         CommEffSigned::new(id, n, 2, Value(9), matrix.row(id).clone(), Arc::clone(&pki), key)
///     })
///     .collect();
/// let mut runner = Runner::new(n, procs, SilentAdversary);
/// let report = runner.run(CommEffSigned::rounds(2));
/// assert_eq!(report.decision(), Some(&Value(9)));
/// assert_eq!(report.last_decision_round, Some(5), "6-round signed fast lane");
/// ```
pub struct CommEffSigned {
    me: ProcessId,
    n: usize,
    t: usize,
    input: Value,
    prediction: BitVec,
    committee: Vec<ProcessId>,
    degenerate: bool,
    pki: Arc<Pki>,
    key: SigningKey,
    /// Set at step 1 when this process received `n − t` valid
    /// submissions.
    active: bool,
    tentative: Value,
    /// The first valid certificate observed (held across the echo
    /// round).
    cert: Option<Arc<Certificate>>,
    fallback: Option<PhaseKing>,
    out: Option<Value>,
}

impl std::fmt::Debug for CommEffSigned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommEffSigned")
            .field("me", &self.me)
            .field("committee", &self.committee)
            .field("active", &self.active)
            .field("cert", &self.cert.is_some())
            .field("fallback", &self.fallback.is_some())
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl CommEffSigned {
    /// Total round budget: the 6-round signed fast lane plus the full
    /// phase-king fallback.
    pub fn rounds(t: usize) -> u64 {
        FALLBACK_START + PhaseKing::rounds(PhaseKing::phases_for(t))
    }

    /// Creates the state machine for process `me`.
    ///
    /// The committee sampling (and the degenerate-prediction divert)
    /// is shared with the unsigned variant: see
    /// [`crate::CommEff::committee_of`].
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` and the prediction has `n` bits.
    pub fn new(
        me: ProcessId,
        n: usize,
        t: usize,
        input: Value,
        prediction: BitVec,
        pki: Arc<Pki>,
        key: SigningKey,
    ) -> Self {
        assert!(3 * t < n, "communication-efficient BA needs 3t < n");
        assert_eq!(prediction.len(), n, "prediction must have n bits");
        let (committee, degenerate) = match crate::CommEff::committee_of(&prediction) {
            Some(c) => (c, false),
            None => (Vec::new(), true),
        };
        CommEffSigned {
            me,
            n,
            t,
            input,
            prediction,
            committee,
            degenerate,
            pki,
            key,
            active: false,
            tentative: input,
            cert: None,
            fallback: None,
            out: None,
        }
    }

    /// This process's sampled committee (empty when degenerate).
    pub fn committee(&self) -> &[ProcessId] {
        &self.committee
    }

    /// The raw prediction string this process acts on (the probe
    /// surface, as in the unsigned variant).
    pub fn prediction(&self) -> &BitVec {
        &self.prediction
    }

    /// Whether the fallback lane was engaged.
    pub fn fell_back(&self) -> bool {
        self.fallback.is_some()
    }

    /// Whether the prediction was degenerate (no fillable committee).
    pub fn degenerate(&self) -> bool {
        self.degenerate
    }

    /// Collects the first *valid* signed body per sender from the
    /// inbox: signature verified for the envelope sender, everything
    /// else dropped as never sent.
    fn valid_by_sender<B: Encodable + Clone>(
        &self,
        inbox: &[Envelope<CommEffSignedMsg>],
        extract: impl Fn(&CommEffSignedMsg) -> Option<&Signed<B>>,
    ) -> BTreeMap<ProcessId, B> {
        let mut per_sender = BTreeMap::new();
        for env in inbox {
            if let Some(signed) = extract(&env.payload) {
                if let Some(body) = signed.verified_from(&self.pki, env.from.0) {
                    per_sender.entry(env.from).or_insert_with(|| body.clone());
                }
            }
        }
        per_sender
    }

    /// The first valid certificate in the inbox, if any.
    fn valid_cert(&self, inbox: &[Envelope<CommEffSignedMsg>]) -> Option<Arc<Certificate>> {
        inbox.iter().find_map(|env| match &*env.payload {
            CommEffSignedMsg::Commit(c) | CommEffSignedMsg::Echo(c)
                if c.verify(&self.pki, self.n, self.t) =>
            {
                Some(Arc::clone(c))
            }
            _ => None,
        })
    }

    fn step_fallback(
        &mut self,
        round: u64,
        inbox: &[Envelope<CommEffSignedMsg>],
        out: &mut Outbox<CommEffSignedMsg>,
    ) {
        let Some(inner) = self.fallback.as_mut() else {
            return;
        };
        let sub = sub_inbox(inbox, |m| match m {
            CommEffSignedMsg::Fallback(x) => Some(Arc::clone(x)),
            _ => None,
        });
        let mut sub_out = Outbox::new(out.sender(), out.system_size());
        inner.step(round - FALLBACK_START, &sub, &mut sub_out);
        ba_sim::forward_sub(sub_out, out, CommEffSignedMsg::Fallback);
        if let Some(o) = inner.output() {
            self.out = Some(o.decision.unwrap_or(o.value));
        }
    }
}

impl Process for CommEffSigned {
    type Msg = CommEffSignedMsg;
    type Output = Value;

    fn step(
        &mut self,
        round: u64,
        inbox: &[Envelope<CommEffSignedMsg>],
        out: &mut Outbox<CommEffSignedMsg>,
    ) {
        if self.out.is_some() && self.fallback.is_none() {
            return; // fast-lane decision reached; nothing left to send
        }
        match round {
            // Step 0: route the signed input to the sampled committee.
            0 => {
                if !self.degenerate {
                    out.multicast(
                        self.committee.iter().copied(),
                        CommEffSignedMsg::Submit(Signed::new(
                            SubmitBody { value: self.input },
                            &self.key,
                        )),
                    );
                }
            }
            // Step 1: processes trusted by n − t peers aggregate over
            // the *verified* submissions.
            1 => {
                if self.degenerate {
                    return;
                }
                let submits = self.valid_by_sender(inbox, |m| match m {
                    CommEffSignedMsg::Submit(s) => Some(s),
                    _ => None,
                });
                if submits.len() >= self.n - self.t {
                    self.active = true;
                    let v = plurality_smallest(submits.values().map(|b| b.value))
                        .expect("n − t ≥ 1 submissions");
                    out.broadcast(CommEffSignedMsg::Report(Signed::new(
                        ReportBody { value: v },
                        &self.key,
                    )));
                }
            }
            // Step 2: adopt the verified report plurality — counting
            // only reports from this process's own committee, so a
            // signature equivocator outside it cannot sour the
            // acknowledgements — and acknowledge happiness.
            2 => {
                let committee: BTreeSet<ProcessId> = self.committee.iter().copied().collect();
                let mut reports = self.valid_by_sender(inbox, |m| match m {
                    CommEffSignedMsg::Report(s) => Some(s),
                    _ => None,
                });
                reports.retain(|sender, _| committee.contains(sender));
                let happy = !reports.is_empty()
                    && reports
                        .values()
                        .all(|b| b.value == reports.values().next().expect("non-empty").value);
                self.tentative =
                    plurality_smallest(reports.values().map(|b| b.value)).unwrap_or(self.input);
                if !self.degenerate {
                    out.multicast(
                        self.committee.iter().copied(),
                        CommEffSignedMsg::Ack(Signed::new(
                            AckBody {
                                value: self.tentative,
                                happy,
                            },
                            &self.key,
                        )),
                    );
                }
            }
            // Step 3: aggregators assemble a certificate — n − t
            // verified happy acknowledgements of one value — and
            // broadcast the proof itself. No valid certificates for two
            // different values can exist (quorum intersection), so
            // retreat claims are unnecessary: absence of proof is the
            // fallback signal.
            3 => {
                if !self.active {
                    return;
                }
                let mut by_value: BTreeMap<Value, Vec<Signed<AckBody>>> = BTreeMap::new();
                let mut seen: BTreeSet<ProcessId> = BTreeSet::new();
                for env in inbox {
                    let CommEffSignedMsg::Ack(signed) = &*env.payload else {
                        continue;
                    };
                    let Some(body) = signed.verified_from(&self.pki, env.from.0) else {
                        continue;
                    };
                    if body.happy && seen.insert(env.from) {
                        by_value.entry(body.value).or_default().push(signed.clone());
                    }
                }
                if let Some((value, acks)) = by_value
                    .into_iter()
                    .find(|(_, acks)| acks.len() >= self.n - self.t)
                {
                    out.broadcast(CommEffSignedMsg::Commit(Arc::new(Certificate {
                        value,
                        acks,
                    })));
                }
            }
            // Step 4: certificate echo — any process holding a valid
            // proof re-broadcasts it, so one honest recipient suffices
            // to make the whole honest population decide.
            4 => {
                if let Some(cert) = self.valid_cert(inbox) {
                    out.broadcast(CommEffSignedMsg::Echo(Arc::clone(&cert)));
                    self.cert = Some(cert);
                }
            }
            // Step 5: the uniform lane decision — a valid certificate
            // (held from step 4 or echoed to us) decides; no proof
            // anywhere means no honest process saw one either, so
            // everyone enters the fallback together.
            5 => {
                let cert = self.cert.take().or_else(|| self.valid_cert(inbox));
                match cert {
                    Some(c) => self.out = Some(c.value),
                    None => {
                        self.fallback = Some(PhaseKing::new(
                            self.me,
                            self.n,
                            self.t,
                            self.tentative,
                            PhaseKing::phases_for(self.t),
                        ));
                    }
                }
            }
            _ => self.step_fallback(round, inbox, out),
        }
    }

    fn output(&self) -> Option<Value> {
        self.out
    }

    fn halted(&self) -> bool {
        match &self.fallback {
            Some(inner) => inner.halted(),
            None => self.out.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::PredictionMatrix;
    use ba_sim::{AdversaryCtx, FnAdversary, ReplayAdversary, Runner, SilentAdversary};
    use std::collections::BTreeSet;

    fn faults(ids: &[u32]) -> BTreeSet<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn system(
        n: usize,
        t: usize,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        pki: &Arc<Pki>,
        input: impl Fn(usize) -> u64,
    ) -> BTreeMap<ProcessId, CommEffSigned> {
        ProcessId::all(n)
            .filter(|id| !faulty.contains(id))
            .enumerate()
            .map(|(slot, id)| {
                (
                    id,
                    CommEffSigned::new(
                        id,
                        n,
                        t,
                        Value(input(slot)),
                        matrix.row(id).clone(),
                        Arc::clone(pki),
                        pki.signing_key(id.0),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn fast_lane_decides_in_six_rounds_with_perfect_predictions() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(n, system(n, 3, &f, &m, &pki, |_| 6), SilentAdversary);
        let report = runner.run(CommEffSigned::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert_eq!(report.last_decision_round, Some(5), "signed fast lane");
    }

    #[test]
    fn fast_lane_agrees_on_split_inputs() {
        let n = 13;
        let f = faults(&[1, 6]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(
            n,
            system(n, 4, &f, &m, &pki, |slot| 1 + (slot % 2) as u64),
            SilentAdversary,
        );
        let report = runner.run(CommEffSigned::rounds(4));
        assert!(report.agreement());
        assert_eq!(report.last_decision_round, Some(5), "still the fast lane");
    }

    #[test]
    fn garbage_predictions_divert_into_the_fallback_and_still_agree() {
        let n = 7;
        let f = faults(&[0]);
        let m = PredictionMatrix::all_honest(n);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(n, system(n, 2, &f, &m, &pki, |_| 9), SilentAdversary);
        let report = runner.run(CommEffSigned::rounds(2));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(9)), "unanimity survives");
        assert!(
            report.last_decision_round.expect("decided") > 5,
            "fallback lane"
        );
    }

    /// The signed mirror of the unsigned split pin
    /// (`full_equivocation_can_split_the_unsigned_lane_choice`): same
    /// topology, same equivocating aggregator — but its report
    /// equivocation leaves no value with an `n − t` happy-ack quorum,
    /// so no valid certificate exists and its conflicting certify
    /// claims are unverifiable noise. Every honest process makes the
    /// *same* lane choice and the full-quorum fallback decides.
    #[test]
    fn report_equivocation_cannot_split_the_signed_lane() {
        let n = 7;
        let t = 2;
        let f = faults(&[0]);
        let m = PredictionMatrix::all_honest(n);
        let pki = Arc::new(Pki::new(n, 5));
        let adv_pki = Arc::clone(&pki);
        let key0 = pki.signing_key(0);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, CommEffSignedMsg>| {
            match ctx.round {
                1 => {
                    for to in ProcessId::all(7) {
                        let v = if to.0.is_multiple_of(2) {
                            Value(7)
                        } else {
                            Value(9)
                        };
                        let msg =
                            CommEffSignedMsg::Report(Signed::new(ReportBody { value: v }, &key0));
                        ctx.send(ProcessId(0), to, msg);
                    }
                }
                3 => {
                    // A certificate forged from self-signed acks
                    // claiming honest signers: must not verify.
                    let forged: Vec<Signed<AckBody>> = (1..6u32)
                        .map(|claimed| {
                            let body = AckBody {
                                value: Value(7),
                                happy: true,
                            };
                            let mut sig = *Signed::new(body, &key0).signature();
                            sig.signer = claimed;
                            Signed::from_parts(body, sig)
                        })
                        .collect();
                    let cert = Arc::new(Certificate {
                        value: Value(7),
                        acks: forged,
                    });
                    assert!(!cert.verify(&adv_pki, 7, 2), "forgery must not verify");
                    for to in ProcessId::all(7).filter(|p| p.0.is_multiple_of(2)) {
                        ctx.send(
                            ProcessId(0),
                            to,
                            CommEffSignedMsg::Commit(Arc::clone(&cert)),
                        );
                    }
                }
                _ => {}
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, &pki, |_| 7), adv);
        let report = runner.run(CommEffSigned::rounds(t));
        assert!(report.agreement(), "signed lane choice must not split");
        assert!(report.all_decided(), "full-quorum fallback must decide");
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            assert!(
                runner.process(id).expect("honest").fell_back(),
                "{id} must make the same (fallback) lane choice"
            );
        }
    }

    /// The other half of the contrast: when a genuine certificate *can*
    /// be assembled (consistent reports, happy honest acks) but the
    /// Byzantine aggregator withholds it from half the processes, the
    /// echo round forwards the transferable proof and everyone decides
    /// in the fast lane — where the unsigned variant strands the other
    /// half in an under-quorum fallback.
    #[test]
    fn withheld_certificates_cannot_split_the_signed_lane() {
        let n = 7;
        let t = 2;
        let f = faults(&[0]);
        let m = PredictionMatrix::all_honest(n);
        let pki = Arc::new(Pki::new(n, 5));
        let key0 = pki.signing_key(0);
        let acks = Arc::new(std::sync::Mutex::new(Vec::<Signed<AckBody>>::new()));
        let acks_in = Arc::clone(&acks);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, CommEffSignedMsg>| {
            match ctx.round {
                // A consistent report: every honest ack will be happy.
                1 => {
                    let msg = CommEffSignedMsg::Report(Signed::new(
                        ReportBody { value: Value(7) },
                        &key0,
                    ));
                    ctx.broadcast(ProcessId(0), msg);
                }
                // Rushing visibility: harvest the signed happy acks.
                2 => {
                    let mut store = acks_in.lock().expect("poisoned");
                    for env in ctx.honest_traffic {
                        if let CommEffSignedMsg::Ack(signed) = &*env.payload {
                            store.push(signed.clone());
                        }
                    }
                }
                // Deliver the genuine certificate to the evens only.
                3 => {
                    let store = acks_in.lock().expect("poisoned");
                    let cert = Arc::new(Certificate {
                        value: Value(7),
                        acks: store.clone(),
                    });
                    for to in ProcessId::all(7).filter(|p| p.0.is_multiple_of(2)) {
                        ctx.send(
                            ProcessId(0),
                            to,
                            CommEffSignedMsg::Commit(Arc::clone(&cert)),
                        );
                    }
                }
                _ => {}
            }
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, &pki, |_| 7), adv);
        let report = runner.run(CommEffSigned::rounds(t));
        assert!(report.agreement(), "withholding must not split the halves");
        assert!(report.all_decided());
        assert_eq!(report.decision(), Some(&Value(7)));
        for id in ProcessId::all(n).filter(|p| !f.contains(p)) {
            assert!(
                !runner.process(id).expect("honest").fell_back(),
                "{id} must ride the echoed certificate into the fast lane"
            );
        }
        assert_eq!(
            report.last_decision_round,
            Some(5),
            "uniform fast-lane decision at the echo checkpoint"
        );
    }

    #[test]
    fn forged_and_replayed_signatures_are_inert() {
        // Forged tags claiming honest signers and honest signed bodies
        // replayed from a corrupted identity must all be dropped by
        // verify-on-receive: the fast lane proceeds as under silence.
        let n = 10;
        let t = 3;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let key3 = pki.signing_key(3);
        let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, CommEffSignedMsg>| {
            // Replay every observed honest signed body from p3.
            let observed: Vec<Arc<CommEffSignedMsg>> = ctx
                .honest_traffic
                .iter()
                .map(|e| Arc::clone(&e.payload))
                .collect();
            for payload in observed {
                for to in ProcessId::all(10) {
                    ctx.replay(ProcessId(3), to, Arc::clone(&payload));
                }
            }
            // Forge a submission claiming an honest signer.
            let body = SubmitBody { value: Value(99) };
            let mut sig = *Signed::new(body, &key3).signature();
            sig.signer = 1;
            let forged = CommEffSignedMsg::Submit(Signed::from_parts(body, sig));
            ctx.broadcast(ProcessId(3), forged);
        });
        let mut runner = Runner::with_ids(n, system(n, t, &f, &m, &pki, |_| 6), adv);
        let report = runner.run(CommEffSigned::rounds(t));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert_eq!(
            report.last_decision_round,
            Some(5),
            "forgeries and replays cannot divert the fast lane"
        );
    }

    #[test]
    fn replayed_traffic_is_inert() {
        let n = 10;
        let f = faults(&[3, 7]);
        let m = PredictionMatrix::perfect(n, &f);
        let pki = Arc::new(Pki::new(n, 5));
        let mut runner = Runner::with_ids(
            n,
            system(n, 3, &f, &m, &pki, |_| 6),
            ReplayAdversary::new(1),
        );
        let report = runner.run(CommEffSigned::rounds(3));
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(6)));
        assert_eq!(report.last_decision_round, Some(5), "replay cannot stall");
    }

    #[test]
    fn signed_messages_cost_exactly_the_signature_model_more() {
        // The conformance contract: each signed fast-lane message costs
        // its unsigned counterpart plus exactly the 20-byte signature.
        let pki = Pki::new(4, 1);
        let key = pki.signing_key(0);
        let submit = CommEffSignedMsg::Submit(Signed::new(SubmitBody { value: Value(1) }, &key));
        assert_eq!(
            submit.wire_bytes(),
            crate::CommEffMsg::Submit(Value(1)).wire_bytes() + 20
        );
        let report = CommEffSignedMsg::Report(Signed::new(ReportBody { value: Value(1) }, &key));
        assert_eq!(
            report.wire_bytes(),
            crate::CommEffMsg::Report(Value(1)).wire_bytes() + 20
        );
        let ack = CommEffSignedMsg::Ack(Signed::new(
            AckBody {
                value: Value(1),
                happy: true,
            },
            &key,
        ));
        assert_eq!(
            ack.wire_bytes(),
            crate::CommEffMsg::Ack {
                value: Value(1),
                happy: true
            }
            .wire_bytes()
                + 20
        );
    }

    #[test]
    fn certificates_for_two_values_cannot_coexist() {
        // Quorum intersection, exercised: with n = 7, t = 2 any two
        // n − t = 5 ack quorums share ≥ 3 signers, so building valid
        // certificates for two values requires some signer to happily
        // ack both — which the verifier accepts (signatures bind bodies,
        // not executions) but honest processes never produce. Assemble
        // the adversarial best case — all t faulty signers double-ack —
        // and check a second-value quorum still cannot be reached
        // without honest double-acks.
        let n = 7;
        let t = 2;
        let pki = Pki::new(n, 3);
        let happy = |signer: u32, value: u64| {
            Signed::new(
                AckBody {
                    value: Value(value),
                    happy: true,
                },
                &pki.signing_key(signer),
            )
        };
        // 5 honest signers ack value 4; the 2 faulty ack both values.
        let cert_a = Certificate {
            value: Value(4),
            acks: (0..5u32).map(|s| happy(s, 4)).collect(),
        };
        assert!(cert_a.verify(&pki, n, t));
        let cert_b = Certificate {
            value: Value(9),
            acks: (5..7u32).map(|s| happy(s, 9)).collect(),
        };
        assert!(
            !cert_b.verify(&pki, n, t),
            "t double-ackers alone are below every n − t quorum"
        );
    }

    #[test]
    fn certificate_verification_rejects_duplicates_and_unhappy_acks() {
        let n = 7;
        let t = 2;
        let pki = Pki::new(n, 3);
        let ack = |signer: u32, happy: bool| {
            Signed::new(
                AckBody {
                    value: Value(4),
                    happy,
                },
                &pki.signing_key(signer),
            )
        };
        let duplicated = Certificate {
            value: Value(4),
            acks: vec![ack(0, true); 5],
        };
        assert!(
            !duplicated.verify(&pki, n, t),
            "one signer repeated is one signer"
        );
        let unhappy = Certificate {
            value: Value(4),
            acks: (0..5u32).map(|s| ack(s, s != 2)).collect(),
        };
        assert!(!unhappy.verify(&pki, n, t), "unhappy acks prove nothing");
        let out_of_range = Certificate {
            value: Value(4),
            acks: (0..5u32)
                .map(|s| {
                    Signed::new(
                        AckBody {
                            value: Value(4),
                            happy: true,
                        },
                        &Pki::new(20, 3).signing_key(s + 10),
                    )
                })
                .collect(),
        };
        assert!(!out_of_range.verify(&pki, n, t), "unknown signers rejected");
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn rejects_too_many_faults() {
        let pki = Arc::new(Pki::new(9, 1));
        let key = pki.signing_key(0);
        let _ = CommEffSigned::new(ProcessId(0), 9, 3, Value(0), BitVec::ones(9), pki, key);
    }
}
