//! Quorum-counting helpers shared by every protocol crate.
//!
//! Byzantine processes may send several (conflicting) messages in one
//! round, so *all* quorum logic must count **distinct senders**, never raw
//! message multiplicity. These helpers centralise that discipline.

use crate::envelope::Envelope;
use crate::id::ProcessId;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Counts the distinct senders among `envelopes` whose payload satisfies
/// `pred`.
pub fn count_distinct_senders<M, F>(envelopes: &[Envelope<M>], mut pred: F) -> usize
where
    F: FnMut(&M) -> bool,
{
    let mut seen: BTreeSet<ProcessId> = BTreeSet::new();
    for env in envelopes {
        if pred(&env.payload) {
            seen.insert(env.from);
        }
    }
    seen.len()
}

/// Extracts, per sender, the first value produced by `extract` over that
/// sender's messages (in inbox order).
///
/// "First message wins" is the standard way to neutralise Byzantine
/// double-sends: an honest process's behaviour depends only on one message
/// per sender per round. Senders that produced no extractable message are
/// absent from the map.
pub fn distinct_values_by_sender<M, V, F>(
    envelopes: &[Envelope<M>],
    mut extract: F,
) -> BTreeMap<ProcessId, V>
where
    F: FnMut(&M) -> Option<V>,
{
    let mut map: BTreeMap<ProcessId, V> = BTreeMap::new();
    for env in envelopes {
        if map.contains_key(&env.from) {
            continue;
        }
        if let Some(v) = extract(&env.payload) {
            map.insert(env.from, v);
        }
    }
    map
}

/// A multiset tally over an ordered value domain.
///
/// Ties in "most frequent" queries break toward the **smallest** value,
/// the deterministic convention this reproduction uses everywhere the
/// paper says "a value that occurs the largest number of times"
/// (Algorithm 4 line 5, Algorithm 7 lines 10 and 13).
#[derive(Clone, Debug, Default)]
pub struct Tally<V: Ord> {
    counts: BTreeMap<V, usize>,
}

impl<V: Ord + Clone + Hash> Tally<V> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally {
            counts: BTreeMap::new(),
        }
    }

    /// Adds one occurrence of `v`.
    pub fn add(&mut self, v: V) {
        *self.counts.entry(v).or_insert(0) += 1;
    }

    /// Number of occurrences of `v`.
    pub fn count(&self, v: &V) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Total occurrences across all values.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// The smallest value among those occurring the maximum number of
    /// times, or `None` if the tally is empty.
    pub fn plurality(&self) -> Option<&V> {
        let max = self.counts.values().copied().max()?;
        self.counts.iter().find(|(_, &c)| c == max).map(|(v, _)| v)
    }

    /// The smallest value whose count is at least `threshold`, if any.
    pub fn first_reaching(&self, threshold: usize) -> Option<&V> {
        self.counts
            .iter()
            .find(|(_, &c)| c >= threshold)
            .map(|(v, _)| v)
    }

    /// All values whose count is at least `threshold`, in increasing order.
    pub fn all_reaching(&self, threshold: usize) -> Vec<&V> {
        self.counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(v, _)| v)
            .collect()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, usize)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    /// Whether the tally holds no values.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl<V: Ord + Clone + Hash> FromIterator<V> for Tally<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        let mut t = Tally::new();
        for v in iter {
            t.add(v);
        }
        t
    }
}

impl<V: Ord + Clone + Hash> Extend<V> for Tally<V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Convenience: the smallest most-frequent value of an iterator, or `None`
/// when empty.
pub fn plurality_smallest<V, I>(values: I) -> Option<V>
where
    V: Ord + Clone + Hash,
    I: IntoIterator<Item = V>,
{
    let tally: Tally<V> = values.into_iter().collect();
    tally.plurality().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Value;

    fn env(from: u32, payload: u32) -> Envelope<u32> {
        Envelope::new(ProcessId(from), ProcessId(0), payload)
    }

    #[test]
    fn distinct_senders_ignores_duplicates_from_one_sender() {
        let envs = vec![env(1, 7), env(1, 7), env(2, 7), env(3, 9)];
        assert_eq!(count_distinct_senders(&envs, |m| *m == 7), 2);
    }

    #[test]
    fn distinct_values_takes_first_message_per_sender() {
        // A Byzantine sender (id 1) equivocates within one round; the first
        // message is the one that counts.
        let envs = vec![env(1, 7), env(1, 8), env(2, 9)];
        let map = distinct_values_by_sender(&envs, |m| Some(*m));
        assert_eq!(map[&ProcessId(1)], 7);
        assert_eq!(map[&ProcessId(2)], 9);
    }

    #[test]
    fn distinct_values_skips_unextractable_messages() {
        let envs = vec![env(1, 0), env(2, 5)];
        let map = distinct_values_by_sender(&envs, |m| (*m != 0).then_some(*m));
        assert!(!map.contains_key(&ProcessId(1)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn plurality_breaks_ties_toward_smallest() {
        let t: Tally<Value> = [Value(5), Value(2), Value(5), Value(2), Value(9)]
            .into_iter()
            .collect();
        assert_eq!(t.plurality(), Some(&Value(2)));
    }

    #[test]
    fn plurality_of_empty_is_none() {
        let t: Tally<Value> = Tally::new();
        assert_eq!(t.plurality(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn first_reaching_respects_threshold_and_order() {
        let t: Tally<u32> = [3, 3, 3, 1, 1, 8, 8, 8].into_iter().collect();
        assert_eq!(t.first_reaching(3), Some(&3));
        assert_eq!(t.first_reaching(4), None);
        assert_eq!(t.all_reaching(2), vec![&1, &3, &8]);
    }

    #[test]
    fn tally_counts_and_total() {
        let mut t = Tally::new();
        t.extend([Value(1), Value(1), Value(4)]);
        assert_eq!(t.count(&Value(1)), 2);
        assert_eq!(t.count(&Value(9)), 0);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn plurality_smallest_helper() {
        assert_eq!(plurality_smallest([9u32, 9, 1]), Some(9));
        assert_eq!(plurality_smallest(Vec::<u32>::new()), None);
    }
}
