//! Message envelopes and per-round outboxes.

use crate::id::ProcessId;
use std::sync::Arc;

/// A message in flight: `payload` sent from `from` to `to` during a round.
///
/// The sender identity is trustworthy: the synchronous model (and any
/// point-to-point authenticated-channel network) lets a receiver attribute
/// a message to the link it arrived on. Byzantine processes may send
/// arbitrary payloads, multiple messages per round, or nothing — but they
/// cannot spoof `from`. Payloads are reference-counted so that broadcasting
/// to `n` recipients does not copy the message body `n` times.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender identifier (unforgeable).
    pub from: ProcessId,
    /// Recipient identifier.
    pub to: ProcessId,
    /// Shared message body.
    pub payload: Arc<M>,
}

impl<M> Envelope<M> {
    /// Creates an envelope, wrapping the payload.
    pub fn new(from: ProcessId, to: ProcessId, payload: M) -> Self {
        Envelope {
            from,
            to,
            payload: Arc::new(payload),
        }
    }
}

/// Collects the messages a process sends during one round.
///
/// Obtained inside [`crate::Process::step`]; the runner routes the buffered
/// envelopes for delivery at the next step.
#[derive(Debug)]
pub struct Outbox<M> {
    me: ProcessId,
    n: usize,
    buf: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    /// Creates an outbox for process `me` in a system of `n` processes.
    pub fn new(me: ProcessId, n: usize) -> Self {
        Outbox {
            me,
            n,
            buf: Vec::new(),
        }
    }

    /// Sends `msg` to a single recipient.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        debug_assert!(to.index() < self.n, "recipient {to} out of range");
        self.buf.push(Envelope::new(self.me, to, msg));
    }

    /// Sends `msg` to every process, including the sender itself.
    ///
    /// The paper's pseudocode (`broadcast aᵢ`, "including from itself",
    /// Algorithm 2) assumes self-delivery; message *counting* excludes the
    /// self-copy (see [`crate::RunReport`]).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let payload = Arc::new(msg);
        for to in ProcessId::all(self.n) {
            self.buf.push(Envelope {
                from: self.me,
                to,
                payload: Arc::clone(&payload),
            });
        }
    }

    /// Sends `msg` to every process in `targets`.
    pub fn multicast<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
        M: Clone,
    {
        let payload = Arc::new(msg);
        for to in targets {
            debug_assert!(to.index() < self.n, "recipient {to} out of range");
            self.buf.push(Envelope {
                from: self.me,
                to,
                payload: Arc::clone(&payload),
            });
        }
    }

    /// Number of envelopes buffered so far this round.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no envelope has been buffered this round.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The sending process.
    pub fn sender(&self) -> ProcessId {
        self.me
    }

    /// The system size this outbox addresses.
    pub fn system_size(&self) -> usize {
        self.n
    }

    /// Pushes a pre-built envelope (used by protocol-composition helpers).
    ///
    /// # Panics
    ///
    /// Panics if the envelope's sender is not this outbox's owner: honest
    /// composition layers must not spoof senders any more than the
    /// adversary may.
    pub fn push_envelope(&mut self, env: Envelope<M>) {
        assert_eq!(env.from, self.me, "outbox owner mismatch");
        debug_assert!(env.to.index() < self.n, "recipient {} out of range", env.to);
        self.buf.push(env);
    }

    /// Consumes the outbox, returning the buffered envelopes.
    pub fn into_envelopes(self) -> Vec<Envelope<M>> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_records_addressing() {
        let mut out: Outbox<u32> = Outbox::new(ProcessId(1), 4);
        out.send(ProcessId(3), 42);
        let env = &out.into_envelopes()[0];
        assert_eq!(env.from, ProcessId(1));
        assert_eq!(env.to, ProcessId(3));
        assert_eq!(*env.payload, 42);
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut out: Outbox<&str> = Outbox::new(ProcessId(0), 3);
        out.broadcast("hi");
        let envs = out.into_envelopes();
        let targets: Vec<u32> = envs.iter().map(|e| e.to.0).collect();
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_shares_one_payload_allocation() {
        let mut out: Outbox<String> = Outbox::new(ProcessId(0), 5);
        out.broadcast("shared".to_string());
        let envs = out.into_envelopes();
        // All five envelopes point at the same allocation: 5 strong refs.
        assert_eq!(Arc::strong_count(&envs[0].payload), 5);
    }

    #[test]
    fn multicast_hits_exactly_the_targets() {
        let mut out: Outbox<u8> = Outbox::new(ProcessId(2), 6);
        out.multicast([ProcessId(1), ProcessId(4)], 7);
        let envs = out.into_envelopes();
        assert_eq!(envs.len(), 2);
        assert!(envs.iter().all(|e| *e.payload == 7));
    }

    #[test]
    fn empty_outbox_reports_empty() {
        let out: Outbox<u8> = Outbox::new(ProcessId(0), 2);
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }
}
