//! Helpers for embedding one protocol inside another.
//!
//! Higher-level protocols (the paper's Algorithm 5 and the Algorithm-1
//! wrapper) run sub-protocols in tagged slots: every sub-protocol message
//! travels wrapped in the outer protocol's message enum, carrying the
//! slot tag, so Byzantine replay across slots or phases is inert — an
//! honest process simply never routes a mis-tagged message into a live
//! sub-protocol.
//!
//! The helpers here keep that routing cheap: inner payloads stay behind
//! their `Arc`, and broadcast wrapping reuses one outer allocation per
//! distinct inner payload.

use crate::envelope::{Envelope, Outbox};
use std::sync::Arc;

/// Projects an outer inbox onto a sub-protocol inbox.
///
/// `extract` returns the inner payload for messages addressed to the
/// sub-protocol's slot (and `None` for everything else, which is
/// discarded).
pub fn sub_inbox<M, S>(
    inbox: &[Envelope<M>],
    mut extract: impl FnMut(&M) -> Option<Arc<S>>,
) -> Vec<Envelope<S>> {
    inbox
        .iter()
        .filter_map(|env| {
            extract(&env.payload).map(|payload| Envelope {
                from: env.from,
                to: env.to,
                payload,
            })
        })
        .collect()
}

/// Forwards a sub-protocol's outbox into the outer outbox, wrapping each
/// inner payload with `wrap`.
///
/// Envelopes that share an inner payload (sub-protocol broadcasts) share
/// the outer allocation too.
pub fn forward_sub<S, M>(
    sub_out: Outbox<S>,
    out: &mut Outbox<M>,
    mut wrap: impl FnMut(Arc<S>) -> M,
) {
    let mut cache: Vec<(*const S, Arc<M>)> = Vec::new();
    for env in sub_out.into_envelopes() {
        let key = Arc::as_ptr(&env.payload);
        let outer = match cache.iter().find(|(k, _)| *k == key) {
            Some((_, outer)) => Arc::clone(outer),
            None => {
                let outer = Arc::new(wrap(Arc::clone(&env.payload)));
                cache.push((key, Arc::clone(&outer)));
                outer
            }
        };
        out.push_envelope(Envelope {
            from: env.from,
            to: env.to,
            payload: outer,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;

    #[derive(Clone, Debug, PartialEq)]
    enum Outer {
        A(Arc<u32>),
        B(Arc<u32>),
    }

    #[test]
    fn sub_inbox_filters_and_unwraps() {
        let inbox = vec![
            Envelope::new(ProcessId(0), ProcessId(1), Outer::A(Arc::new(10))),
            Envelope::new(ProcessId(2), ProcessId(1), Outer::B(Arc::new(20))),
        ];
        let sub = sub_inbox(&inbox, |m| match m {
            Outer::A(x) => Some(Arc::clone(x)),
            Outer::B(_) => None,
        });
        assert_eq!(sub.len(), 1);
        assert_eq!(*sub[0].payload, 10);
        assert_eq!(sub[0].from, ProcessId(0));
    }

    #[test]
    fn forward_sub_wraps_and_shares_allocations() {
        let mut sub: Outbox<u32> = Outbox::new(ProcessId(0), 3);
        sub.broadcast(7);
        let mut out: Outbox<Outer> = Outbox::new(ProcessId(0), 3);
        forward_sub(sub, &mut out, Outer::A);
        let envs = out.into_envelopes();
        assert_eq!(envs.len(), 3);
        // One outer allocation shared by all three envelopes.
        assert!(envs
            .windows(2)
            .all(|w| Arc::ptr_eq(&w[0].payload, &w[1].payload)));
        assert!(matches!(&*envs[0].payload, Outer::A(x) if **x == 7));
    }

    #[test]
    fn forward_sub_distinguishes_distinct_payloads() {
        let mut sub: Outbox<u32> = Outbox::new(ProcessId(1), 4);
        sub.send(ProcessId(0), 1);
        sub.send(ProcessId(2), 2);
        let mut out: Outbox<Outer> = Outbox::new(ProcessId(1), 4);
        forward_sub(sub, &mut out, Outer::B);
        let envs = out.into_envelopes();
        assert!(matches!(&*envs[0].payload, Outer::B(x) if **x == 1));
        assert!(matches!(&*envs[1].payload, Outer::B(x) if **x == 2));
    }
}
