//! The protocol state-machine trait driven by the runner.

use crate::envelope::{Envelope, Outbox};
use crate::wire::WireSize;

/// A deterministic synchronous protocol state machine for one process.
///
/// The runner calls [`step`](Process::step) once per round with the
/// messages received since the previous step; implementations update state
/// and queue outgoing messages. A protocol that has produced its result
/// reports it through [`output`](Process::output); once it additionally has
/// no further role to play (it will never send again) it reports
/// [`halted`](Process::halted) and the runner stops scheduling it.
///
/// `output` and `halted` are deliberately separate: in the paper's wrapper
/// (Algorithm 1) a process *decides* in some phase but keeps participating
/// for one more phase so that slower processes can also decide — i.e. it
/// has an output long before it halts.
pub trait Process {
    /// Message type exchanged by this protocol. The [`WireSize`] bound
    /// lets the runner charge every run its communication cost in bytes
    /// as well as messages, uniformly across protocol families.
    type Msg: Clone + WireSize;
    /// Result produced by this protocol.
    type Output: Clone;

    /// Advances one synchronous round.
    ///
    /// `round` counts `0, 1, 2, …`; `inbox` holds the envelopes addressed
    /// to this process that were sent during round `round − 1` (empty at
    /// round 0), sorted by sender identifier (stable for equal senders).
    fn step(&mut self, round: u64, inbox: &[Envelope<Self::Msg>], out: &mut Outbox<Self::Msg>);

    /// The decision, once reached.
    fn output(&self) -> Option<Self::Output>;

    /// True once this process will never send another message.
    fn halted(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;

    /// A process that counts rounds and stops after a fixed number.
    struct Countdown {
        left: u64,
    }

    impl Process for Countdown {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, _round: u64, _inbox: &[Envelope<()>], _out: &mut Outbox<()>) {
            self.left = self.left.saturating_sub(1);
        }
        fn output(&self) -> Option<u64> {
            (self.left == 0).then_some(0)
        }
        fn halted(&self) -> bool {
            self.left == 0
        }
    }

    #[test]
    fn trait_is_usable_as_a_plain_state_machine() {
        let mut p = Countdown { left: 2 };
        let mut out = Outbox::new(ProcessId(0), 1);
        assert!(p.output().is_none());
        p.step(0, &[], &mut out);
        assert!(!p.halted());
        p.step(1, &[], &mut out);
        assert!(p.halted());
        assert_eq!(p.output(), Some(0));
    }
}
