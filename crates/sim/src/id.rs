//! Core identifier and value newtypes shared by every protocol crate.

use std::fmt;

/// Identifier of a process in a system of `n` processes.
///
/// Identifiers are `0 ..= n-1`. The paper (§3) numbers processes `p1 … pn`;
/// we use zero-based indices throughout and translate the paper's
/// positional lemmas accordingly (documented where it matters, e.g. in
/// `ba-core`'s ordering module).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all identifiers of a system of `n` processes.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n as u32).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// A proposal / decision value.
///
/// The paper's agreement protocols require only an ordered, hashable value
/// domain (ties are broken toward the smallest value, and conciliation
/// takes minima). A `u64` payload keeps the simulator fast while remaining
/// general: applications can hash arbitrary proposals into it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_ordering_follows_numeric_order() {
        let ids: Vec<ProcessId> = ProcessId::all(5).collect();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn process_id_display_and_debug() {
        assert_eq!(format!("{}", ProcessId(7)), "p7");
        assert_eq!(format!("{:?}", ProcessId(7)), "p7");
    }

    #[test]
    fn value_ordering_and_conversion() {
        let a: Value = 3u64.into();
        let b = Value(9);
        assert!(a < b);
        assert_eq!(format!("{a}"), "v3");
    }

    #[test]
    fn ids_usable_in_ordered_sets() {
        let set: BTreeSet<ProcessId> = [2u32, 0, 1].into_iter().map(ProcessId).collect();
        let ordered: Vec<u32> = set.into_iter().map(|p| p.0).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }
}
