//! # ba-sim — deterministic synchronous simulator
//!
//! This crate is the network substrate for the *Byzantine Agreement with
//! Predictions* reproduction. It models the paper's system (§3): `n`
//! processes connected by a synchronous network, executing in lockstep
//! rounds; up to `t` processes are Byzantine and controlled by a single
//! *rushing* adversary that, in every round, observes the messages sent by
//! honest processes before choosing its own.
//!
//! Design goals, in priority order:
//!
//! 1. **Determinism.** A run is a pure function of `(processes, adversary,
//!    seed)`. All randomness flows through seeded `rand` generators. This
//!    is what makes property-based protocol testing trustworthy.
//! 2. **Faithful accounting.** The paper's complexity measures are *rounds
//!    until the last honest process decides* and *messages sent by honest
//!    processes*. [`Runner`] tracks both exactly (a broadcast counts as one
//!    message per distinct remote recipient, matching the paper's
//!    "broadcasting twice costs `2n` messages" convention).
//! 3. **Composability.** Protocols implement [`Process`]; higher-level
//!    protocols embed lower-level ones as plain struct fields and translate
//!    message types explicitly, which keeps Byzantine cross-instance replay
//!    visible in the type system.
//!
//! ## Round semantics
//!
//! `step(r, inbox, out)` is called once per round `r = 0, 1, 2, …`:
//! `inbox` contains every message sent *to* this process during round
//! `r − 1` (empty at `r = 0`), and messages pushed into `out` are delivered
//! at step `r + 1`. A "`d`-round protocol" in the paper's counting sends
//! messages during steps `0 … d−1` and produces its output at step `d`.
//!
//! ## Example
//!
//! ```
//! use ba_sim::{Envelope, Outbox, Process, ProcessId, Runner, SilentAdversary, Value};
//!
//! /// Every process broadcasts its value once, then outputs the smallest
//! /// value heard (including its own).
//! struct MinEcho { me: ProcessId, n: usize, mine: Value, out: Option<Value> }
//!
//! impl Process for MinEcho {
//!     type Msg = Value;
//!     type Output = Value;
//!     fn step(&mut self, round: u64, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
//!         match round {
//!             0 => out.broadcast(self.mine),
//!             _ => {
//!                 let min = inbox.iter().map(|e| *e.payload).min();
//!                 self.out = Some(min.map_or(self.mine, |m| m.min(self.mine)));
//!             }
//!         }
//!     }
//!     fn output(&self) -> Option<Value> { self.out }
//!     fn halted(&self) -> bool { self.out.is_some() }
//! }
//!
//! let n = 4;
//! let procs: Vec<MinEcho> = (0..n)
//!     .map(|i| MinEcho { me: ProcessId(i as u32), n, mine: Value(i as u64 + 10), out: None })
//!     .collect();
//! let mut runner = Runner::new(n, procs, SilentAdversary::default());
//! let report = runner.run(16);
//! assert!(report.all_decided());
//! assert_eq!(report.outputs[&ProcessId(0)], Value(10));
//! ```

mod adversary;
mod compose;
mod envelope;
pub mod erased;
mod id;
mod multiset;
mod process;
mod runner;
mod wire;

pub use adversary::{
    Adversary, AdversaryCtx, ComposeAdversary, CrashAdversary, FnAdversary, ReplayAdversary,
    SilentAdversary,
};
pub use compose::{forward_sub, sub_inbox};
pub use envelope::{Envelope, Outbox};
pub use erased::{erase, ErasedSession, MapOutput};
pub use id::{ProcessId, Value};
pub use multiset::{count_distinct_senders, distinct_values_by_sender, plurality_smallest, Tally};
pub use process::Process;
pub use runner::{RoundTrace, RunReport, Runner};
pub use wire::WireSize;
