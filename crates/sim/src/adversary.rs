//! The Byzantine adversary interface and generic attack strategies.
//!
//! One adversary object controls *all* faulty processes, reflecting the
//! standard worst-case model: corruptions coordinate perfectly. The
//! adversary is **rushing** — each round it sees every honest message of
//! that round before emitting its own — and it may send any payload from
//! any corrupted identity to any recipient (sender identities are
//! unforgeable; see [`crate::Envelope`]).
//!
//! Protocol-specific attacks (equivocators, chain withholders, vote liars,
//! …) live in `ba-workloads`; this module provides the trait plus the
//! protocol-agnostic strategies used across the test suites.

use crate::envelope::Envelope;
use crate::id::ProcessId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything the adversary can see and do in one round.
pub struct AdversaryCtx<'a, M> {
    /// Current round number.
    pub round: u64,
    /// Total number of processes.
    pub n: usize,
    /// Identifiers controlled by the adversary.
    pub corrupted: &'a BTreeSet<ProcessId>,
    /// All messages emitted by honest processes *this* round
    /// (rushing visibility).
    pub honest_traffic: &'a [Envelope<M>],
    /// Messages delivered to each corrupted process at the start of this
    /// round (i.e. sent during the previous round).
    pub faulty_inboxes: &'a BTreeMap<ProcessId, Vec<Envelope<M>>>,
    pub(crate) outgoing: Vec<Envelope<M>>,
}

impl<'a, M> AdversaryCtx<'a, M> {
    /// Sends `msg` from corrupted process `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupted: the simulator enforces that the
    /// adversary cannot spoof honest senders.
    pub fn send(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        assert!(
            self.corrupted.contains(&from),
            "adversary attempted to spoof honest sender {from}"
        );
        self.outgoing.push(Envelope::new(from, to, msg));
    }

    /// Sends `msg` from corrupted `from` to every process.
    pub fn broadcast(&mut self, from: ProcessId, msg: M)
    where
        M: Clone,
    {
        assert!(
            self.corrupted.contains(&from),
            "adversary attempted to spoof honest sender {from}"
        );
        let payload = Arc::new(msg);
        for to in ProcessId::all(self.n) {
            self.outgoing.push(Envelope {
                from,
                to,
                payload: Arc::clone(&payload),
            });
        }
    }

    /// Re-sends an observed payload (e.g. an honest message body) from a
    /// corrupted identity — the strongest replay the model permits.
    pub fn replay(&mut self, from: ProcessId, to: ProcessId, payload: Arc<M>) {
        assert!(
            self.corrupted.contains(&from),
            "adversary attempted to spoof honest sender {from}"
        );
        self.outgoing.push(Envelope { from, to, payload });
    }

    /// Convenience view of the honest messages addressed to `to` this
    /// round (what a rushing adversary reads before acting).
    pub fn honest_to(&self, to: ProcessId) -> impl Iterator<Item = &Envelope<M>> {
        self.honest_traffic.iter().filter(move |e| e.to == to)
    }
}

/// A coordinated Byzantine strategy for all corrupted processes.
pub trait Adversary<M> {
    /// Produces this round's faulty traffic given full rushing visibility.
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>);
}

impl<M, A: Adversary<M> + ?Sized> Adversary<M> for Box<A> {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        (**self).act(ctx)
    }
}

/// Faulty processes send nothing at all (equivalently: they crashed before
/// the execution started). The weakest adversary; also the baseline for
/// message-count comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentAdversary;

impl<M> Adversary<M> for SilentAdversary {
    fn act(&mut self, _ctx: &mut AdversaryCtx<'_, M>) {}
}

/// Faulty processes behave honestly until `crash_round`, then go silent —
/// optionally mid-broadcast: in the crash round each faulty process
/// delivers its pending honest messages only to recipients with identifier
/// below `partial_cutoff`.
///
/// This adversary needs an "honest template" to imitate; callers supply a
/// closure producing the honest traffic each round via [`FnAdversary`] in
/// protocol crates. At the `ba-sim` layer, `CrashAdversary` simply drops
/// everything from `crash_round` onward and is combined with replaying
/// strategies in higher-level crates.
#[derive(Clone, Debug)]
pub struct CrashAdversary<A> {
    inner: A,
    crash_round: u64,
    partial_cutoff: u32,
}

impl<A> CrashAdversary<A> {
    /// Wraps `inner`, suppressing all its traffic from `crash_round`
    /// onward; in the crash round itself, messages to identifiers
    /// `>= partial_cutoff` are dropped (a mid-broadcast crash).
    pub fn new(inner: A, crash_round: u64, partial_cutoff: u32) -> Self {
        CrashAdversary {
            inner,
            crash_round,
            partial_cutoff,
        }
    }
}

impl<M, A: Adversary<M>> Adversary<M> for CrashAdversary<A> {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        if ctx.round > self.crash_round {
            return;
        }
        self.inner.act(ctx);
        if ctx.round == self.crash_round {
            let cutoff = self.partial_cutoff;
            ctx.outgoing.retain(|e| e.to.0 < cutoff);
        }
    }
}

/// An adversary defined by a closure — the workhorse for targeted,
/// protocol-specific attacks in tests.
pub struct FnAdversary<F> {
    f: F,
}

impl<F> FnAdversary<F> {
    /// Wraps `f` as an adversary.
    pub fn new(f: F) -> Self {
        FnAdversary { f }
    }
}

impl<M, F> Adversary<M> for FnAdversary<F>
where
    F: FnMut(&mut AdversaryCtx<'_, M>),
{
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        (self.f)(ctx)
    }
}

/// Replays honest payloads observed in earlier rounds from corrupted
/// identities, to every process, shifted by `delay` rounds. Exercises
/// protocols' session/round tagging: correctly-tagged protocols must treat
/// replayed traffic as noise.
#[derive(Debug)]
pub struct ReplayAdversary<M> {
    delay: usize,
    history: Vec<Vec<Arc<M>>>,
}

impl<M> ReplayAdversary<M> {
    /// Creates a replayer with the given round delay (≥ 1).
    pub fn new(delay: usize) -> Self {
        assert!(delay >= 1, "replay delay must be at least one round");
        ReplayAdversary {
            delay,
            history: Vec::new(),
        }
    }
}

impl<M: Clone> Adversary<M> for ReplayAdversary<M> {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        let observed: Vec<Arc<M>> = ctx
            .honest_traffic
            .iter()
            .map(|e| Arc::clone(&e.payload))
            .collect();
        self.history.push(observed);
        let idx = match self.history.len().checked_sub(self.delay + 1) {
            Some(i) => i,
            None => return,
        };
        let stale: Vec<Arc<M>> = self.history[idx].clone();
        let faulty: Vec<ProcessId> = ctx.corrupted.iter().copied().collect();
        if faulty.is_empty() {
            return;
        }
        for (k, payload) in stale.into_iter().enumerate() {
            let from = faulty[k % faulty.len()];
            for to in ProcessId::all(ctx.n) {
                ctx.replay(from, to, Arc::clone(&payload));
            }
        }
    }
}

/// Runs two adversarial behaviours in sequence each round (e.g. replay
/// plus targeted equivocation).
#[derive(Clone, Debug, Default)]
pub struct ComposeAdversary<A, B> {
    first: A,
    second: B,
}

impl<A, B> ComposeAdversary<A, B> {
    /// Composes `first` then `second`.
    pub fn new(first: A, second: B) -> Self {
        ComposeAdversary { first, second }
    }
}

impl<M, A: Adversary<M>, B: Adversary<M>> Adversary<M> for ComposeAdversary<A, B> {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        self.first.act(ctx);
        self.second.act(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture<'a>(
        corrupted: &'a BTreeSet<ProcessId>,
        honest: &'a [Envelope<u32>],
        inboxes: &'a BTreeMap<ProcessId, Vec<Envelope<u32>>>,
    ) -> AdversaryCtx<'a, u32> {
        AdversaryCtx {
            round: 3,
            n: 4,
            corrupted,
            honest_traffic: honest,
            faulty_inboxes: inboxes,
            outgoing: Vec::new(),
        }
    }

    #[test]
    fn adversary_can_send_only_from_corrupted_ids() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let inboxes = BTreeMap::new();
        let mut ctx = ctx_fixture(&corrupted, &[], &inboxes);
        ctx.send(ProcessId(3), ProcessId(0), 99);
        assert_eq!(ctx.outgoing.len(), 1);
    }

    #[test]
    #[should_panic(expected = "spoof")]
    fn spoofing_honest_sender_panics() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let inboxes = BTreeMap::new();
        let mut ctx = ctx_fixture(&corrupted, &[], &inboxes);
        ctx.send(ProcessId(0), ProcessId(1), 1);
    }

    #[test]
    fn rushing_visibility_filters_by_recipient() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let honest = vec![
            Envelope::new(ProcessId(0), ProcessId(1), 10u32),
            Envelope::new(ProcessId(0), ProcessId(2), 20u32),
        ];
        let inboxes = BTreeMap::new();
        let ctx = ctx_fixture(&corrupted, &honest, &inboxes);
        let seen: Vec<u32> = ctx.honest_to(ProcessId(2)).map(|e| *e.payload).collect();
        assert_eq!(seen, vec![20]);
    }

    #[test]
    fn crash_adversary_truncates_mid_broadcast() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let inboxes = BTreeMap::new();
        let inner = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, u32>| {
            ctx.broadcast(ProcessId(3), 5);
        });
        let mut crash = CrashAdversary::new(inner, 3, 2);
        let mut ctx = ctx_fixture(&corrupted, &[], &inboxes);
        crash.act(&mut ctx);
        // Broadcast to n=4, truncated to recipients {0, 1}.
        assert_eq!(ctx.outgoing.len(), 2);
        assert!(ctx.outgoing.iter().all(|e| e.to.0 < 2));
    }

    #[test]
    fn crash_adversary_is_silent_after_crash() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let inboxes = BTreeMap::new();
        let inner = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, u32>| {
            ctx.broadcast(ProcessId(3), 5);
        });
        let mut crash = CrashAdversary::new(inner, 2, 4);
        let mut ctx = ctx_fixture(&corrupted, &[], &inboxes);
        ctx.round = 3;
        crash.act(&mut ctx);
        assert!(ctx.outgoing.is_empty());
    }

    #[test]
    fn replay_adversary_resends_old_honest_payloads() {
        let corrupted: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        let inboxes = BTreeMap::new();
        let mut replayer: ReplayAdversary<u32> = ReplayAdversary::new(1);

        let honest_r0 = vec![Envelope::new(ProcessId(0), ProcessId(1), 77u32)];
        let mut ctx0 = ctx_fixture(&corrupted, &honest_r0, &inboxes);
        ctx0.round = 0;
        replayer.act(&mut ctx0);
        assert!(ctx0.outgoing.is_empty(), "nothing old to replay yet");

        let mut ctx1 = ctx_fixture(&corrupted, &[], &inboxes);
        ctx1.round = 1;
        replayer.act(&mut ctx1);
        assert_eq!(ctx1.outgoing.len(), 4, "payload replayed to all n = 4");
        assert!(ctx1.outgoing.iter().all(|e| *e.payload == 77));
        assert!(ctx1.outgoing.iter().all(|e| e.from == ProcessId(3)));
    }
}
