//! Lockstep execution engine with complexity instrumentation.

use crate::adversary::{Adversary, AdversaryCtx};
use crate::envelope::{Envelope, Outbox};
use crate::id::ProcessId;
use crate::process::Process;
use crate::wire::WireSize;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-round accounting, retained for the whole run.
#[derive(Clone, Debug, Default)]
pub struct RoundTrace {
    /// Messages sent by honest processes this round (self-copies excluded).
    pub honest_messages: u64,
    /// Messages sent by faulty processes this round (self-copies excluded).
    pub faulty_messages: u64,
    /// Bytes sent by honest processes this round ([`WireSize`] of every
    /// remote envelope's payload).
    pub honest_bytes: u64,
    /// Bytes sent by faulty processes this round.
    pub faulty_bytes: u64,
}

/// Sums the remote envelopes of one sender's traffic as `(messages,
/// bytes)`, memoizing sizes per shared payload so a broadcast's body is
/// measured once rather than once per recipient.
fn remote_cost<M: WireSize>(envs: &[Envelope<M>]) -> (u64, u64) {
    let mut messages = 0;
    let mut bytes = 0;
    let mut sizes: Vec<(*const M, u64)> = Vec::new();
    for env in envs {
        if env.to == env.from {
            continue;
        }
        messages += 1;
        let key = Arc::as_ptr(&env.payload);
        let size = match sizes.iter().find(|(k, _)| *k == key) {
            Some((_, s)) => *s,
            None => {
                let s = env.payload.wire_bytes();
                sizes.push((key, s));
                s
            }
        };
        bytes += size;
    }
    (messages, bytes)
}

/// The outcome and cost profile of one synchronous execution.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Number of honest processes.
    pub honest_count: usize,
    /// Decision of each honest process that produced one.
    pub outputs: BTreeMap<ProcessId, O>,
    /// Round at which each honest process first reported an output.
    pub decision_round: BTreeMap<ProcessId, u64>,
    /// Round at which the *last* honest process decided — the paper's time
    /// complexity measure — if all of them did.
    pub last_decision_round: Option<u64>,
    /// Total messages sent by honest processes over the run (self-copies
    /// excluded) — the paper's message complexity measure.
    pub honest_messages: u64,
    /// Messages sent by honest processes up to and including the round in
    /// which the last honest process decided (the paper counts messages
    /// "up until they decide").
    pub honest_messages_until_decision: u64,
    /// Total bytes sent by honest processes over the run (self-copies
    /// excluded) — the communication complexity measure of the
    /// communication-efficient follow-up work.
    pub honest_bytes: u64,
    /// Bytes sent by honest processes up to and including the round of
    /// the last honest decision (mirrors
    /// [`honest_messages_until_decision`](Self::honest_messages_until_decision)).
    pub honest_bytes_until_decision: u64,
    /// Per-process message counts (self-copies excluded).
    pub messages_per_process: BTreeMap<ProcessId, u64>,
    /// Per-round traces.
    pub rounds: Vec<RoundTrace>,
    /// Rounds actually executed.
    pub rounds_executed: u64,
}

impl<O: Clone + Eq> RunReport<O> {
    /// Whether every honest process produced an output.
    pub fn all_decided(&self) -> bool {
        self.outputs.len() == self.honest_count
    }

    /// Whether every honest process decided, and on the same value
    /// (the paper's Agreement property).
    pub fn agreement(&self) -> bool {
        if !self.all_decided() {
            return false;
        }
        let mut it = self.outputs.values();
        match it.next() {
            None => true,
            Some(first) => it.all(|o| o == first),
        }
    }

    /// The common decision, if agreement holds.
    pub fn decision(&self) -> Option<&O> {
        if self.agreement() {
            self.outputs.values().next()
        } else {
            None
        }
    }
}

/// Drives honest processes and one adversary in lockstep rounds.
///
/// Honest processes are stepped in identifier order; the adversary then
/// acts with full visibility of the round's honest traffic (rushing).
/// All round-`r` traffic is delivered, sorted by sender, as the step-`r+1`
/// inboxes.
pub struct Runner<P: Process, A> {
    n: usize,
    honest: BTreeMap<ProcessId, P>,
    adversary: A,
    corrupted: BTreeSet<ProcessId>,
    inboxes: BTreeMap<ProcessId, Vec<Envelope<P::Msg>>>,
    round: u64,
    report: RunReport<P::Output>,
}

impl<P, A> Runner<P, A>
where
    P: Process,
    A: Adversary<P::Msg>,
{
    /// Creates a runner for a fully honest system: `honest` are assigned
    /// identifiers `0 ..` in order; the adversary controls the remaining
    /// identifiers `honest.len() .. n`.
    ///
    /// For arbitrary corruption patterns use [`Runner::with_ids`].
    pub fn new<I>(n: usize, honest: I, adversary: A) -> Self
    where
        I: IntoIterator<Item = P>,
    {
        let honest: BTreeMap<ProcessId, P> = honest
            .into_iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i as u32), p))
            .collect();
        let corrupted: BTreeSet<ProcessId> = ProcessId::all(n)
            .filter(|id| !honest.contains_key(id))
            .collect();
        Self::with_parts(n, honest, corrupted, adversary)
    }

    /// Creates a runner with an explicit honest-process map; every
    /// identifier in `0..n` absent from the map is corrupted.
    pub fn with_ids(n: usize, honest: BTreeMap<ProcessId, P>, adversary: A) -> Self {
        let corrupted: BTreeSet<ProcessId> = ProcessId::all(n)
            .filter(|id| !honest.contains_key(id))
            .collect();
        Self::with_parts(n, honest, corrupted, adversary)
    }

    fn with_parts(
        n: usize,
        honest: BTreeMap<ProcessId, P>,
        corrupted: BTreeSet<ProcessId>,
        adversary: A,
    ) -> Self {
        assert!(n >= 1, "a system needs at least one process");
        assert!(
            honest.keys().all(|id| id.index() < n),
            "honest identifier out of range"
        );
        let honest_count = honest.len();
        Runner {
            n,
            honest,
            adversary,
            corrupted,
            inboxes: BTreeMap::new(),
            round: 0,
            report: RunReport {
                honest_count,
                outputs: BTreeMap::new(),
                decision_round: BTreeMap::new(),
                last_decision_round: None,
                honest_messages: 0,
                honest_messages_until_decision: 0,
                honest_bytes: 0,
                honest_bytes_until_decision: 0,
                messages_per_process: BTreeMap::new(),
                rounds: Vec::new(),
                rounds_executed: 0,
            },
        }
    }

    /// Identifiers the adversary controls.
    pub fn corrupted(&self) -> &BTreeSet<ProcessId> {
        &self.corrupted
    }

    /// Executes one synchronous round. Returns `true` while any honest
    /// process is still participating.
    pub fn step(&mut self) -> bool {
        let round = self.round;
        let mut trace = RoundTrace::default();
        let mut honest_traffic: Vec<Envelope<P::Msg>> = Vec::new();

        for (&id, proc) in self.honest.iter_mut() {
            if proc.halted() {
                continue;
            }
            let inbox = self.inboxes.remove(&id).unwrap_or_default();
            let mut out = Outbox::new(id, self.n);
            proc.step(round, &inbox, &mut out);
            let envs = out.into_envelopes();
            let (remote, bytes) = remote_cost(&envs);
            trace.honest_messages += remote;
            trace.honest_bytes += bytes;
            *self.report.messages_per_process.entry(id).or_insert(0) += remote;
            honest_traffic.extend(envs);

            if let Some(o) = proc.output() {
                self.report.outputs.entry(id).or_insert(o);
                self.report.decision_round.entry(id).or_insert(round);
            }
        }

        // Rushing adversary: acts after seeing this round's honest traffic.
        let faulty_inboxes: BTreeMap<ProcessId, Vec<Envelope<P::Msg>>> = self
            .corrupted
            .iter()
            .map(|&id| (id, self.inboxes.remove(&id).unwrap_or_default()))
            .collect();
        let mut ctx = AdversaryCtx {
            round,
            n: self.n,
            corrupted: &self.corrupted,
            honest_traffic: &honest_traffic,
            faulty_inboxes: &faulty_inboxes,
            outgoing: Vec::new(),
        };
        self.adversary.act(&mut ctx);
        let faulty_traffic = ctx.outgoing;
        let (faulty_messages, faulty_bytes) = remote_cost(&faulty_traffic);
        trace.faulty_messages += faulty_messages;
        trace.faulty_bytes += faulty_bytes;

        self.report.honest_messages += trace.honest_messages;
        self.report.honest_bytes += trace.honest_bytes;
        if self.report.outputs.len() < self.report.honest_count {
            self.report.honest_messages_until_decision = self.report.honest_messages;
            self.report.honest_bytes_until_decision = self.report.honest_bytes;
        }

        // Route all round-`round` traffic into step-`round+1` inboxes,
        // sorted by sender (stable within one sender).
        let mut all = honest_traffic;
        all.extend(faulty_traffic);
        all.sort_by_key(|e| e.from);
        self.inboxes.clear();
        for env in all {
            self.inboxes.entry(env.to).or_default().push(env);
        }

        self.report.rounds.push(trace);
        self.round += 1;
        self.report.rounds_executed = self.round;

        if self.report.outputs.len() == self.report.honest_count
            && self.report.last_decision_round.is_none()
        {
            self.report.last_decision_round = self.report.decision_round.values().copied().max();
        }

        self.honest.values().any(|p| !p.halted())
    }

    /// Runs until every honest process halts or `max_rounds` is reached,
    /// returning the report.
    pub fn run(&mut self, max_rounds: u64) -> RunReport<P::Output>
    where
        P::Output: Clone,
    {
        for _ in 0..max_rounds {
            if !self.step() {
                break;
            }
        }
        self.report.clone()
    }

    /// Read access to an honest process (for white-box assertions in
    /// tests).
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.honest.get(&id)
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RunReport<P::Output> {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FnAdversary, SilentAdversary};
    use crate::id::Value;

    /// Echo-min protocol used across runner tests: broadcast once, then
    /// output the minimum value heard.
    struct MinEcho {
        mine: Value,
        out: Option<Value>,
    }

    impl Process for MinEcho {
        type Msg = Value;
        type Output = Value;
        fn step(&mut self, round: u64, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            match round {
                0 => out.broadcast(self.mine),
                1 => {
                    let min = inbox.iter().map(|e| *e.payload).min().unwrap_or(self.mine);
                    self.out = Some(min.min(self.mine));
                }
                _ => {}
            }
        }
        fn output(&self) -> Option<Value> {
            self.out
        }
        fn halted(&self) -> bool {
            self.out.is_some()
        }
    }

    fn min_echo_system(_n: usize, honest: usize) -> Vec<MinEcho> {
        (0..honest)
            .map(|i| MinEcho {
                mine: Value(100 + i as u64),
                out: None,
            })
            .collect()
    }

    #[test]
    fn all_honest_reach_min_in_two_rounds() {
        let n = 5;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(100)));
        assert_eq!(report.last_decision_round, Some(1));
    }

    #[test]
    fn honest_message_count_excludes_self_copies() {
        let n = 4;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        // Each of 4 processes broadcasts once: 3 remote copies each.
        assert_eq!(report.honest_messages, 12);
        assert!(report.messages_per_process.values().all(|&c| c == 3));
    }

    #[test]
    fn honest_byte_count_charges_payload_sizes() {
        let n = 4;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        // 12 remote Value envelopes at 8 bytes each.
        assert_eq!(report.honest_bytes, 96);
        assert_eq!(report.rounds[0].honest_bytes, 96);
        assert!(report.rounds.iter().skip(1).all(|t| t.honest_bytes == 0));
    }

    #[test]
    fn bytes_until_decision_freeze_with_messages() {
        let n = 5;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        assert_eq!(
            report.honest_bytes_until_decision,
            report.honest_messages_until_decision * 8,
            "every MinEcho payload is one 8-byte Value"
        );
        assert!(report.honest_bytes_until_decision <= report.honest_bytes);
    }

    #[test]
    fn faulty_traffic_counted_separately() {
        let n = 4;
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, Value>| {
            if ctx.round == 0 {
                ctx.broadcast(ProcessId(3), Value(1));
            }
        });
        let mut runner = Runner::new(n, min_echo_system(n, 3), adv);
        let report = runner.run(10);
        assert_eq!(report.rounds[0].faulty_messages, 3);
        // The faulty minimum wins: honest processes adopt Value(1).
        assert_eq!(report.decision(), Some(&Value(1)));
    }

    #[test]
    fn adversary_sees_honest_traffic_before_acting() {
        let n = 3;
        // The adversary echoes (min honest value - 1) in the same round it
        // observes the broadcasts — only a rushing adversary can do this.
        let adv = FnAdversary::new(|ctx: &mut AdversaryCtx<'_, Value>| {
            if ctx.round == 0 {
                let min = ctx
                    .honest_traffic
                    .iter()
                    .map(|e| *e.payload)
                    .min()
                    .expect("rushing adversary must see round-0 honest traffic");
                ctx.broadcast(ProcessId(2), Value(min.0 - 50));
            }
        });
        let mut runner = Runner::new(n, min_echo_system(n, 2), adv);
        let report = runner.run(10);
        assert_eq!(report.decision(), Some(&Value(50)));
    }

    #[test]
    fn runner_stops_at_max_rounds_without_outputs() {
        struct Forever;
        impl Process for Forever {
            type Msg = ();
            type Output = ();
            fn step(&mut self, _r: u64, _i: &[Envelope<()>], _o: &mut Outbox<()>) {}
            fn output(&self) -> Option<()> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let mut runner = Runner::new(2, vec![Forever, Forever], SilentAdversary);
        let report = runner.run(7);
        assert_eq!(report.rounds_executed, 7);
        assert!(!report.all_decided());
        assert!(report.last_decision_round.is_none());
    }

    #[test]
    fn corrupted_set_is_the_complement_of_honest_ids() {
        let runner: Runner<MinEcho, SilentAdversary> =
            Runner::new(5, min_echo_system(5, 3), SilentAdversary);
        let corrupted: Vec<u32> = runner.corrupted().iter().map(|p| p.0).collect();
        assert_eq!(corrupted, vec![3, 4]);
    }

    #[test]
    fn with_ids_supports_arbitrary_corruption_patterns() {
        let mut honest = BTreeMap::new();
        honest.insert(
            ProcessId(0),
            MinEcho {
                mine: Value(5),
                out: None,
            },
        );
        honest.insert(
            ProcessId(2),
            MinEcho {
                mine: Value(6),
                out: None,
            },
        );
        let runner: Runner<MinEcho, SilentAdversary> = Runner::with_ids(4, honest, SilentAdversary);
        let corrupted: Vec<u32> = runner.corrupted().iter().map(|p| p.0).collect();
        assert_eq!(corrupted, vec![1, 3]);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let mut runner = Runner::new(6, min_echo_system(6, 4), SilentAdversary);
            let r = runner.run(10);
            (r.honest_messages, r.last_decision_round, r.rounds_executed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn decision_round_recorded_per_process() {
        let n = 3;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        assert_eq!(report.decision_round.len(), 3);
        assert!(report.decision_round.values().all(|&r| r == 1));
    }

    #[test]
    fn halted_processes_stop_consuming_and_sending() {
        let n = 3;
        let mut runner = Runner::new(n, min_echo_system(n, n), SilentAdversary);
        let report = runner.run(10);
        // Protocol halts after round 1; no honest messages afterwards.
        assert!(report.rounds.iter().skip(1).all(|t| t.honest_messages == 0));
        assert!(report.rounds_executed <= 3);
    }
}
