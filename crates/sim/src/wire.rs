//! Wire-size accounting: how many bytes a message costs on the network.
//!
//! The paper family measures two complexities: rounds and
//! *communication*. Message counts alone hide a real asymmetry — a
//! phase-king vote is one `Value`, while a Dolev–Strong batch carries
//! `O(n)` signature chains — so the runner also charges each message its
//! serialized size. [`WireSize`] defines that size: a deterministic,
//! implementation-independent byte count mirroring the obvious
//! length-prefixed binary encoding (fixed-width integers, a 4-byte
//! length prefix per collection, a 1-byte discriminant per enum).
//!
//! Every [`crate::Process::Msg`] type must implement it; compound
//! messages compose the impls of their parts, so the accounting stays
//! consistent across protocol layers (a wrapped sub-protocol payload
//! costs its inner size plus the wrapper's framing).
//!
//! ## The signature byte model
//!
//! Authenticated traffic follows the same composition rule. A
//! signature (`ba_crypto::Signature`) costs a fixed **20 bytes** — a
//! 4-byte signer id plus the 16-byte truncated MAC tag — and a signed
//! envelope (`ba_crypto::Signed<M>`) costs its body plus those 20
//! bytes, nothing more. Consequently every signed pipeline message is
//! *exactly* its unsigned counterpart plus 20 bytes per carried
//! signature (asserted by the conformance suite), and
//! certificate-carrying messages price each embedded acknowledgement
//! at body + 20 — which is why the signed certify echo costs
//! `O(n³)` bytes: `n` broadcasts to `n` recipients of an `(n − t)`-signature proof.

use crate::id::{ProcessId, Value};
use std::sync::Arc;

/// The serialized size of a message, in bytes.
///
/// Sizes are a *model* of a canonical binary encoding, not of Rust's
/// in-memory layout: `Arc<M>` costs what `M` costs (the network copies
/// the body, not the pointer), a `Vec` adds a 4-byte length prefix, an
/// enum adds a 1-byte discriminant.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> u64;
}

impl WireSize for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

impl WireSize for bool {
    fn wire_bytes(&self) -> u64 {
        1
    }
}

impl WireSize for u8 {
    fn wire_bytes(&self) -> u64 {
        1
    }
}

impl WireSize for u16 {
    fn wire_bytes(&self) -> u64 {
        2
    }
}

impl WireSize for u32 {
    fn wire_bytes(&self) -> u64 {
        4
    }
}

impl WireSize for u64 {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WireSize for Value {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WireSize for ProcessId {
    fn wire_bytes(&self) -> u64 {
        4
    }
}

impl WireSize for String {
    fn wire_bytes(&self) -> u64 {
        4 + self.len() as u64
    }
}

/// One presence byte plus the payload when present.
impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

/// A 4-byte length prefix plus the elements.
impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> u64 {
        4 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

/// Shared bodies serialize like owned ones.
impl<T: WireSize> WireSize for Arc<T> {
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_fixed_widths() {
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(7u16.wire_bytes(), 2);
        assert_eq!(7u32.wire_bytes(), 4);
        assert_eq!(7u64.wire_bytes(), 8);
        assert_eq!(Value(9).wire_bytes(), 8);
        assert_eq!(ProcessId(3).wire_bytes(), 4);
    }

    #[test]
    fn collections_add_length_prefixes() {
        assert_eq!(Vec::<Value>::new().wire_bytes(), 4);
        assert_eq!(vec![Value(1), Value(2)].wire_bytes(), 4 + 16);
        assert_eq!("abc".to_string().wire_bytes(), 7);
    }

    #[test]
    fn options_cost_a_presence_byte() {
        assert_eq!(None::<Value>.wire_bytes(), 1);
        assert_eq!(Some(Value(1)).wire_bytes(), 9);
    }

    #[test]
    fn smart_pointers_are_transparent() {
        assert_eq!(Arc::new(Value(1)).wire_bytes(), 8);
        assert_eq!(Box::new(vec![1u32]).wire_bytes(), 8);
    }

    #[test]
    fn tuples_sum_their_parts() {
        assert_eq!((1u32, Value(2)).wire_bytes(), 12);
        assert_eq!((1u8, 2u16, Value(3)).wire_bytes(), 11);
    }
}
