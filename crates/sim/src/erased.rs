//! Type-erased session handles: one engine for every message type.
//!
//! Each protocol family in this workspace exchanges its own message type
//! (`UnauthWrapperMsg`, `BbBatch`, `PhaseKingMsg`, …), so a [`Runner`] is
//! generic over it — and any harness that wants to treat protocols
//! uniformly ends up duplicating its setup/measure logic per message
//! type. This module erases the type: a fully built session (honest
//! process map plus adversary) is boxed behind the object-safe
//! [`ErasedSession`] trait, whose surface is exactly what a harness
//! needs — run to completion, then probe per-process state.
//!
//! The probe channel is deliberately monomorphic (`Vec<bool>` per
//! process): the only cross-protocol white-box observation the
//! experiment harness makes is each process's classification bit
//! vector, and erasing it as plain bools keeps `ba-sim` free of
//! higher-layer types.

use crate::adversary::Adversary;
use crate::envelope::{Envelope, Outbox};
use crate::id::{ProcessId, Value};
use crate::process::Process;
use crate::runner::{RunReport, Runner};
use std::collections::BTreeMap;

/// Object-safe handle to a fully built session with the protocol's
/// message type erased. Produced by [`erase`].
pub trait ErasedSession {
    /// Runs until every honest process halts or `max_rounds` is
    /// reached, returning the report.
    fn run(&mut self, max_rounds: u64) -> RunReport<Value>;

    /// Post-run white-box probe: per-process observation bits for every
    /// honest process whose probe produced a value (e.g. classification
    /// vectors). Empty when the protocol has nothing to report.
    fn probes(&self) -> Vec<(ProcessId, Vec<bool>)>;
}

struct TypedSession<P: Process<Output = Value>, A, F> {
    runner: Runner<P, A>,
    honest_ids: Vec<ProcessId>,
    probe: F,
}

impl<P, A, F> ErasedSession for TypedSession<P, A, F>
where
    P: Process<Output = Value>,
    A: Adversary<P::Msg>,
    F: Fn(&P) -> Option<Vec<bool>>,
{
    fn run(&mut self, max_rounds: u64) -> RunReport<Value> {
        self.runner.run(max_rounds)
    }

    fn probes(&self) -> Vec<(ProcessId, Vec<bool>)> {
        self.honest_ids
            .iter()
            .filter_map(|&id| {
                self.runner
                    .process(id)
                    .and_then(|p| (self.probe)(p))
                    .map(|bits| (id, bits))
            })
            .collect()
    }
}

/// Boxes a concrete session behind [`ErasedSession`].
///
/// `probe` extracts the post-run observation bits from one honest
/// process (return `None` for protocols without any, or before the
/// state exists).
pub fn erase<P, A, F>(
    n: usize,
    honest: BTreeMap<ProcessId, P>,
    adversary: A,
    probe: F,
) -> Box<dyn ErasedSession>
where
    P: Process<Output = Value> + 'static,
    A: Adversary<P::Msg> + 'static,
    F: Fn(&P) -> Option<Vec<bool>> + 'static,
{
    let honest_ids: Vec<ProcessId> = honest.keys().copied().collect();
    Box::new(TypedSession {
        runner: Runner::with_ids(n, honest, adversary),
        honest_ids,
        probe,
    })
}

/// Adapts a [`Process`] whose output is not [`Value`] by mapping its
/// output — e.g. collapsing a rich protocol result to the decided value
/// so it can run under an [`ErasedSession`].
pub struct MapOutput<P, F> {
    inner: P,
    f: F,
}

impl<P, F> MapOutput<P, F> {
    /// Wraps `inner`, translating outputs through `f`.
    pub fn new(inner: P, f: F) -> Self {
        MapOutput { inner, f }
    }

    /// The wrapped process (for white-box probes).
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P, O, F> Process for MapOutput<P, F>
where
    P: Process,
    O: Clone,
    F: Fn(&P::Output) -> O,
{
    type Msg = P::Msg;
    type Output = O;

    fn step(&mut self, round: u64, inbox: &[Envelope<Self::Msg>], out: &mut Outbox<Self::Msg>) {
        self.inner.step(round, inbox, out);
    }

    fn output(&self) -> Option<O> {
        self.inner.output().map(|o| (self.f)(&o))
    }

    fn halted(&self) -> bool {
        self.inner.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SilentAdversary;

    /// Broadcast once, output the min (the runner-test workhorse).
    struct MinEcho {
        mine: Value,
        out: Option<Value>,
    }

    impl Process for MinEcho {
        type Msg = Value;
        type Output = Value;
        fn step(&mut self, round: u64, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            match round {
                0 => out.broadcast(self.mine),
                1 => {
                    let min = inbox.iter().map(|e| *e.payload).min().unwrap_or(self.mine);
                    self.out = Some(min.min(self.mine));
                }
                _ => {}
            }
        }
        fn output(&self) -> Option<Value> {
            self.out
        }
        fn halted(&self) -> bool {
            self.out.is_some()
        }
    }

    fn session(n: usize, honest: usize) -> Box<dyn ErasedSession> {
        let map: BTreeMap<ProcessId, MinEcho> = (0..honest)
            .map(|i| {
                (
                    ProcessId(i as u32),
                    MinEcho {
                        mine: Value(100 + i as u64),
                        out: None,
                    },
                )
            })
            .collect();
        erase(n, map, SilentAdversary, |p: &MinEcho| {
            p.out.map(|v| vec![v == Value(100)])
        })
    }

    #[test]
    fn erased_session_runs_and_reports() {
        let mut s = session(5, 5);
        let report = s.run(10);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(&Value(100)));
    }

    #[test]
    fn probes_surface_per_process_bits() {
        let mut s = session(4, 3);
        assert!(s.probes().iter().all(|(_, bits)| !bits.is_empty()));
        let _ = s.run(10);
        let probes = s.probes();
        assert_eq!(probes.len(), 3);
        assert!(probes.iter().all(|(_, bits)| bits == &vec![true]));
    }

    #[test]
    fn erased_sessions_with_different_message_types_coexist() {
        struct Unit {
            done: bool,
        }
        impl Process for Unit {
            type Msg = ();
            type Output = Value;
            fn step(&mut self, _r: u64, _i: &[Envelope<()>], _o: &mut Outbox<()>) {
                self.done = true;
            }
            fn output(&self) -> Option<Value> {
                self.done.then_some(Value(0))
            }
            fn halted(&self) -> bool {
                self.done
            }
        }
        let unit: BTreeMap<ProcessId, Unit> =
            [(ProcessId(0), Unit { done: false })].into_iter().collect();
        let mut sessions: Vec<Box<dyn ErasedSession>> = vec![
            session(4, 4),
            erase(1, unit, SilentAdversary, |_: &Unit| None),
        ];
        let reports: Vec<_> = sessions.iter_mut().map(|s| s.run(10)).collect();
        assert!(reports.iter().all(|r| r.all_decided()));
        assert!(sessions[1].probes().is_empty());
    }

    #[test]
    fn map_output_translates_and_preserves_halting() {
        struct Rich;
        impl Process for Rich {
            type Msg = ();
            type Output = (Value, u8);
            fn step(&mut self, _r: u64, _i: &[Envelope<()>], _o: &mut Outbox<()>) {}
            fn output(&self) -> Option<(Value, u8)> {
                Some((Value(9), 2))
            }
            fn halted(&self) -> bool {
                true
            }
        }
        let mut mapped = MapOutput::new(Rich, |(v, _): &(Value, u8)| *v);
        let mut out = Outbox::new(ProcessId(0), 1);
        mapped.step(0, &[], &mut out);
        assert_eq!(mapped.output(), Some(Value(9)));
        assert!(mapped.halted());
        assert_eq!(mapped.inner().output(), Some((Value(9), 2)));
    }

    #[test]
    fn probes_before_run_reflect_current_state() {
        let s = session(4, 2);
        // MinEcho has no output before running, so probes are empty.
        assert!(s.probes().is_empty());
    }
}
