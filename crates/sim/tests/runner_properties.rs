//! Property-based invariants of the simulator itself: determinism,
//! message accounting, delivery ordering, and adversary confinement.

use ba_sim::{
    AdversaryCtx, Envelope, FnAdversary, Outbox, Process, ProcessId, Runner, SilentAdversary, Value,
};
use proptest::prelude::*;

/// A process that broadcasts a configurable number of rounds and then
/// outputs a digest of everything it received (sender, round) — a
/// transcript fingerprint.
#[derive(Clone)]
struct Chatter {
    rounds: u64,
    mine: Value,
    digest: u64,
    out: Option<u64>,
}

impl Process for Chatter {
    type Msg = Value;
    type Output = u64;
    fn step(&mut self, round: u64, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
        for env in inbox {
            self.digest = self
                .digest
                .wrapping_mul(1_000_003)
                .wrapping_add(u64::from(env.from.0) * 31 + env.payload.0);
        }
        if round < self.rounds {
            out.broadcast(Value(self.mine.0 + round));
        } else {
            self.out = Some(self.digest);
        }
    }
    fn output(&self) -> Option<u64> {
        self.out
    }
    fn halted(&self) -> bool {
        self.out.is_some()
    }
}

fn chatter_system(_n: usize, honest: usize, rounds: u64) -> Vec<Chatter> {
    (0..honest)
        .map(|i| Chatter {
            rounds,
            mine: Value(100 + i as u64),
            digest: 0,
            out: None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two identical runs produce byte-identical transcript digests and
    /// accounting (the bedrock of every other test in this repository).
    #[test]
    fn runs_are_deterministic(
        n in 2usize..12,
        rounds in 1u64..5,
        seed in 0u64..1000,
    ) {
        let run = || {
            let adv = FnAdversary::new(move |ctx: &mut AdversaryCtx<'_, Value>| {
                let faulty: Vec<ProcessId> = ctx.corrupted.iter().copied().collect();
                for from in faulty {
                    let x = seed.wrapping_add(ctx.round * 13 + u64::from(from.0));
                    ctx.send(from, ProcessId((x % n as u64) as u32), Value(x));
                }
            });
            let honest = n - (n / 3);
            let mut runner = Runner::new(n, chatter_system(n, honest, rounds), adv);
            let report = runner.run(rounds + 2);
            (
                report.outputs.clone(),
                report.honest_messages,
                report.rounds_executed,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Honest message accounting: `honest` processes broadcasting for
    /// `rounds` rounds send exactly `honest × rounds × (n − 1)` remote
    /// messages, regardless of adversary noise.
    #[test]
    fn message_counting_is_exact(
        n in 2usize..12,
        rounds in 1u64..5,
    ) {
        let honest = n.max(2) - 1;
        let mut runner = Runner::new(n, chatter_system(n, honest, rounds), SilentAdversary);
        let report = runner.run(rounds + 2);
        prop_assert_eq!(
            report.honest_messages,
            honest as u64 * rounds * (n as u64 - 1)
        );
        for &c in report.messages_per_process.values() {
            prop_assert_eq!(c, rounds * (n as u64 - 1));
        }
    }

    /// Inbox ordering: every process sees the same per-sender content in
    /// sender-sorted order, so transcript digests agree across honest
    /// processes in symmetric systems.
    #[test]
    fn symmetric_systems_have_symmetric_views(
        n in 2usize..10,
        rounds in 1u64..4,
    ) {
        // All-honest, all-broadcast: every process receives identical
        // traffic, so all digests (which fold sender ids and payloads in
        // arrival order) must be equal.
        let mut runner = Runner::new(n, chatter_system(n, n, rounds), SilentAdversary);
        let report = runner.run(rounds + 2);
        let first = report.outputs.values().next().copied();
        for d in report.outputs.values() {
            prop_assert_eq!(Some(*d), first);
        }
    }

    /// The adversary cannot affect executions in which it sends nothing
    /// and controls nobody: corrupted set is derived purely from the
    /// honest map.
    #[test]
    fn full_honest_system_has_empty_corruption(
        n in 1usize..10,
    ) {
        let runner: Runner<Chatter, SilentAdversary> =
            Runner::new(n, chatter_system(n, n, 1), SilentAdversary);
        prop_assert!(runner.corrupted().is_empty());
    }
}
