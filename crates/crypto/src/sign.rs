//! Simulated PKI: per-process signing keys and a verification oracle.
//!
//! See substitution **S1** in `DESIGN.md`: signatures are HMAC-SHA256 tags
//! under per-process secret keys held privately by the [`Pki`] oracle.
//! Honest code paths sign with their own [`SigningKey`]; anyone verifies
//! via [`Pki::verify`]. The Byzantine adversary is handed the signing keys
//! of corrupted identifiers only (via [`Pki::signing_key`], called by the
//! experiment harness at corruption time), so within the simulation a
//! signature by an honest process is unforgeable — exactly the assumption
//! of §8.1 of the paper.

use crate::encode::Encoder;
use crate::hmac::{hmac_sha256, tags_equal};

/// Identifier type mirrored from `ba-sim` (kept as a raw `u32` here so the
/// crypto substrate has no simulator dependency; protocol crates convert
/// from `ProcessId` at the boundary).
pub type SignerId = u32;

/// A signature: a MAC tag binding `(signer, message)`.
///
/// The tag is truncated to 16 bytes; at simulation scale this preserves a
/// 2⁻¹²⁸ forgery bound while halving envelope sizes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    /// Claimed signer.
    pub signer: SignerId,
    tag: [u8; 16],
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sig(p{}, {:02x}{:02x}…)",
            self.signer, self.tag[0], self.tag[1]
        )
    }
}

/// Signer id plus the 16-byte authentication tag.
impl ba_sim::WireSize for Signature {
    fn wire_bytes(&self) -> u64 {
        4 + 16
    }
}

impl crate::encode::Encodable for Signature {
    /// Canonical encoding of a signature (signer then tag), used when a
    /// signature is itself part of signed material — e.g. the paper's
    /// message chains (Definition 2), where each link signs the previous
    /// link's signature.
    fn encode(&self, enc: &mut crate::encode::Encoder) {
        enc.u32(self.signer);
        enc.bytes(&self.tag);
    }
}

/// The capability to sign as one process.
///
/// Obtained from [`Pki::signing_key`]. Cloning is allowed (a process may
/// hand its key to sub-protocol state machines); what matters is that
/// *honest* keys never reach adversary code, which the experiment harness
/// guarantees by construction.
#[derive(Clone)]
pub struct SigningKey {
    id: SignerId,
    secret: [u8; 32],
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "SigningKey(p{})", self.id)
    }
}

impl SigningKey {
    /// The identifier this key signs for.
    pub fn id(&self) -> SignerId {
        self.id
    }

    /// Signs canonical message bytes.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let full = hmac_sha256(&self.secret, message);
        let mut tag = [0u8; 16];
        tag.copy_from_slice(&full[..16]);
        Signature {
            signer: self.id,
            tag,
        }
    }
}

/// The verification oracle, holding every per-process secret.
///
/// Constructed once per execution from a seed; shared read-only
/// (`Arc<Pki>`) by all processes. Secrets are private fields: protocol and
/// adversary code can only `verify`.
pub struct Pki {
    secrets: Vec<[u8; 32]>,
}

impl std::fmt::Debug for Pki {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pki({} identities)", self.secrets.len())
    }
}

impl Pki {
    /// Derives a PKI for `n` processes from `seed`.
    ///
    /// Key derivation is deterministic (`HMAC(seed, id)`), making whole
    /// executions reproducible.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut root = Encoder::new("pki-root");
        root.u64(seed);
        let root = root.finish();
        let secrets = (0..n as u32)
            .map(|id| {
                let mut e = Encoder::new("pki-key");
                e.u32(id);
                hmac_sha256(&root, &e.finish())
            })
            .collect();
        Pki { secrets }
    }

    /// Number of identities.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// Whether the PKI is empty (never true for real systems; provided for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Issues the signing key of `id`.
    ///
    /// The experiment harness calls this once per process at setup and once
    /// per corrupted id for the adversary. Protocol code never calls it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn signing_key(&self, id: SignerId) -> SigningKey {
        SigningKey {
            id,
            secret: self.secrets[id as usize],
        }
    }

    /// Verifies that `sig` is a valid signature by `sig.signer` over
    /// `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let Some(secret) = self.secrets.get(sig.signer as usize) else {
            return false;
        };
        let full = hmac_sha256(secret, message);
        tags_equal(&full[..16], &sig.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_then_verify_roundtrip() {
        let pki = Pki::new(4, 7);
        let key = pki.signing_key(2);
        let sig = key.sign(b"hello");
        assert!(pki.verify(b"hello", &sig));
    }

    #[test]
    fn verification_binds_the_message() {
        let pki = Pki::new(4, 7);
        let sig = pki.signing_key(1).sign(b"msg-a");
        assert!(!pki.verify(b"msg-b", &sig));
    }

    #[test]
    fn verification_binds_the_signer() {
        let pki = Pki::new(4, 7);
        let sig = pki.signing_key(1).sign(b"m");
        let forged = Signature { signer: 2, ..sig };
        assert!(!pki.verify(b"m", &forged), "re-attributing a tag must fail");
    }

    #[test]
    fn unknown_signer_rejected() {
        let pki = Pki::new(2, 7);
        let other = Pki::new(5, 7);
        let sig = other.signing_key(4).sign(b"m");
        assert!(!pki.verify(b"m", &sig));
    }

    #[test]
    fn keys_differ_across_processes_and_seeds() {
        let pki_a = Pki::new(3, 1);
        let pki_b = Pki::new(3, 2);
        let s0 = pki_a.signing_key(0).sign(b"m");
        let s1 = pki_a.signing_key(1).sign(b"m");
        assert_ne!(s0, s1);
        let s0b = pki_b.signing_key(0).sign(b"m");
        assert!(!pki_b.verify(b"m", &s0), "cross-seed signatures invalid");
        assert!(pki_b.verify(b"m", &s0b));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Pki::new(3, 42).signing_key(1).sign(b"x");
        let b = Pki::new(3, 42).signing_key(1).sign(b"x");
        assert_eq!(a, b);
    }

    #[test]
    fn guessing_tags_fails() {
        // A computationally-bounded adversary without the key cannot do
        // better than guessing; spot-check a handful of guesses.
        let pki = Pki::new(2, 9);
        for guess in 0u8..32 {
            let fake = Signature {
                signer: 0,
                tag: [guess; 16],
            };
            assert!(!pki.verify(b"target", &fake));
        }
    }

    #[test]
    fn debug_output_never_leaks_secrets() {
        let pki = Pki::new(2, 3);
        let key = pki.signing_key(0);
        let shown = format!("{key:?}{pki:?}");
        // The secret is 32 raw bytes; its hex should never appear.
        assert!(shown.contains("SigningKey(p0)"));
        assert!(shown.contains("Pki(2 identities)"));
        assert!(!shown.contains("secret"));
    }
}
