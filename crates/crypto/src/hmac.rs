//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are hashed first, per RFC 2104.
///
/// # Examples
///
/// ```
/// let tag = ba_crypto::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = sha256(key);
        k[..32].copy_from_slice(&digest);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality of two MAC tags.
///
/// Timing is irrelevant inside the simulator, but tag comparison is a
/// security-sensitive operation and the habit costs nothing.
pub fn tags_equal(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_produce_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn different_messages_produce_different_tags() {
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[31] ^= 1;
        assert!(!tags_equal(&a, &b));
        assert!(!tags_equal(&a[..16], &a));
    }
}
