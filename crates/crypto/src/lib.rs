//! # ba-crypto — cryptographic substrate for the authenticated protocols
//!
//! The paper's authenticated algorithms (§8) assume a public-key
//! infrastructure with unforgeable signatures: committee certificates
//! (Definition 1) and message chains (Definition 2) are built from them.
//!
//! Real asymmetric signatures are outside the sanctioned offline dependency
//! set, so this crate implements the closest synthetic equivalent
//! (substitution **S1** in `DESIGN.md`):
//!
//! * [`mod@sha256`] — SHA-256 implemented from scratch and validated
//!   against the NIST FIPS 180-4 test vectors;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231;
//! * [`sign`] — a *simulated PKI*: a [`sign::Pki`] oracle privately
//!   holds one MAC key per process; a process signs with its own
//!   [`sign::SigningKey`] and anyone verifies through the
//!   oracle. Unforgeability holds by construction inside the simulation:
//!   the Byzantine adversary receives keys only for corrupted identifiers,
//!   and Rust privacy prevents key extraction from the oracle.
//! * [`encode`] — a small deterministic, domain-separated byte encoder so
//!   that every signed protocol message has a canonical serialization.
//! * [`signed`] — the reusable [`signed::Signed`] envelope (canonical
//!   encoding + signature + verify-on-receive), the building block of
//!   the signed protocol variants (`CommEffSigned`, `ResilientSigned`).
//!
//! Everything the protocols need from signatures — authentication,
//! transferability along message chains, and equivocation evidence — is
//! preserved. The test suites include active forgery attempts that must
//! fail.

pub mod encode;
pub mod hmac;
pub mod sha256;
pub mod sign;
pub mod signed;

pub use encode::{Encodable, Encoder};
pub use hmac::hmac_sha256;
pub use sha256::{sha256, Sha256};
pub use sign::{Pki, Signature, SignerId, SigningKey};
pub use signed::Signed;
