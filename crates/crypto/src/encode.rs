//! Canonical, domain-separated byte encoding for signed material.
//!
//! Signatures must cover a deterministic serialization of a message, and
//! different message kinds must never collide byte-for-byte (otherwise a
//! signature on one kind could be replayed as another). The [`Encoder`]
//! enforces both: every compound starts with a domain tag, and all integers
//! are fixed-width big-endian.

/// Incremental canonical encoder.
///
/// # Examples
///
/// ```
/// use ba_crypto::Encoder;
///
/// let mut e = Encoder::new("committee");
/// e.u32(7);
/// e.bytes(b"payload");
/// let bytes = e.finish();
/// assert!(bytes.starts_with(b"ba/committee"));
/// ```
#[derive(Clone, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an encoding under the given domain tag.
    pub fn new(domain: &str) -> Self {
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(b"ba/");
        buf.extend_from_slice(domain.as_bytes());
        buf.push(0);
        Encoder { buf }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a nested encodable value.
    pub fn nested<E: Encodable>(&mut self, v: &E) -> &mut Self {
        let inner = v.encoded();
        self.bytes(&inner);
        self
    }

    /// Appends a length-prefixed sequence of encodables.
    pub fn seq<E: Encodable>(&mut self, items: &[E]) -> &mut Self {
        self.u64(items.len() as u64);
        for item in items {
            self.nested(item);
        }
        self
    }

    /// Finishes, returning the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A type with a canonical byte encoding suitable for signing.
pub trait Encodable {
    /// Writes the canonical encoding of `self`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: the canonical bytes under this type's own domain.
    fn encoded(&self) -> Vec<u8> {
        let mut enc = Encoder::new("nested");
        self.encode(&mut enc);
        enc.finish()
    }
}

impl Encodable for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
}

impl Encodable for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(*self);
    }
}

impl Encodable for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.bytes(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_separate() {
        let mut a = Encoder::new("alpha");
        a.u32(1);
        let mut b = Encoder::new("beta");
        b.u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integers_are_fixed_width() {
        let mut a = Encoder::new("x");
        a.u32(1).u32(2);
        let mut b = Encoder::new("x");
        b.u64(4294967298); // Same raw bytes as (1u32, 2u32)? Must differ by width discipline.
        assert_eq!(a.finish(), b.finish(), "u32+u32 and u64 share byte layout by design; kinds must differ by domain or structure, which protocol encoders enforce with tags");
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        // ("ab", "c") must not collide with ("a", "bc").
        let mut a = Encoder::new("x");
        a.bytes(b"ab").bytes(b"c");
        let mut b = Encoder::new("x");
        b.bytes(b"a").bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn sequences_are_length_prefixed() {
        let mut a = Encoder::new("x");
        a.seq(&[1u64, 2u64]);
        let mut b = Encoder::new("x");
        b.seq(&[1u64]);
        b.u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn encoding_is_deterministic() {
        let make = || {
            let mut e = Encoder::new("det");
            e.u8(3).u32(9).bytes(b"zz").seq(&[7u64, 8u64]);
            e.finish()
        };
        assert_eq!(make(), make());
    }
}
