//! The reusable signed envelope: a message body plus a signature over
//! its canonical encoding.
//!
//! Protocol crates wrap their per-step message bodies in [`Signed`] to
//! get three properties at once:
//!
//! * **Unforgeability** — [`Signed::verified_from`] accepts a message
//!   only if the claimed signer matches the envelope sender *and* the
//!   tag verifies under the [`Pki`], so forged tags and honest
//!   signatures replayed from corrupted identities are dropped on
//!   receive.
//! * **Transferability** — a verified `Signed<M>` is proof that its
//!   signer produced `M`, independently of who relayed it. This is what
//!   certificate-carrying protocols (the signed communication-efficient
//!   certify step) build on: a quorum of signed acknowledgements can be
//!   forwarded and re-verified by anyone.
//! * **Accountability** — two *distinct* validly-signed bodies from one
//!   signer are jointly a proof of equivocation (honest processes sign
//!   at most one body per slot), which the signed resilient
//!   classification exchange uses to convict equivocators.
//!
//! The wire-size model is exact: a `Signed<M>` costs its body plus the
//! [`Signature`]'s 20 bytes (4-byte signer id + 16-byte tag), so signed
//! pipelines exceed their unsigned counterparts by precisely the
//! per-message signature model — an invariant the conformance suite
//! asserts.

use crate::encode::{Encodable, Encoder};
use crate::sign::{Pki, Signature, SignerId, SigningKey};

/// A message body plus a signature over its canonical encoding.
///
/// Construction signs ([`Signed::new`]); receipt verifies
/// ([`Signed::verified_from`]). [`Signed::from_parts`] deliberately
/// allows assembling arbitrary (body, signature) pairs — adversaries
/// and tests need to *attempt* forgeries; verification is the gate,
/// construction is free.
///
/// # Examples
///
/// ```
/// use ba_crypto::{Pki, Signed};
///
/// let pki = Pki::new(4, 7);
/// let signed = Signed::new(41u64, &pki.signing_key(2));
/// assert_eq!(signed.verified_from(&pki, 2), Some(&41));
/// assert_eq!(signed.verified_from(&pki, 1), None, "signer binding");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signed<M> {
    body: M,
    sig: Signature,
}

impl<M: Encodable> Signed<M> {
    /// Signs `body` with `key`.
    pub fn new(body: M, key: &SigningKey) -> Self {
        let sig = key.sign(&Self::signing_bytes(&body));
        Signed { body, sig }
    }

    /// The canonical bytes a signature covers: the body's encoding under
    /// the shared envelope domain. Distinct body *types* must write
    /// distinct leading tags in their [`Encodable::encode`] so that a
    /// signature on one kind can never be replayed as another.
    fn signing_bytes(body: &M) -> Vec<u8> {
        let mut enc = Encoder::new("signed-envelope");
        body.encode(&mut enc);
        enc.finish()
    }

    /// Whether the signature verifies for its claimed signer.
    pub fn verify(&self, pki: &Pki) -> bool {
        pki.verify(&Self::signing_bytes(&self.body), &self.sig)
    }

    /// The verify-on-receive gate: returns the body only if the claimed
    /// signer is `sender` (the unforgeable envelope sender) *and* the
    /// tag verifies. Everything else — forged tags, honest signatures
    /// replayed from corrupted identities, re-attributed tags — returns
    /// `None` and must be treated as never sent.
    pub fn verified_from(&self, pki: &Pki, sender: SignerId) -> Option<&M> {
        (self.sig.signer == sender && self.verify(pki)).then_some(&self.body)
    }
}

impl<M> Signed<M> {
    /// Assembles an envelope from parts without signing — the adversary
    /// and test surface for forgery attempts. A `Signed` built this way
    /// verifies only if `sig` actually covers `body`.
    pub fn from_parts(body: M, sig: Signature) -> Self {
        Signed { body, sig }
    }

    /// The (unverified) body. Use [`Signed::verified_from`] on receive.
    pub fn body(&self) -> &M {
        &self.body
    }

    /// The claimed signer.
    pub fn signer(&self) -> SignerId {
        self.sig.signer
    }

    /// The signature itself (e.g. for re-attribution attempts in tests).
    pub fn signature(&self) -> &Signature {
        &self.sig
    }
}

/// Body plus the signature's 20 bytes — the exact per-message cost of
/// the signed pipelines over their unsigned counterparts.
impl<M: ba_sim::WireSize> ba_sim::WireSize for Signed<M> {
    fn wire_bytes(&self) -> u64 {
        self.body.wire_bytes() + self.sig.wire_bytes()
    }
}

/// Signed envelopes nest: certificates sign over collections of signed
/// acknowledgements, so `Signed<M>` is itself `Encodable`.
impl<M: Encodable> Encodable for Signed<M> {
    fn encode(&self, enc: &mut Encoder) {
        self.body.encode(enc);
        self.sig.encode(enc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::WireSize;

    #[test]
    fn sign_verify_roundtrip_binds_signer_and_body() {
        let pki = Pki::new(4, 9);
        let signed = Signed::new(7u64, &pki.signing_key(1));
        assert!(signed.verify(&pki));
        assert_eq!(signed.verified_from(&pki, 1), Some(&7));
        assert_eq!(signed.verified_from(&pki, 3), None, "wrong sender");
    }

    #[test]
    fn tampered_body_fails_verification() {
        let pki = Pki::new(4, 9);
        let signed = Signed::new(7u64, &pki.signing_key(1));
        let tampered = Signed::from_parts(8u64, *signed.signature());
        assert!(!tampered.verify(&pki));
        assert_eq!(tampered.verified_from(&pki, 1), None);
    }

    #[test]
    fn reattributed_signature_fails_verification() {
        let pki = Pki::new(4, 9);
        let signed = Signed::new(7u64, &pki.signing_key(1));
        let mut sig = *signed.signature();
        sig.signer = 2;
        let forged = Signed::from_parts(7u64, sig);
        assert!(!forged.verify(&pki), "re-attributing a tag must fail");
    }

    #[test]
    fn wire_size_is_body_plus_signature() {
        let pki = Pki::new(2, 1);
        let signed = Signed::new(7u64, &pki.signing_key(0));
        assert_eq!(signed.wire_bytes(), 8 + 20);
    }

    #[test]
    fn distinct_bodies_produce_distinct_signatures() {
        let pki = Pki::new(2, 1);
        let key = pki.signing_key(0);
        let a = Signed::new(1u64, &key);
        let b = Signed::new(2u64, &key);
        assert_ne!(a.signature(), b.signature());
    }
}
