//! Property-based tests of the cryptographic substrate: streaming/one-shot
//! equivalence for SHA-256, signature binding under random inputs, and
//! encoder injectivity on structured inputs.

use ba_crypto::{sha256, Encoder, Pki, Sha256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Chunked hashing equals one-shot hashing for arbitrary data and
    /// arbitrary chunk boundaries.
    #[test]
    fn sha256_streaming_equals_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        splits in proptest::collection::vec(0usize..600, 0..6),
    ) {
        let whole = sha256(&data);
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &c in &cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), whole);
    }

    /// Distinct (signer, message) pairs never cross-verify.
    #[test]
    fn signatures_bind_signer_and_message(
        msg_a in proptest::collection::vec(any::<u8>(), 1..64),
        msg_b in proptest::collection::vec(any::<u8>(), 1..64),
        ids in (0u32..8, 0u32..8),
        seed in 0u64..1000,
    ) {
        let pki = Pki::new(8, seed);
        let (ia, ib) = ids;
        let sig = pki.signing_key(ia).sign(&msg_a);
        prop_assert!(pki.verify(&msg_a, &sig));
        if msg_a != msg_b {
            prop_assert!(!pki.verify(&msg_b, &sig), "message substitution accepted");
        }
        if ia != ib {
            let other = pki.signing_key(ib).sign(&msg_a);
            prop_assert_ne!(sig, other, "two signers produced the same tag");
        }
    }

    /// Length-prefixed encodings are injective over (bytes, bytes) pairs:
    /// no two distinct pairs share a canonical encoding — the property
    /// that makes signatures over encoded compounds unambiguous.
    #[test]
    fn encoder_pairs_are_injective(
        a1 in proptest::collection::vec(any::<u8>(), 0..24),
        a2 in proptest::collection::vec(any::<u8>(), 0..24),
        b1 in proptest::collection::vec(any::<u8>(), 0..24),
        b2 in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let enc = |x: &[u8], y: &[u8]| {
            let mut e = Encoder::new("pair");
            e.bytes(x).bytes(y);
            e.finish()
        };
        if (a1.clone(), a2.clone()) != (b1.clone(), b2.clone()) {
            prop_assert_ne!(enc(&a1, &a2), enc(&b1, &b2));
        } else {
            prop_assert_eq!(enc(&a1, &a2), enc(&b1, &b2));
        }
    }

    /// Cross-seed PKIs never validate each other's signatures (fresh
    /// executions cannot replay old-execution credentials).
    #[test]
    fn cross_execution_signatures_invalid(
        msg in proptest::collection::vec(any::<u8>(), 1..32),
        seed_a in 0u64..500,
        seed_b in 501u64..1000,
    ) {
        let pki_a = Pki::new(4, seed_a);
        let pki_b = Pki::new(4, seed_b);
        let sig = pki_a.signing_key(2).sign(&msg);
        prop_assert!(!pki_b.verify(&msg, &sig));
    }
}
