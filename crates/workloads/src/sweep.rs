//! Multi-seed sweeps and summary statistics.
//!
//! The simulator is deterministic per configuration, but workload
//! randomness (error placement, adversary scheduling) makes single-seed
//! numbers noisy summaries of a configuration's behaviour. This module
//! runs a configuration across seeds and aggregates: worst case (what
//! the theorems bound), mean, and best case. The scaling helpers fit the
//! measured curves against reference shapes (`n²`, `min{B/n+1, f}`), so
//! bench tables can report shape-conformance numerically.

use crate::experiment::{ExperimentConfig, ExperimentOutcome};

/// Aggregated results of one configuration across seeds.
#[derive(Clone, Debug)]
pub struct SweepSummary {
    /// Number of seeds run.
    pub runs: usize,
    /// Worst-case rounds across seeds (`None` if any run failed to
    /// decide — a liveness violation).
    pub rounds_max: Option<u64>,
    /// Best-case rounds.
    pub rounds_min: Option<u64>,
    /// Mean rounds.
    pub rounds_mean: f64,
    /// Worst-case honest message count (until decision).
    pub messages_max: u64,
    /// Mean honest message count.
    pub messages_mean: f64,
    /// Whether agreement held in every run.
    pub always_agreed: bool,
    /// Whether validity held in every run.
    pub always_valid: bool,
    /// Mean realized misclassification count `k_A`.
    pub k_a_mean: f64,
    /// The realized error budget (identical across seeds when the
    /// placement is budget-exact).
    pub b_actual: usize,
}

/// Runs `cfg` across `seeds` and aggregates the outcomes.
pub fn sweep_seeds(cfg: &ExperimentConfig, seeds: impl IntoIterator<Item = u64>) -> SweepSummary {
    let outcomes: Vec<ExperimentOutcome> = seeds
        .into_iter()
        .map(|seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            c.run()
        })
        .collect();
    summarize(&outcomes)
}

/// Aggregates a set of outcomes.
pub fn summarize(outcomes: &[ExperimentOutcome]) -> SweepSummary {
    assert!(!outcomes.is_empty(), "cannot summarize zero runs");
    let runs = outcomes.len();
    let all_decided = outcomes.iter().all(|o| o.rounds.is_some());
    let rounds: Vec<u64> = outcomes.iter().filter_map(|o| o.rounds).collect();
    let rounds_mean =
        rounds.iter().sum::<u64>() as f64 / rounds.len().max(1) as f64;
    SweepSummary {
        runs,
        rounds_max: all_decided.then(|| rounds.iter().copied().max().unwrap_or(0)),
        rounds_min: all_decided.then(|| rounds.iter().copied().min().unwrap_or(0)),
        rounds_mean,
        messages_max: outcomes.iter().map(|o| o.messages).max().unwrap_or(0),
        messages_mean: outcomes.iter().map(|o| o.messages).sum::<u64>() as f64 / runs as f64,
        always_agreed: outcomes.iter().all(|o| o.agreement),
        always_valid: outcomes.iter().all(|o| o.validity_ok),
        k_a_mean: outcomes.iter().map(|o| o.k_a).sum::<usize>() as f64 / runs as f64,
        b_actual: outcomes.first().map(|o| o.b_actual).unwrap_or(0),
    }
}

/// Least-squares exponent of `y ≈ c·xᵖ` over positive samples — used to
/// check measured scaling against a reference power (e.g. messages vs
/// `n` should fit `p ≈ 2`).
pub fn fit_power_law(samples: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

/// Pearson correlation between two equal-length series — used to check
/// that measured rounds track the `min{B/n + 1, f}` reference curve.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let denom = (vx * vy).sqrt();
    (denom > 1e-12).then(|| cov / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Pipeline;

    #[test]
    fn sweep_aggregates_deterministic_runs() {
        let cfg = ExperimentConfig::new(16, 5, 2, 12, Pipeline::Unauth);
        let summary = sweep_seeds(&cfg, 0..4);
        assert_eq!(summary.runs, 4);
        assert!(summary.always_agreed);
        assert!(summary.rounds_max.is_some());
        assert!(summary.rounds_min <= summary.rounds_max);
        assert!(summary.rounds_mean > 0.0);
        assert_eq!(summary.b_actual, 12);
    }

    #[test]
    fn fit_power_law_recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, (x * x) as f64 * 3.0)).collect();
        let p = fit_power_law(&quadratic).expect("fit");
        assert!((p - 2.0).abs() < 1e-9, "got {p}");

        let linear: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, x as f64 * 7.0)).collect();
        let p = fit_power_law(&linear).expect("fit");
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_power_law_needs_two_positive_points() {
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law(&[(0.0, 2.0), (0.0, 3.0)]).is_none());
    }

    #[test]
    fn correlation_detects_monotone_tracking() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 21.0, 29.0, 44.0];
        let r = correlation(&xs, &ys).expect("correlated");
        assert!(r > 0.98, "got {r}");
        let anti = [44.0, 29.0, 21.0, 10.0];
        assert!(correlation(&xs, &anti).expect("r") < -0.98);
    }

    #[test]
    fn correlation_rejects_mismatched_lengths() {
        assert!(correlation(&[1.0], &[1.0]).is_none());
        assert!(correlation(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }
}
