//! Multi-seed sweeps, multi-config grids, and summary statistics.
//!
//! The simulator is deterministic per configuration, but workload
//! randomness (error placement, adversary scheduling) makes single-seed
//! numbers noisy summaries of a configuration's behaviour. This module
//! runs a configuration across seeds and aggregates: worst case (what
//! the theorems bound), mean, and best case. [`sweep_grid`] lifts that
//! to the cartesian product over `n`/`B`/`f`/pipeline — the shape of
//! every cross-family bench table — executing configurations in
//! parallel ([`crate::par`]) with results in deterministic grid order,
//! byte-identical to the serial path. The scaling helpers fit the
//! measured curves against reference shapes (`n²`, `min{B/n+1, f}`), so
//! bench tables can report shape-conformance numerically.

use crate::experiment::{ExperimentConfig, ExperimentOutcome, Pipeline};
use crate::json::{to_json_array, JsonObject, ToJson};
use crate::par::par_map;

/// Aggregated results of one configuration across seeds.
///
/// Denominator convention: every `*_mean` field divides by the **total**
/// number of runs. `rounds_mean` is therefore only defined when every
/// run decided; if any run violated liveness it is `None` (exactly like
/// `rounds_max`/`rounds_min`), never a partial average or a fake `0.0`
/// that would read as instant agreement in grid JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSummary {
    /// Number of seeds run.
    pub runs: usize,
    /// Worst-case rounds across seeds (`None` if any run failed to
    /// decide — a liveness violation).
    pub rounds_max: Option<u64>,
    /// Best-case rounds.
    pub rounds_min: Option<u64>,
    /// Mean rounds over all runs (`None` if any run failed to decide,
    /// like `rounds_max`).
    pub rounds_mean: Option<f64>,
    /// Worst-case honest message count (until decision).
    pub messages_max: u64,
    /// Mean honest message count.
    pub messages_mean: f64,
    /// Worst-case honest byte count (until decision).
    pub bytes_max: u64,
    /// Mean honest byte count.
    pub bytes_mean: f64,
    /// Whether agreement held in every run.
    pub always_agreed: bool,
    /// Whether validity held in every run.
    pub always_valid: bool,
    /// Mean realized misclassification count `k_A`.
    pub k_a_mean: f64,
    /// The **maximum** realized error budget across seeds. Budget-exact
    /// placements spend the same `B` for every seed
    /// (`b_actual_uniform = true`); saturating or capacity-limited
    /// generators may not, and the maximum is the conservative summary
    /// of how much error the cell was exposed to.
    pub b_actual: usize,
    /// Whether every seed realized the same error budget. `false` flags
    /// a non-budget-exact generator that would otherwise masquerade as
    /// exact.
    pub b_actual_uniform: bool,
}

impl ToJson for SweepSummary {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_u64("runs", self.runs as u64)
            .field_opt_u64("rounds_max", self.rounds_max)
            .field_opt_u64("rounds_min", self.rounds_min)
            .field_opt_f64("rounds_mean", self.rounds_mean)
            .field_u64("messages_max", self.messages_max)
            .field_f64("messages_mean", self.messages_mean)
            .field_u64("bytes_max", self.bytes_max)
            .field_f64("bytes_mean", self.bytes_mean)
            .field_bool("always_agreed", self.always_agreed)
            .field_bool("always_valid", self.always_valid)
            .field_f64("k_a_mean", self.k_a_mean)
            .field_u64("b_actual", self.b_actual as u64)
            .field_bool("b_actual_uniform", self.b_actual_uniform)
            .finish()
    }
}

/// Runs `cfg` across `seeds` and aggregates the outcomes.
pub fn sweep_seeds(cfg: &ExperimentConfig, seeds: impl IntoIterator<Item = u64>) -> SweepSummary {
    let outcomes: Vec<ExperimentOutcome> = seeds
        .into_iter()
        .map(|seed| cfg.clone().with_seed(seed).run())
        .collect();
    summarize(&outcomes)
}

/// Aggregates a set of outcomes (see [`SweepSummary`] for the
/// denominator and `b_actual` conventions).
pub fn summarize(outcomes: &[ExperimentOutcome]) -> SweepSummary {
    assert!(!outcomes.is_empty(), "cannot summarize zero runs");
    let runs = outcomes.len();
    let all_decided = outcomes.iter().all(|o| o.rounds.is_some());
    let rounds: Vec<u64> = outcomes.iter().filter_map(|o| o.rounds).collect();
    let b_actual = outcomes.iter().map(|o| o.b_actual).max().unwrap_or(0);
    SweepSummary {
        runs,
        rounds_max: all_decided.then(|| rounds.iter().copied().max().unwrap_or(0)),
        rounds_min: all_decided.then(|| rounds.iter().copied().min().unwrap_or(0)),
        rounds_mean: all_decided.then(|| rounds.iter().sum::<u64>() as f64 / runs as f64),
        messages_max: outcomes.iter().map(|o| o.messages).max().unwrap_or(0),
        messages_mean: outcomes.iter().map(|o| o.messages).sum::<u64>() as f64 / runs as f64,
        bytes_max: outcomes.iter().map(|o| o.bytes).max().unwrap_or(0),
        bytes_mean: outcomes.iter().map(|o| o.bytes).sum::<u64>() as f64 / runs as f64,
        always_agreed: outcomes.iter().all(|o| o.agreement),
        always_valid: outcomes.iter().all(|o| o.validity_ok),
        k_a_mean: outcomes.iter().map(|o| o.k_a).sum::<usize>() as f64 / runs as f64,
        b_actual,
        b_actual_uniform: outcomes.iter().all(|o| o.b_actual == b_actual),
    }
}

/// A cartesian sweep over system size, error budget, fault count, and
/// pipeline, with every other knob held fixed by a base configuration.
///
/// ```
/// use ba_workloads::{ExperimentConfig, Pipeline, SweepGrid};
///
/// let grid = SweepGrid::new(ExperimentConfig::builder().build())
///     .ns([10, 13])
///     .budgets([0, 8])
///     .fs([0, 2])
///     .pipelines([Pipeline::Unauth, Pipeline::PhaseKing])
///     .seeds(0..2);
/// // The prediction-free PhaseKing pipeline ignores the budget axis,
/// // so it contributes one cell per (n, f) instead of one per budget.
/// let points = ba_workloads::sweep_grid(&grid);
/// assert_eq!(points.len(), 2 * 2 * 2 + 2 * 2);
/// assert!(points.iter().all(|p| p.summary.always_agreed));
/// ```
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Template for every cell: inputs, adversary, placements are
    /// taken from here; `n`, `t`, `f`, `budget`, `pipeline`, `seed`
    /// are overridden per cell.
    pub base: ExperimentConfig,
    /// System sizes to sweep.
    pub ns: Vec<usize>,
    /// Error budgets to sweep.
    pub budgets: Vec<usize>,
    /// Fault counts to sweep. Combinations exceeding a pipeline's
    /// resilience at some `n` are skipped (deterministically — the
    /// skip depends only on the grid, never on execution).
    pub fs: Vec<usize>,
    /// Pipelines to sweep.
    pub pipelines: Vec<Pipeline>,
    /// Seeds aggregated per cell.
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// Starts a grid from a base configuration; axes default to the
    /// base's own values and can be widened with the combinators.
    pub fn new(base: ExperimentConfig) -> Self {
        SweepGrid {
            ns: vec![base.n],
            budgets: vec![base.budget],
            fs: vec![base.f],
            pipelines: vec![base.pipeline],
            seeds: vec![base.seed],
            base,
        }
    }

    /// The canonical grid behind the repository's `BENCH_*.json`
    /// trajectory files: every pipeline family over a small
    /// `n × B × f` cube, three seeds per cell.
    /// `examples/sweep_grid_json.rs` produces it (CI's `BENCH_ci.json`)
    /// and `examples/bench_trajectory_diff.rs` regenerates it for the
    /// warn-only baseline diff — both must describe the same grid, so
    /// it is defined exactly once, here.
    pub fn bench_default() -> Self {
        SweepGrid::new(
            ExperimentConfig::builder()
                .n(16)
                .faults(2, crate::generators::FaultIds::Spread)
                .build(),
        )
        .ns([13, 16, 24])
        .budgets([0, 16, 64])
        .fs([0, 2, 4])
        .pipelines(Pipeline::ALL)
        .seeds(0..3)
    }

    /// Sets the system-size axis.
    pub fn ns(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.ns = ns.into_iter().collect();
        self
    }

    /// Sets the error-budget axis.
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = usize>) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Sets the fault-count axis.
    pub fn fs(mut self, fs: impl IntoIterator<Item = usize>) -> Self {
        self.fs = fs.into_iter().collect();
        self
    }

    /// Sets the pipeline axis.
    pub fn pipelines(mut self, pipelines: impl IntoIterator<Item = Pipeline>) -> Self {
        self.pipelines = pipelines.into_iter().collect();
        self
    }

    /// Sets the per-cell seed set.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Expands the grid into concrete configurations, in grid order
    /// (pipeline-major, then `n`, `f`, `B`). Each cell derives `t`
    /// from its pipeline's resilience bound at `n`; cells whose fault
    /// count exceeds that bound are skipped, and prediction-free
    /// pipelines collapse the budget axis to a single `B = 0` cell
    /// (they never read the matrix, so every budget would re-run the
    /// identical experiment and report a misleading non-zero `B`).
    pub fn configs(&self) -> Vec<ExperimentConfig> {
        let zero_budget = [0usize];
        let mut out = Vec::new();
        for &pipeline in &self.pipelines {
            let budgets: &[usize] = if pipeline.driver().uses_predictions() {
                &self.budgets
            } else {
                &zero_budget
            };
            for &n in &self.ns {
                let t = pipeline.driver().max_faults(n);
                for &f in &self.fs {
                    if f > t {
                        continue;
                    }
                    for &budget in budgets {
                        let mut cfg = self
                            .base
                            .clone()
                            .with_pipeline(pipeline)
                            .with_budget(budget);
                        cfg.n = n;
                        cfg.t = t;
                        cfg.f = f;
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }
}

/// One cell of a grid sweep: the coordinates plus the seed-aggregated
/// summary.
#[derive(Clone, Debug, PartialEq)]
pub struct GridPoint {
    /// System size.
    pub n: usize,
    /// Derived fault bound.
    pub t: usize,
    /// Fault count.
    pub f: usize,
    /// Requested error budget.
    pub budget: usize,
    /// Pipeline run in this cell.
    pub pipeline: Pipeline,
    /// Seed-aggregated measurements.
    pub summary: SweepSummary,
}

impl ToJson for GridPoint {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_str("pipeline", self.pipeline.name())
            .field_u64("n", self.n as u64)
            .field_u64("t", self.t as u64)
            .field_u64("f", self.f as u64)
            .field_u64("budget", self.budget as u64)
            .field_raw("summary", &self.summary.to_json())
            .finish()
    }
}

/// Renders grid results as a JSON array — the machine-readable sweep
/// output consumed by benchmark trajectory tooling.
pub fn grid_to_json(points: &[GridPoint]) -> String {
    to_json_array(points)
}

fn grid_point(cfg: &ExperimentConfig, seeds: &[u64]) -> GridPoint {
    GridPoint {
        n: cfg.n,
        t: cfg.t,
        f: cfg.f,
        budget: cfg.budget,
        pipeline: cfg.pipeline,
        summary: sweep_seeds(cfg, seeds.iter().copied()),
    }
}

/// Runs every cell of `grid` in parallel, returning points in grid
/// order. Because each experiment is a pure function of its
/// configuration and ordering is restored by index, the output is
/// identical to [`sweep_grid_serial`].
pub fn sweep_grid(grid: &SweepGrid) -> Vec<GridPoint> {
    let configs = grid.configs();
    par_map(&configs, |cfg| grid_point(cfg, &grid.seeds))
}

/// Serial reference implementation of [`sweep_grid`] (also the
/// fallback semantics: same cells, same order).
pub fn sweep_grid_serial(grid: &SweepGrid) -> Vec<GridPoint> {
    grid.configs()
        .iter()
        .map(|cfg| grid_point(cfg, &grid.seeds))
        .collect()
}

/// Least-squares exponent of `y ≈ c·xᵖ` over positive samples — used to
/// check measured scaling against a reference power (e.g. messages vs
/// `n` should fit `p ≈ 2`).
pub fn fit_power_law(samples: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

/// Pearson correlation between two equal-length series — used to check
/// that measured rounds track the `min{B/n + 1, f}` reference curve.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let denom = (vx * vy).sqrt();
    (denom > 1e-12).then(|| cov / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Pipeline;

    #[test]
    fn sweep_aggregates_deterministic_runs() {
        let cfg = ExperimentConfig::new(16, 5, 2, 12, Pipeline::Unauth);
        let summary = sweep_seeds(&cfg, 0..4);
        assert_eq!(summary.runs, 4);
        assert!(summary.always_agreed);
        assert!(summary.rounds_max.is_some());
        assert!(summary.rounds_min <= summary.rounds_max);
        assert!(summary.rounds_mean.expect("all decided") > 0.0);
        assert_eq!(summary.b_actual, 12);
        assert!(summary.b_actual_uniform, "exact placements spend B evenly");
    }

    #[test]
    fn livelock_cells_report_null_round_statistics() {
        // Regression: a cell where no (or not every) run decides must
        // not report rounds_mean = 0.0 — that reads as instant
        // agreement in grid JSON. All round statistics go to None/null.
        let decided = ExperimentConfig::new(10, 3, 1, 0, Pipeline::Unauth).run();
        assert!(decided.rounds.is_some(), "fixture must decide");
        let livelocked = ExperimentOutcome {
            rounds: None,
            ..decided
        };

        let all_stuck = summarize(&[livelocked, livelocked]);
        assert_eq!(all_stuck.rounds_mean, None);
        assert_eq!(all_stuck.rounds_max, None);
        let json = all_stuck.to_json();
        assert!(
            json.contains("\"rounds_mean\":null"),
            "livelock must serialize as null, got {json}"
        );

        // One stuck run poisons the mean exactly like it poisons the max.
        let partial = summarize(&[decided, livelocked]);
        assert_eq!(partial.rounds_mean, None);

        let healthy = summarize(&[decided, decided]);
        assert_eq!(
            healthy.rounds_mean,
            Some(decided.rounds.unwrap() as f64),
            "all-decided cells average over all runs"
        );
    }

    #[test]
    fn non_uniform_b_actual_is_surfaced_not_masked() {
        // Regression: `b_actual` used to silently report the first
        // seed's spend; a saturating generator could masquerade as
        // budget-exact. Now the summary reports the maximum and flags
        // the disagreement.
        let base = ExperimentConfig::new(10, 3, 1, 4, Pipeline::Unauth).run();
        let other = ExperimentOutcome {
            b_actual: 9,
            ..base
        };
        let summary = summarize(&[base, other]);
        assert_eq!(summary.b_actual, 9, "maximum across seeds");
        assert!(!summary.b_actual_uniform);
        assert!(summary.to_json().contains("\"b_actual_uniform\":false"));
    }

    #[test]
    fn bench_default_grid_covers_every_pipeline_family() {
        // The CI bench-json job greps BENCH_ci.json for family names;
        // the exhaustive guarantee lives here, next to Pipeline::ALL,
        // where a forgotten variant is a test failure instead of a
        // silently ungated artifact.
        let configs = SweepGrid::bench_default().configs();
        for pipeline in Pipeline::ALL {
            assert!(
                configs.iter().any(|c| c.pipeline == pipeline),
                "{} has no cells in the bench grid",
                pipeline.name()
            );
        }
    }

    #[test]
    fn grid_expands_the_cartesian_product_in_stable_order() {
        let grid = SweepGrid::new(ExperimentConfig::builder().build())
            .ns([10, 13])
            .budgets([0, 4])
            .fs([0, 2])
            .pipelines([Pipeline::Unauth, Pipeline::Auth]);
        let configs = grid.configs();
        assert_eq!(configs.len(), 16);
        assert_eq!(configs[0].pipeline, Pipeline::Unauth);
        assert_eq!(configs[0].n, 10);
        assert_eq!(configs[0].t, 3, "t derived per pipeline");
        assert_eq!(configs[8].pipeline, Pipeline::Auth);
        assert_eq!(configs[8].t, 4);
        // Same grid, same expansion.
        let again = grid.configs();
        assert_eq!(
            format!("{configs:?}"),
            format!("{again:?}"),
            "expansion must be deterministic"
        );
    }

    #[test]
    fn grid_collapses_the_budget_axis_for_prediction_free_pipelines() {
        let grid = SweepGrid::new(ExperimentConfig::builder().build())
            .ns([10])
            .budgets([0, 8, 16])
            .pipelines([Pipeline::Unauth, Pipeline::PhaseKing]);
        let configs = grid.configs();
        // Unauth sweeps all three budgets; phase-king gets one B = 0 cell.
        assert_eq!(configs.len(), 4);
        let pk: Vec<_> = configs
            .iter()
            .filter(|c| c.pipeline == Pipeline::PhaseKing)
            .collect();
        assert_eq!(pk.len(), 1);
        assert_eq!(pk[0].budget, 0);
    }

    #[test]
    fn grid_skips_infeasible_fault_counts() {
        let grid = SweepGrid::new(ExperimentConfig::builder().build())
            .ns([10])
            .fs([0, 4])
            .pipelines([Pipeline::Unauth, Pipeline::Auth]);
        let configs = grid.configs();
        // Unauth at n = 10 tolerates t = 3 < 4: the f = 4 cell exists
        // only for the auth pipeline.
        assert_eq!(configs.len(), 3);
        assert!(configs
            .iter()
            .all(|c| c.pipeline == Pipeline::Auth || c.f == 0));
    }

    #[test]
    fn parallel_grid_matches_serial_byte_for_byte() {
        let grid = SweepGrid::new(ExperimentConfig::builder().build())
            .ns([10, 13])
            .budgets([0, 6])
            .fs([2])
            .pipelines(Pipeline::ALL)
            .seeds(0..2);
        let parallel = sweep_grid(&grid);
        let serial = sweep_grid_serial(&grid);
        assert_eq!(parallel.len(), serial.len());
        assert_eq!(
            format!("{parallel:?}"),
            format!("{serial:?}"),
            "parallel execution must not change results"
        );
        assert_eq!(grid_to_json(&parallel), grid_to_json(&serial));
    }

    #[test]
    fn grid_points_serialize_to_a_json_array() {
        let grid = SweepGrid::new(ExperimentConfig::builder().build()).seeds(0..2);
        let points = sweep_grid(&grid);
        let json = grid_to_json(&points);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"pipeline\":\"unauth-wrapper\""));
        assert!(json.contains("\"summary\":{\"runs\":2"));
    }

    #[test]
    fn fit_power_law_recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> =
            (1..=6).map(|x| (x as f64, (x * x) as f64 * 3.0)).collect();
        let p = fit_power_law(&quadratic).expect("fit");
        assert!((p - 2.0).abs() < 1e-9, "got {p}");

        let linear: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, x as f64 * 7.0)).collect();
        let p = fit_power_law(&linear).expect("fit");
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_power_law_needs_two_positive_points() {
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law(&[(0.0, 2.0), (0.0, 3.0)]).is_none());
    }

    #[test]
    fn correlation_detects_monotone_tracking() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 21.0, 29.0, 44.0];
        let r = correlation(&xs, &ys).expect("correlated");
        assert!(r > 0.98, "got {r}");
        let anti = [44.0, 29.0, 21.0, 10.0];
        assert!(correlation(&xs, &anti).expect("r") < -0.98);
    }

    #[test]
    fn correlation_rejects_mismatched_lengths() {
        assert!(correlation(&[1.0], &[1.0]).is_none());
        assert!(correlation(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }
}
