//! Byzantine strategies against the wrapper protocols.
//!
//! The protocol-agnostic strategies (silence, crashing, replay) live in
//! `ba-sim`; here are the prediction-aware ones — the classification
//! liars for every pipeline with a classification round, and the
//! *signature equivocators* for the signed pipelines: coalitions that
//! forge tags (claiming honest signers), replay honest signatures from
//! corrupted identities, sign genuinely conflicting bodies with their
//! own corrupted keys, and selectively withhold genuine certificates —
//! the full menu the signed variants' verify-on-receive, conviction,
//! and certificate-echo mechanisms must defeat. The deepest
//! protocol-specific attacks (split chains, camp-splitting) are
//! exercised at the individual protocol layers (see the
//! `ba-graded`/`ba-auth` test suites), where the adversary can be
//! written against the concrete message type.

use ba_commeff::signed::{AckBody, Certificate, CommEffSignedMsg, ReportBody};
use ba_core::{AuthWrapperMsg, BitVec, UnauthWrapperMsg};
use ba_crypto::{Pki, Signed, SigningKey};
use ba_resilient::signed::{ClassifyBody, ResilientSignedMsg};
use ba_sim::{Adversary, AdversaryCtx, ProcessId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// What a lying voter claims during classification (Algorithm 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiarStyle {
    /// Everyone is honest — shields the adversary's own members.
    AllOnes,
    /// Everyone is faulty — maximal suspicion.
    AllZeros,
    /// Honest processes accused, faulty endorsed — the exact inversion.
    Inverted,
    /// Independent random bits per recipient (equivocating liar).
    RandomPerRecipient,
}

/// Broadcasts crafted prediction vectors in the classification round and
/// stays silent afterwards.
///
/// Works against both wrapper pipelines via [`ClassifyLiar::unauth`] and
/// [`ClassifyLiar::auth`].
#[derive(Clone, Debug)]
pub struct ClassifyLiar {
    n: usize,
    style: LiarStyle,
    faulty: Vec<ProcessId>,
    rng: StdRng,
}

impl ClassifyLiar {
    /// Creates the liar controlling `faulty` in a system of `n`.
    pub fn new(n: usize, faulty: Vec<ProcessId>, style: LiarStyle, seed: u64) -> Self {
        ClassifyLiar {
            n,
            style,
            faulty,
            rng: StdRng::seed_from_u64(seed ^ 0x11a5),
        }
    }

    fn vector(&mut self) -> BitVec {
        match self.style {
            LiarStyle::AllOnes => BitVec::ones(self.n),
            LiarStyle::AllZeros => BitVec::zeros(self.n),
            LiarStyle::Inverted => {
                let mut v = BitVec::zeros(self.n);
                for f in &self.faulty {
                    v.set(f.index(), true);
                }
                v
            }
            LiarStyle::RandomPerRecipient => {
                let bits: Vec<bool> = (0..self.n).map(|_| self.rng.gen()).collect();
                BitVec::from_bools(&bits)
            }
        }
    }

    fn emit<M>(&mut self, ctx: &mut AdversaryCtx<'_, M>, wrap: impl Fn(Arc<BitVec>) -> M)
    where
        M: Clone,
    {
        if ctx.round != 0 {
            return;
        }
        let per_recipient = matches!(self.style, LiarStyle::RandomPerRecipient);
        for from in self.faulty.clone() {
            if per_recipient {
                for to in ProcessId::all(self.n) {
                    let msg = wrap(Arc::new(self.vector()));
                    ctx.send(from, to, msg);
                }
            } else {
                let msg = wrap(Arc::new(self.vector()));
                ctx.broadcast(from, msg);
            }
        }
    }

    /// Adapter for the unauthenticated wrapper's message type.
    pub fn unauth(self) -> impl Adversary<UnauthWrapperMsg> {
        UnauthLiar(self)
    }

    /// Adapter for the authenticated wrapper's message type.
    pub fn auth(self) -> impl Adversary<AuthWrapperMsg> {
        AuthLiar(self)
    }

    /// Adapter for the resilient pipeline's message type — the only
    /// non-wrapper family with a real classification round to lie in
    /// (`RandomPerRecipient` there splits the honest suspicion views,
    /// exercising the schedule's liveness suffix).
    pub fn resilient(self) -> impl Adversary<ba_resilient::ResilientMsg> {
        ResilientLiar(self)
    }

    /// Adapter for the *signed* resilient pipeline: the same crafted
    /// vectors, each signed with the emitting coalition member's own
    /// corrupted key (the harness hands the adversary exactly those).
    /// `RandomPerRecipient` becomes a *signature equivocator* — and the
    /// signed exchange convicts it by its own signatures instead of
    /// paying the rotation suffix.
    pub fn resilient_signed(self, keys: Vec<SigningKey>) -> impl Adversary<ResilientSignedMsg> {
        let keys = keys
            .into_iter()
            .map(|k| (ProcessId(k.id()), k))
            .collect::<BTreeMap<_, _>>();
        SignedResilientLiar { base: self, keys }
    }
}

struct UnauthLiar(ClassifyLiar);
impl Adversary<UnauthWrapperMsg> for UnauthLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, UnauthWrapperMsg>) {
        self.0.emit(ctx, UnauthWrapperMsg::Classify);
    }
}

struct AuthLiar(ClassifyLiar);
impl Adversary<AuthWrapperMsg> for AuthLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, AuthWrapperMsg>) {
        self.0.emit(ctx, AuthWrapperMsg::Classify);
    }
}

struct ResilientLiar(ClassifyLiar);
impl Adversary<ba_resilient::ResilientMsg> for ResilientLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, ba_resilient::ResilientMsg>) {
        self.0.emit(ctx, ba_resilient::ResilientMsg::Classify);
    }
}

struct SignedResilientLiar {
    base: ClassifyLiar,
    keys: BTreeMap<ProcessId, SigningKey>,
}

impl Adversary<ResilientSignedMsg> for SignedResilientLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, ResilientSignedMsg>) {
        if ctx.round != 0 {
            return;
        }
        let per_recipient = matches!(self.base.style, LiarStyle::RandomPerRecipient);
        for from in self.base.faulty.clone() {
            let Some(key) = self.keys.get(&from) else {
                continue;
            };
            let classify = |bits: BitVec| {
                ResilientSignedMsg::Classify(Arc::new(Signed::new(ClassifyBody { bits }, key)))
            };
            if per_recipient {
                for to in ProcessId::all(self.base.n) {
                    let msg = classify(self.base.vector());
                    ctx.send(from, to, msg);
                }
            } else {
                ctx.broadcast(from, classify(self.base.vector()));
            }
        }
    }
}

/// The full signature-equivocation menu against the signed
/// communication-efficient pipeline, used as its `Disruptor` mapping:
///
/// * **submit round** — rushing visibility replays every observed
///   honest signed submission from a corrupted identity, in the round
///   the submit step actually reads them (verify-on-receive must drop
///   each signer/sender mismatch);
/// * **report round** — every coalition member signs *conflicting*
///   reports with its own key (one value to even recipients, another to
///   odd ones), plus a forged-tag report claiming an honest signer;
/// * **ack round** — rushing visibility harvests every honest signed
///   acknowledgement, and each member double-acks both report values;
/// * **certify round** — if any value actually gathered an `n − t`
///   happy quorum, the coalition assembles the *genuine* certificate
///   and delivers it to the odd half only (the withholding split the
///   echo round must repair); either way it split-casts certificates
///   stuffed with forged acknowledgements to the even half.
///
/// Verify-on-receive drops the forgeries and replays, quorum
/// intersection prevents conflicting genuine certificates, and the
/// certificate echo spreads any withheld one — so the honest lane
/// choice stays uniform, which the conformance suite asserts at
/// n ∈ {16, 32, 64}. Deterministic: no randomness anywhere.
pub struct SignedCertEquivocator {
    n: usize,
    t: usize,
    keys: Vec<SigningKey>,
    pki: Arc<Pki>,
    harvested: Vec<Signed<AckBody>>,
}

impl SignedCertEquivocator {
    /// The two values the coalition plays against each other.
    const SPLIT: (u64, u64) = (5, 77);

    /// Creates the equivocator controlling the corrupted `keys`.
    pub fn new(n: usize, t: usize, keys: Vec<SigningKey>, pki: Arc<Pki>) -> Self {
        SignedCertEquivocator {
            n,
            t,
            keys,
            pki,
            harvested: Vec::new(),
        }
    }

    /// A certificate stuffed with forged acknowledgements: self-signed
    /// tags re-attributed to honest signers. Must never verify.
    fn bogus_certificate(&self, value: Value) -> Arc<Certificate> {
        let key = &self.keys[0];
        let acks = (0..self.n as u32)
            .map(|claimed| {
                let body = AckBody { value, happy: true };
                let mut sig = *Signed::new(body, key).signature();
                sig.signer = claimed;
                Signed::from_parts(body, sig)
            })
            .collect();
        Arc::new(Certificate { value, acks })
    }

    /// The genuine certificate for `value`, if the harvested and own
    /// acknowledgements reach an `n − t` distinct-signer happy quorum.
    fn genuine_certificate(&self, value: Value) -> Option<Arc<Certificate>> {
        let mut signers = BTreeSet::new();
        let mut acks = Vec::new();
        let own = self
            .keys
            .iter()
            .map(|key| Signed::new(AckBody { value, happy: true }, key));
        for ack in self.harvested.iter().cloned().chain(own) {
            if ack.body().value == value
                && ack.body().happy
                && ack.verify(&self.pki)
                && signers.insert(ack.signer())
            {
                acks.push(ack);
            }
        }
        (signers.len() >= self.n - self.t).then(|| Arc::new(Certificate { value, acks }))
    }
}

impl Adversary<CommEffSignedMsg> for SignedCertEquivocator {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, CommEffSignedMsg>) {
        let (a, b) = Self::SPLIT;
        match ctx.round {
            0 => {
                // Replay every honest signed submission — observed via
                // rushing visibility in the round the Submit step
                // actually reads them — from a corrupted identity: the
                // signer/sender mismatch must get each one dropped by
                // verify-on-receive.
                if let Some(key) = self.keys.first() {
                    let from = ProcessId(key.id());
                    let observed: Vec<Arc<CommEffSignedMsg>> = ctx
                        .honest_traffic
                        .iter()
                        .filter(|e| matches!(&*e.payload, CommEffSignedMsg::Submit(_)))
                        .map(|e| Arc::clone(&e.payload))
                        .collect();
                    for payload in observed {
                        for to in ProcessId::all(self.n) {
                            ctx.replay(from, to, Arc::clone(&payload));
                        }
                    }
                }
            }
            1 => {
                // Conflicting reports under the coalition's own keys.
                for key in &self.keys {
                    let from = ProcessId(key.id());
                    for to in ProcessId::all(self.n) {
                        let v = if to.0.is_multiple_of(2) { a } else { b };
                        let msg = CommEffSignedMsg::Report(Signed::new(
                            ReportBody { value: Value(v) },
                            key,
                        ));
                        ctx.send(from, to, msg);
                    }
                    // A forged report claiming the first honest-looking
                    // signer (anyone but ourselves).
                    let claimed = (0..self.n as u32)
                        .find(|id| *id != key.id())
                        .unwrap_or_default();
                    let body = ReportBody { value: Value(a) };
                    let mut sig = *Signed::new(body, key).signature();
                    sig.signer = claimed;
                    ctx.broadcast(
                        from,
                        CommEffSignedMsg::Report(Signed::from_parts(body, sig)),
                    );
                }
            }
            2 => {
                // Rushing visibility: harvest the honest signed acks.
                for env in ctx.honest_traffic {
                    if let CommEffSignedMsg::Ack(signed) = &*env.payload {
                        self.harvested.push(signed.clone());
                    }
                }
            }
            3 => {
                // Genuine-but-withheld certificate to the odd half…
                let genuine = [Value(a), Value(b)]
                    .into_iter()
                    .find_map(|v| self.genuine_certificate(v));
                if let (Some(cert), Some(key)) = (genuine, self.keys.first()) {
                    let from = ProcessId(key.id());
                    for to in ProcessId::all(self.n).filter(|p| !p.0.is_multiple_of(2)) {
                        ctx.send(from, to, CommEffSignedMsg::Commit(Arc::clone(&cert)));
                    }
                }
                // …and unverifiable forged certificates to the evens.
                let bogus = self.bogus_certificate(Value(a));
                for key in &self.keys {
                    let from = ProcessId(key.id());
                    for to in ProcessId::all(self.n).filter(|p| p.0.is_multiple_of(2)) {
                        ctx.send(from, to, CommEffSignedMsg::Commit(Arc::clone(&bogus)));
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_produce_expected_vectors() {
        let mut liar = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::Inverted, 1);
        let v = liar.vector();
        assert!(!v.get(0) && !v.get(1) && !v.get(2) && v.get(3));

        let mut ones = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::AllOnes, 1);
        assert_eq!(ones.vector().count_ones(), 4);

        let mut zeros = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::AllZeros, 1);
        assert_eq!(zeros.vector().count_ones(), 0);
    }

    #[test]
    fn random_style_is_seed_deterministic() {
        let v1 =
            ClassifyLiar::new(8, vec![ProcessId(7)], LiarStyle::RandomPerRecipient, 9).vector();
        let v2 =
            ClassifyLiar::new(8, vec![ProcessId(7)], LiarStyle::RandomPerRecipient, 9).vector();
        assert_eq!(v1, v2);
    }
}
