//! Byzantine strategies against the wrapper protocols.
//!
//! The protocol-agnostic strategies (silence, crashing, replay) live in
//! `ba-sim`; here are the prediction-aware ones. The deepest attacks —
//! forged certificates, split chains, camp-splitting — are exercised at
//! the individual protocol layers (see the `ba-graded`/`ba-auth` test
//! suites), where the adversary can be written against the concrete
//! message type.

use ba_core::{AuthWrapperMsg, BitVec, UnauthWrapperMsg};
use ba_sim::{Adversary, AdversaryCtx, ProcessId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// What a lying voter claims during classification (Algorithm 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiarStyle {
    /// Everyone is honest — shields the adversary's own members.
    AllOnes,
    /// Everyone is faulty — maximal suspicion.
    AllZeros,
    /// Honest processes accused, faulty endorsed — the exact inversion.
    Inverted,
    /// Independent random bits per recipient (equivocating liar).
    RandomPerRecipient,
}

/// Broadcasts crafted prediction vectors in the classification round and
/// stays silent afterwards.
///
/// Works against both wrapper pipelines via [`ClassifyLiar::unauth`] and
/// [`ClassifyLiar::auth`].
#[derive(Clone, Debug)]
pub struct ClassifyLiar {
    n: usize,
    style: LiarStyle,
    faulty: Vec<ProcessId>,
    rng: StdRng,
}

impl ClassifyLiar {
    /// Creates the liar controlling `faulty` in a system of `n`.
    pub fn new(n: usize, faulty: Vec<ProcessId>, style: LiarStyle, seed: u64) -> Self {
        ClassifyLiar {
            n,
            style,
            faulty,
            rng: StdRng::seed_from_u64(seed ^ 0x11a5),
        }
    }

    fn vector(&mut self) -> BitVec {
        match self.style {
            LiarStyle::AllOnes => BitVec::ones(self.n),
            LiarStyle::AllZeros => BitVec::zeros(self.n),
            LiarStyle::Inverted => {
                let mut v = BitVec::zeros(self.n);
                for f in &self.faulty {
                    v.set(f.index(), true);
                }
                v
            }
            LiarStyle::RandomPerRecipient => {
                let bits: Vec<bool> = (0..self.n).map(|_| self.rng.gen()).collect();
                BitVec::from_bools(&bits)
            }
        }
    }

    fn emit<M>(&mut self, ctx: &mut AdversaryCtx<'_, M>, wrap: impl Fn(Arc<BitVec>) -> M)
    where
        M: Clone,
    {
        if ctx.round != 0 {
            return;
        }
        let per_recipient = matches!(self.style, LiarStyle::RandomPerRecipient);
        for from in self.faulty.clone() {
            if per_recipient {
                for to in ProcessId::all(self.n) {
                    let msg = wrap(Arc::new(self.vector()));
                    ctx.send(from, to, msg);
                }
            } else {
                let msg = wrap(Arc::new(self.vector()));
                ctx.broadcast(from, msg);
            }
        }
    }

    /// Adapter for the unauthenticated wrapper's message type.
    pub fn unauth(self) -> impl Adversary<UnauthWrapperMsg> {
        UnauthLiar(self)
    }

    /// Adapter for the authenticated wrapper's message type.
    pub fn auth(self) -> impl Adversary<AuthWrapperMsg> {
        AuthLiar(self)
    }

    /// Adapter for the resilient pipeline's message type — the only
    /// non-wrapper family with a real classification round to lie in
    /// (`RandomPerRecipient` there splits the honest suspicion views,
    /// exercising the schedule's liveness suffix).
    pub fn resilient(self) -> impl Adversary<ba_resilient::ResilientMsg> {
        ResilientLiar(self)
    }
}

struct UnauthLiar(ClassifyLiar);
impl Adversary<UnauthWrapperMsg> for UnauthLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, UnauthWrapperMsg>) {
        self.0.emit(ctx, UnauthWrapperMsg::Classify);
    }
}

struct AuthLiar(ClassifyLiar);
impl Adversary<AuthWrapperMsg> for AuthLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, AuthWrapperMsg>) {
        self.0.emit(ctx, AuthWrapperMsg::Classify);
    }
}

struct ResilientLiar(ClassifyLiar);
impl Adversary<ba_resilient::ResilientMsg> for ResilientLiar {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, ba_resilient::ResilientMsg>) {
        self.0.emit(ctx, ba_resilient::ResilientMsg::Classify);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_produce_expected_vectors() {
        let mut liar = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::Inverted, 1);
        let v = liar.vector();
        assert!(!v.get(0) && !v.get(1) && !v.get(2) && v.get(3));

        let mut ones = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::AllOnes, 1);
        assert_eq!(ones.vector().count_ones(), 4);

        let mut zeros = ClassifyLiar::new(4, vec![ProcessId(3)], LiarStyle::AllZeros, 1);
        assert_eq!(zeros.vector().count_ones(), 0);
    }

    #[test]
    fn random_style_is_seed_deterministic() {
        let v1 =
            ClassifyLiar::new(8, vec![ProcessId(7)], LiarStyle::RandomPerRecipient, 9).vector();
        let v2 =
            ClassifyLiar::new(8, vec![ProcessId(7)], LiarStyle::RandomPerRecipient, 9).vector();
        assert_eq!(v1, v2);
    }
}
