//! The declarative experiment runner behind every bench table.
//!
//! One [`ExperimentConfig`] describes a complete execution — system size,
//! fault pattern, prediction budget and placement, input pattern,
//! adversary, pipeline, seed — and [`ExperimentConfig::run`] produces the
//! measured [`ExperimentOutcome`]: rounds until the last honest decision,
//! honest message count, whether Agreement/Validity held, the actual `B`,
//! and the realized misclassification count `k_A`. Everything is
//! deterministic given the config.

use crate::adversaries::{ClassifyLiar, LiarStyle};
use crate::generators::{self, ErrorPlacement, FaultIds};
use ba_core::{
    AuthWrapper, AuthWrapperMsg, MisclassificationReport, PredictionMatrix, UnauthWrapper,
    UnauthWrapperMsg,
};
use ba_crypto::Pki;
use ba_sim::{
    Adversary, ProcessId, ReplayAdversary, RunReport, Runner, SilentAdversary, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which of the paper's two pipelines to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// Theorem 11: `t < n/3`, no signatures.
    Unauth,
    /// Theorem 12: `t < n/2`, signatures.
    Auth,
}

/// Honest input patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputPattern {
    /// All honest processes propose the same value (validity scenarios).
    Unanimous(u64),
    /// Alternating binary proposals (agreement under contention).
    Split,
    /// Identifier-derived distinct values.
    Distinct,
}

/// Adversary selection (protocol-deep attacks are exercised in the
/// per-crate test suites; these are the execution-scale behaviours).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Faulty processes never send.
    Silent,
    /// Faulty processes lie during classification, then go silent.
    ClassifyLiar(LiarStyle),
    /// Faulty processes replay observed honest traffic with a delay.
    Replay,
    /// The schedule-driven worst-case coalition
    /// ([`crate::disruptor`]): shields itself during classification,
    /// equivocates every quorum protocol, withholds chains, splits
    /// plurality reports. This is the adversary the bench sweeps use to
    /// realize the paper's `min{B/n + 1, f}` round curve.
    Disruptor,
}

/// Re-export of the fault placement strategy.
pub type FaultPlacement = FaultIds;

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// System size.
    pub n: usize,
    /// Fault tolerance bound.
    pub t: usize,
    /// Actual number of faults `f ≤ t`.
    pub f: usize,
    /// Where the faulty identifiers sit.
    pub fault_placement: FaultPlacement,
    /// Wrong-bit budget `B` for the prediction matrix.
    pub budget: usize,
    /// Wrong-bit placement strategy.
    pub placement: ErrorPlacement,
    /// Pipeline under test.
    pub pipeline: Pipeline,
    /// Honest inputs.
    pub inputs: InputPattern,
    /// Byzantine behaviour.
    pub adversary: AdversaryKind,
    /// RNG seed (predictions, adversary, PKI).
    pub seed: u64,
}

impl ExperimentConfig {
    /// A conservative default: silent faults, uniform errors, split
    /// inputs.
    pub fn new(n: usize, t: usize, f: usize, budget: usize, pipeline: Pipeline) -> Self {
        ExperimentConfig {
            n,
            t,
            f,
            fault_placement: FaultIds::Spread,
            budget,
            placement: ErrorPlacement::Uniform,
            pipeline,
            inputs: InputPattern::Split,
            adversary: AdversaryKind::Silent,
            seed: 0,
        }
    }

    fn input_for(&self, slot: usize) -> Value {
        match self.inputs {
            InputPattern::Unanimous(v) => Value(v),
            // Split inputs start at 1: the worst-case disruptor injects
            // strictly smaller values (0) selectively to split the
            // minimum-based conciliation (Algorithm 4 line 4).
            InputPattern::Split => Value(1 + (slot % 2) as u64),
            InputPattern::Distinct => Value(slot as u64 + 100),
        }
    }

    /// Executes the experiment.
    pub fn run(&self) -> ExperimentOutcome {
        assert!(self.f <= self.t, "f ≤ t");
        let faulty = generators::faults(self.n, self.f, self.fault_placement);
        let matrix =
            generators::predictions_with_budget(self.n, &faulty, self.budget, self.placement, self.seed);
        let b_actual = matrix.total_errors(&faulty);
        match self.pipeline {
            Pipeline::Unauth => self.run_unauth(&faulty, &matrix, b_actual),
            Pipeline::Auth => self.run_auth(&faulty, &matrix, b_actual),
        }
    }

    fn max_rounds(&self) -> u64 {
        let schedule_len = match self.pipeline {
            Pipeline::Unauth => UnauthWrapper::schedule(self.n, self.t).total_steps,
            Pipeline::Auth => AuthWrapper::schedule(self.n, self.t).total_steps,
        };
        schedule_len + 4
    }

    fn run_unauth(
        &self,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        b_actual: usize,
    ) -> ExperimentOutcome {
        let mut honest: BTreeMap<ProcessId, UnauthWrapper> = BTreeMap::new();
        for (slot, id) in ProcessId::all(self.n).filter(|p| !faulty.contains(p)).enumerate() {
            honest.insert(
                id,
                UnauthWrapper::new(id, self.n, self.t, self.input_for(slot), matrix.row(id).clone()),
            );
        }
        let adversary = self.unauth_adversary(faulty);
        let mut runner = Runner::with_ids(self.n, honest, adversary);
        let report = runner.run(self.max_rounds());
        let k_a = {
            let refs: Vec<(ProcessId, &ba_core::BitVec)> = ProcessId::all(self.n)
                .filter(|p| !faulty.contains(p))
                .filter_map(|id| {
                    runner
                        .process(id)
                        .and_then(|w| w.classification())
                        .map(|c| (id, c))
                })
                .collect();
            MisclassificationReport::compute(self.n, faulty, &refs).k_a()
        };
        self.outcome(report, b_actual, k_a)
    }

    fn run_auth(
        &self,
        faulty: &BTreeSet<ProcessId>,
        matrix: &PredictionMatrix,
        b_actual: usize,
    ) -> ExperimentOutcome {
        let pki = Arc::new(Pki::new(self.n, self.seed ^ 0x91c1));
        let mut honest: BTreeMap<ProcessId, AuthWrapper> = BTreeMap::new();
        for (slot, id) in ProcessId::all(self.n).filter(|p| !faulty.contains(p)).enumerate() {
            honest.insert(
                id,
                AuthWrapper::new(
                    id,
                    self.n,
                    self.t,
                    self.input_for(slot),
                    matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let adversary = self.auth_adversary(faulty, &pki);
        let mut runner = Runner::with_ids(self.n, honest, adversary);
        let report = runner.run(self.max_rounds());
        let k_a = {
            let refs: Vec<(ProcessId, &ba_core::BitVec)> = ProcessId::all(self.n)
                .filter(|p| !faulty.contains(p))
                .filter_map(|id| {
                    runner
                        .process(id)
                        .and_then(|w| w.classification())
                        .map(|c| (id, c))
                })
                .collect();
            MisclassificationReport::compute(self.n, faulty, &refs).k_a()
        };
        self.outcome(report, b_actual, k_a)
    }

    fn unauth_adversary(
        &self,
        faulty: &BTreeSet<ProcessId>,
    ) -> Box<dyn Adversary<UnauthWrapperMsg>> {
        match self.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => Box::new(
                ClassifyLiar::new(self.n, faulty.iter().copied().collect(), style, self.seed)
                    .unauth(),
            ),
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(crate::disruptor::UnauthDisruptor::new(
                self.n,
                self.t,
                faulty.iter().copied().collect(),
            )),
        }
    }

    fn auth_adversary(
        &self,
        faulty: &BTreeSet<ProcessId>,
        pki: &Pki,
    ) -> Box<dyn Adversary<AuthWrapperMsg>> {
        match self.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => Box::new(
                ClassifyLiar::new(self.n, faulty.iter().copied().collect(), style, self.seed)
                    .auth(),
            ),
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(crate::disruptor::AuthDisruptor::new(
                self.n,
                self.t,
                faulty.iter().copied().collect(),
                pki,
            )),
        }
    }

    fn outcome(
        &self,
        report: RunReport<Value>,
        b_actual: usize,
        k_a: usize,
    ) -> ExperimentOutcome {
        let validity_ok = match self.inputs {
            InputPattern::Unanimous(v) => report.decision() == Some(&Value(v)),
            _ => report.agreement(),
        };
        ExperimentOutcome {
            rounds: report.last_decision_round,
            messages: report.honest_messages_until_decision,
            messages_total: report.honest_messages,
            agreement: report.agreement(),
            validity_ok,
            b_actual,
            k_a,
        }
    }
}

/// Measured results of one experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentOutcome {
    /// Round at which the last honest process decided (`None` = some
    /// process never decided — a liveness bug).
    pub rounds: Option<u64>,
    /// Honest messages until the last decision.
    pub messages: u64,
    /// Honest messages over the whole run (including the courtesy
    /// phase).
    pub messages_total: u64,
    /// Whether all honest processes decided on one value.
    pub agreement: bool,
    /// Agreement plus, for unanimous inputs, strong unanimity.
    pub validity_ok: bool,
    /// Wrong prediction bits actually injected.
    pub b_actual: usize,
    /// Misclassified processes after Algorithm 2 (`k_A`).
    pub k_a: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unauth_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::Unauth);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(out.b_actual, 0);
        assert_eq!(out.k_a, 0);
        assert!(out.rounds.is_some());
    }

    #[test]
    fn auth_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(10, 4, 3, 0, Pipeline::Auth);
        let out = cfg.run();
        assert!(out.agreement);
        assert!(out.rounds.is_some());
    }

    #[test]
    fn unanimous_inputs_check_validity() {
        let mut cfg = ExperimentConfig::new(16, 5, 1, 5, Pipeline::Unauth);
        cfg.inputs = InputPattern::Unanimous(9);
        let out = cfg.run();
        assert!(out.validity_ok, "decision must equal the unanimous input");
    }

    #[test]
    fn budget_is_respected() {
        let cfg = ExperimentConfig::new(16, 5, 2, 30, Pipeline::Unauth);
        let out = cfg.run();
        assert_eq!(out.b_actual, 30);
    }

    #[test]
    fn classify_liar_does_not_break_agreement() {
        for style in [
            LiarStyle::AllOnes,
            LiarStyle::AllZeros,
            LiarStyle::Inverted,
            LiarStyle::RandomPerRecipient,
        ] {
            let mut cfg = ExperimentConfig::new(16, 5, 3, 10, Pipeline::Unauth);
            cfg.adversary = AdversaryKind::ClassifyLiar(style);
            let out = cfg.run();
            assert!(out.agreement, "{style:?} broke agreement");
        }
    }

    #[test]
    fn replay_adversary_is_harmless() {
        let mut cfg = ExperimentConfig::new(16, 5, 3, 8, Pipeline::Unauth);
        cfg.adversary = AdversaryKind::Replay;
        let out = cfg.run();
        assert!(out.agreement);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ExperimentConfig::new(16, 5, 2, 20, Pipeline::Unauth);
        let a = cfg.run();
        let b = cfg.run();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.k_a, b.k_a);
    }

    #[test]
    fn perfect_predictions_decide_faster_than_garbage() {
        let good = ExperimentConfig::new(24, 7, 6, 0, Pipeline::Unauth).run();
        let mut bad_cfg = ExperimentConfig::new(24, 7, 6, 24 * 24, Pipeline::Unauth);
        bad_cfg.placement = ErrorPlacement::Concentrated;
        let bad = bad_cfg.run();
        assert!(good.agreement && bad.agreement);
        assert!(
            good.rounds.unwrap() <= bad.rounds.unwrap(),
            "accurate predictions must not be slower"
        );
    }
}
