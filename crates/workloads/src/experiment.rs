//! The declarative experiment runner behind every bench table.
//!
//! One [`ExperimentConfig`] describes a complete execution — system size,
//! fault pattern, prediction budget and placement, input pattern,
//! adversary, pipeline, seed — and [`ExperimentConfig::run`] produces the
//! measured [`ExperimentOutcome`]: rounds until the last honest decision,
//! honest message count, whether Agreement/Validity held, the actual `B`,
//! and the realized misclassification count `k_A`. Everything is
//! deterministic given the config.
//!
//! Execution is pipeline-agnostic: the config picks a [`Pipeline`], the
//! pipeline names a [`ProtocolDriver`], and one generic
//! [`ExperimentConfig::run_with`] path builds, runs, and measures the
//! type-erased session — the same engine for the paper's wrappers, the
//! prediction-free baselines, and any future driver.

use crate::driver::{
    k_a_from_probes, AuthWrapperDriver, CommEffDriver, CommEffSignedDriver, PhaseKingDriver,
    ProtocolDriver, ResilientDriver, ResilientSignedDriver, SessionSpec,
    TruncatedDolevStrongDriver, UnauthWrapperDriver,
};
use crate::generators::{self, ErrorPlacement, FaultIds};
use crate::json::{JsonObject, ToJson};
use ba_sim::{RunReport, Value};

pub use crate::adversaries::LiarStyle;

/// Which protocol family to run. The first two are the paper's
/// prediction-consuming pipelines; `PhaseKing` and
/// `TruncatedDolevStrong` are the prediction-free early-stopping
/// baselines they must never lose to (the `min{·, f}` term of the
/// headline bound); `CommEff` is the communication-efficient
/// prediction pipeline of the Dzulfikar–Gilbert follow-up; `Resilient`
/// is the gracefully-degrading prediction pipeline of the Dallot et al.
/// follow-up; `CommEffSigned` and `ResilientSigned` are their signed
/// variants — the same protocols over the [`ba_crypto::Signed`]
/// envelope, trading signature bytes for the removal of each family's
/// documented equivocation conditionality.
///
/// Marked `#[non_exhaustive]`: this is the extension seam (sharded and
/// batched execution modes are the open directions), so downstream
/// matches must carry a wildcard arm and new variants are not breaking
/// changes. Prefer branching on driver capabilities
/// ([`ProtocolDriver::uses_predictions`], [`ProtocolDriver::max_faults`])
/// over matching variants.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// Theorem 11: `t < n/3`, no signatures.
    Unauth,
    /// Theorem 12: `t < n/2`, signatures.
    Auth,
    /// Prediction-free unauthenticated baseline: early-stopping
    /// phase-king with the full `t + 2` phase budget (`t < n/3`).
    PhaseKing,
    /// Prediction-free authenticated baseline: full Dolev–Strong
    /// (`k = t`, `t < n/2`).
    TruncatedDolevStrong,
    /// Communication-efficient prediction pipeline: committee-sampled
    /// fast lane plus phase-king fallback (`t < n/3`).
    CommEff,
    /// Gracefully-degrading prediction pipeline: one classification
    /// exchange, then phase king in aggregated-suspicion throne order —
    /// rounds cost one phase per faulty identifier the error budget
    /// promotes, instead of cliff-switching lanes (`t < n/3`).
    Resilient,
    /// The signed communication-efficient pipeline: signed
    /// submit/report/ack plus a transferable, echoed certify
    /// certificate, so an equivocating aggregator can no longer split
    /// the fast/fallback decision (`t < n/3`).
    CommEffSigned,
    /// The signed resilient pipeline: signed, echoed classifications
    /// with equivocation conviction make the honest suspicion views
    /// agree — `t + 2` phases, no rotation suffix (`t < n/3`).
    ResilientSigned,
}

impl Pipeline {
    /// Every selectable pipeline, in display order.
    ///
    /// Backed by [`Pipeline::ordinal`]'s exhaustive match: adding a
    /// variant without growing this constant fails to compile (the
    /// match) and then fails `pipeline_all_is_exhaustive` (the array),
    /// so sweeps can never silently skip a pipeline.
    pub const ALL: [Pipeline; 8] = [
        Pipeline::Unauth,
        Pipeline::Auth,
        Pipeline::PhaseKing,
        Pipeline::TruncatedDolevStrong,
        Pipeline::CommEff,
        Pipeline::Resilient,
        Pipeline::CommEffSigned,
        Pipeline::ResilientSigned,
    ];

    /// This pipeline's index in [`Pipeline::ALL`].
    ///
    /// Deliberately an exhaustive in-crate match (no wildcard): a new
    /// variant is a compile error here until it is given a slot, which
    /// the `pipeline_all_is_exhaustive` unit test then forces into
    /// `ALL`.
    pub const fn ordinal(self) -> usize {
        match self {
            Pipeline::Unauth => 0,
            Pipeline::Auth => 1,
            Pipeline::PhaseKing => 2,
            Pipeline::TruncatedDolevStrong => 3,
            Pipeline::CommEff => 4,
            Pipeline::Resilient => 5,
            Pipeline::CommEffSigned => 6,
            Pipeline::ResilientSigned => 7,
        }
    }

    /// The driver executing this pipeline.
    pub fn driver(self) -> &'static dyn ProtocolDriver {
        match self {
            Pipeline::Unauth => &UnauthWrapperDriver,
            Pipeline::Auth => &AuthWrapperDriver,
            Pipeline::PhaseKing => &PhaseKingDriver,
            Pipeline::TruncatedDolevStrong => &TruncatedDolevStrongDriver,
            Pipeline::CommEff => &CommEffDriver,
            Pipeline::Resilient => &ResilientDriver,
            Pipeline::CommEffSigned => &CommEffSignedDriver,
            Pipeline::ResilientSigned => &ResilientSignedDriver,
        }
    }

    /// Stable display name (delegates to the driver).
    pub fn name(self) -> &'static str {
        self.driver().name()
    }

    /// The family's resilience bound, as printed in the driver
    /// comparison table ([`crate::tables::driver_table`]).
    pub const fn resilience_shape(self) -> &'static str {
        match self {
            Pipeline::Unauth
            | Pipeline::PhaseKing
            | Pipeline::CommEff
            | Pipeline::Resilient
            | Pipeline::CommEffSigned
            | Pipeline::ResilientSigned => "3t < n",
            Pipeline::Auth | Pipeline::TruncatedDolevStrong => "2t < n",
        }
    }

    /// The family's round-complexity shape, as printed in the driver
    /// comparison table ([`crate::tables::driver_table`]).
    pub const fn round_shape(self) -> &'static str {
        match self {
            Pipeline::Unauth | Pipeline::Auth => "O(min{B/n + 1, f})",
            Pipeline::PhaseKing => "O(f)",
            Pipeline::TruncatedDolevStrong => "t + 1",
            Pipeline::CommEff => "5 fast / O(t) fallback",
            Pipeline::Resilient => "O(promoted(B) + 1), ≤ 2t + 3 phases",
            Pipeline::CommEffSigned => "6 fast / O(t) fallback, uniform lane",
            Pipeline::ResilientSigned => "O(promoted(B) + 1), ≤ t + 2 phases",
        }
    }

    /// The family's communication shape, as printed in the driver
    /// comparison table ([`crate::tables::driver_table`]).
    pub const fn comm_shape(self) -> &'static str {
        match self {
            Pipeline::Unauth | Pipeline::PhaseKing => "O(f·n²)",
            Pipeline::Auth => "O(n²) chain batches",
            Pipeline::TruncatedDolevStrong => "Ω(n²) chain batches",
            Pipeline::CommEff => "Θ(n·f̂) fast lane",
            Pipeline::Resilient => "O((promoted(B) + 1)·n²)",
            Pipeline::CommEffSigned => "O(n³) certificate echo",
            Pipeline::ResilientSigned => "O(n³) signed exchange",
        }
    }
}

/// Honest input patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputPattern {
    /// All honest processes propose the same value (validity scenarios).
    Unanimous(u64),
    /// Alternating binary proposals (agreement under contention).
    Split,
    /// Identifier-derived distinct values.
    Distinct,
}

/// Adversary selection (protocol-deep attacks are exercised in the
/// per-crate test suites; these are the execution-scale behaviours).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Faulty processes never send.
    Silent,
    /// Faulty processes lie during classification, then go silent.
    ClassifyLiar(LiarStyle),
    /// Faulty processes replay observed honest traffic with a delay.
    Replay,
    /// The schedule-driven worst-case coalition
    /// ([`crate::disruptor`]): shields itself during classification,
    /// equivocates every quorum protocol, withholds chains, splits
    /// plurality reports. This is the adversary the bench sweeps use to
    /// realize the paper's `min{B/n + 1, f}` round curve. On the
    /// prediction-free baselines it degrades to a replay coalition (see
    /// [`crate::driver`] module docs).
    Disruptor,
}

/// Re-export of the fault placement strategy.
pub type FaultPlacement = FaultIds;

/// A complete experiment description.
///
/// Construct via [`ExperimentConfig::new`] for the classic defaults,
/// or fluently via [`ExperimentConfig::builder`]; tweak copies with the
/// `with_*` combinators instead of mutating fields in place.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// System size.
    pub n: usize,
    /// Fault tolerance bound.
    pub t: usize,
    /// Actual number of faults `f ≤ t`.
    pub f: usize,
    /// Where the faulty identifiers sit.
    pub fault_placement: FaultPlacement,
    /// Wrong-bit budget `B` for the prediction matrix.
    pub budget: usize,
    /// Wrong-bit placement strategy.
    pub placement: ErrorPlacement,
    /// Pipeline under test.
    pub pipeline: Pipeline,
    /// Honest inputs.
    pub inputs: InputPattern,
    /// Byzantine behaviour.
    pub adversary: AdversaryKind,
    /// RNG seed (predictions, adversary, PKI).
    pub seed: u64,
}

impl ExperimentConfig {
    /// A conservative default: silent faults, uniform errors, split
    /// inputs.
    pub fn new(n: usize, t: usize, f: usize, budget: usize, pipeline: Pipeline) -> Self {
        ExperimentConfig {
            n,
            t,
            f,
            fault_placement: FaultIds::Spread,
            budget,
            placement: ErrorPlacement::Uniform,
            pipeline,
            inputs: InputPattern::Split,
            adversary: AdversaryKind::Silent,
            seed: 0,
        }
    }

    /// Starts a fluent builder.
    ///
    /// ```
    /// use ba_workloads::{AdversaryKind, ErrorPlacement, ExperimentConfig, FaultPlacement, Pipeline};
    ///
    /// let cfg = ExperimentConfig::builder()
    ///     .n(32)
    ///     .faults(7, FaultPlacement::Spread)
    ///     .budget(12, ErrorPlacement::Concentrated)
    ///     .pipeline(Pipeline::Unauth)
    ///     .adversary(AdversaryKind::Disruptor)
    ///     .build();
    /// assert_eq!(cfg.t, 10, "t defaults to the pipeline's resilience bound");
    /// assert!(cfg.run().agreement);
    /// ```
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Returns a copy running a different pipeline.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with different honest inputs.
    pub fn with_inputs(mut self, inputs: InputPattern) -> Self {
        self.inputs = inputs;
        self
    }

    /// Returns a copy with a different adversary.
    pub fn with_adversary(mut self, adversary: AdversaryKind) -> Self {
        self.adversary = adversary;
        self
    }

    /// Returns a copy with a different wrong-bit placement.
    pub fn with_placement(mut self, placement: ErrorPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Returns a copy with a different fault-identifier placement.
    pub fn with_fault_placement(mut self, fault_placement: FaultPlacement) -> Self {
        self.fault_placement = fault_placement;
        self
    }

    /// Returns a copy with a different wrong-bit budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Executes the experiment through the configured pipeline's driver.
    pub fn run(&self) -> ExperimentOutcome {
        self.run_with(self.pipeline.driver())
    }

    /// Executes the experiment through an explicit driver — the single
    /// generic setup/measure path shared by every protocol family
    /// (including drivers outside this crate).
    pub fn run_with<D: ProtocolDriver + ?Sized>(&self, driver: &D) -> ExperimentOutcome {
        assert!(self.f <= self.t, "f ≤ t");
        assert!(
            self.t <= driver.max_faults(self.n),
            "{} tolerates at most t = {} at n = {} (got t = {})",
            driver.name(),
            driver.max_faults(self.n),
            self.n,
            self.t
        );
        let faulty = generators::faults(self.n, self.f, self.fault_placement);
        let matrix = generators::predictions_with_budget(
            self.n,
            &faulty,
            self.budget,
            self.placement,
            self.seed,
        );
        let b_actual = matrix.total_errors(&faulty);
        let spec = SessionSpec {
            n: self.n,
            t: self.t,
            faulty: &faulty,
            matrix: &matrix,
            inputs: self.inputs,
            adversary: self.adversary,
            seed: self.seed,
        };
        let mut session = driver.build(&spec);
        let report = session.run(driver.max_rounds(self.n, self.t));
        let k_a = if driver.uses_predictions() {
            k_a_from_probes(self.n, &faulty, &session.probes())
        } else {
            0
        };
        self.outcome(report, b_actual, k_a)
    }

    fn outcome(&self, report: RunReport<Value>, b_actual: usize, k_a: usize) -> ExperimentOutcome {
        let validity_ok = match self.inputs {
            InputPattern::Unanimous(v) => report.decision() == Some(&Value(v)),
            _ => report.agreement(),
        };
        ExperimentOutcome {
            rounds: report.last_decision_round,
            messages: report.honest_messages_until_decision,
            messages_total: report.honest_messages,
            bytes: report.honest_bytes_until_decision,
            bytes_total: report.honest_bytes,
            agreement: report.agreement(),
            validity_ok,
            b_actual,
            k_a,
        }
    }
}

/// Fluent constructor for [`ExperimentConfig`]; see
/// [`ExperimentConfig::builder`].
///
/// Unset fields default to: `n = 16`, `t` = the pipeline's resilience
/// bound at `n`, no faults, zero budget (uniform placement), split
/// inputs, silent adversary, unauthenticated pipeline, seed 0.
#[derive(Clone, Debug)]
pub struct ExperimentBuilder {
    n: usize,
    t: Option<usize>,
    f: usize,
    fault_placement: FaultPlacement,
    budget: usize,
    placement: ErrorPlacement,
    pipeline: Pipeline,
    inputs: InputPattern,
    adversary: AdversaryKind,
    seed: u64,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            n: 16,
            t: None,
            f: 0,
            fault_placement: FaultIds::Spread,
            budget: 0,
            placement: ErrorPlacement::Uniform,
            pipeline: Pipeline::Unauth,
            inputs: InputPattern::Split,
            adversary: AdversaryKind::Silent,
            seed: 0,
        }
    }
}

impl ExperimentBuilder {
    /// System size.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Explicit fault-tolerance bound (otherwise the pipeline's maximum
    /// at `n`).
    pub fn t(mut self, t: usize) -> Self {
        self.t = Some(t);
        self
    }

    /// Actual fault count and identifier placement.
    pub fn faults(mut self, f: usize, placement: FaultPlacement) -> Self {
        self.f = f;
        self.fault_placement = placement;
        self
    }

    /// Wrong-bit budget and placement.
    pub fn budget(mut self, budget: usize, placement: ErrorPlacement) -> Self {
        self.budget = budget;
        self.placement = placement;
        self
    }

    /// Pipeline under test.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Honest input pattern.
    pub fn inputs(mut self, inputs: InputPattern) -> Self {
        self.inputs = inputs;
        self
    }

    /// Byzantine behaviour.
    pub fn adversary(mut self, adversary: AdversaryKind) -> Self {
        self.adversary = adversary;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the (explicit or derived) parameters violate `f ≤ t`
    /// or the pipeline's resilience bound — the same contracts
    /// [`ExperimentConfig::run`] enforces, surfaced at build time.
    pub fn build(self) -> ExperimentConfig {
        let t = self
            .t
            .unwrap_or_else(|| self.pipeline.driver().max_faults(self.n));
        assert!(
            self.f <= t,
            "f = {} exceeds t = {} (pipeline {})",
            self.f,
            t,
            self.pipeline.name()
        );
        assert!(
            t <= self.pipeline.driver().max_faults(self.n),
            "{} tolerates at most t = {} at n = {} (got t = {t})",
            self.pipeline.name(),
            self.pipeline.driver().max_faults(self.n),
            self.n,
        );
        ExperimentConfig {
            n: self.n,
            t,
            f: self.f,
            fault_placement: self.fault_placement,
            budget: self.budget,
            placement: self.placement,
            pipeline: self.pipeline,
            inputs: self.inputs,
            adversary: self.adversary,
            seed: self.seed,
        }
    }
}

/// Measured results of one experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentOutcome {
    /// Round at which the last honest process decided (`None` = some
    /// process never decided — a liveness bug).
    pub rounds: Option<u64>,
    /// Honest messages until the last decision.
    pub messages: u64,
    /// Honest messages over the whole run (including the courtesy
    /// phase).
    pub messages_total: u64,
    /// Honest bytes on the wire until the last decision
    /// ([`ba_sim::WireSize`] accounting).
    pub bytes: u64,
    /// Honest bytes over the whole run.
    pub bytes_total: u64,
    /// Whether all honest processes decided on one value.
    pub agreement: bool,
    /// Agreement plus, for unanimous inputs, strong unanimity.
    pub validity_ok: bool,
    /// Wrong prediction bits actually injected.
    pub b_actual: usize,
    /// Misclassified processes after Algorithm 2 (`k_A`); zero for
    /// prediction-free pipelines.
    pub k_a: usize,
}

impl ToJson for ExperimentOutcome {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_opt_u64("rounds", self.rounds)
            .field_u64("messages", self.messages)
            .field_u64("messages_total", self.messages_total)
            .field_u64("bytes", self.bytes)
            .field_u64("bytes_total", self.bytes_total)
            .field_bool("agreement", self.agreement)
            .field_bool("validity_ok", self.validity_ok)
            .field_u64("b_actual", self.b_actual as u64)
            .field_u64("k_a", self.k_a as u64)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_all_is_exhaustive() {
        // `ordinal` is an exhaustive match, so a new variant cannot
        // compile without a slot; this test then forces `ALL` to carry
        // it (an out-of-range ordinal panics, a duplicate fails the
        // round-trip).
        for (i, p) in Pipeline::ALL.into_iter().enumerate() {
            assert_eq!(p.ordinal(), i, "{p:?} out of display order");
            assert_eq!(Pipeline::ALL[p.ordinal()], p);
        }
    }

    #[test]
    fn resilience_shape_matches_the_driver_bound() {
        // The display string and the executable bound must agree, so
        // the driver table cannot rot against the code.
        for pipeline in Pipeline::ALL {
            let expected = match pipeline.driver().max_faults(13) {
                4 => "3t < n",
                6 => "2t < n",
                other => panic!("{pipeline:?}: unclassified bound t = {other} at n = 13"),
            };
            assert_eq!(pipeline.resilience_shape(), expected, "{pipeline:?}");
        }
    }

    #[test]
    fn comm_eff_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::CommEff);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(out.rounds, Some(4), "committee fast lane");
        assert_eq!(out.k_a, 0, "raw predictions are the probe surface");
        assert!(out.bytes > 0 && out.bytes <= out.bytes_total);
    }

    #[test]
    fn resilient_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::Resilient);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(
            out.k_a, 0,
            "aggregated majority classification is the probe surface"
        );
        assert!(
            out.rounds.expect("decided") <= 1 + 2 * 5 + 1,
            "trusted throne order decides in the first phases"
        );
        assert!(out.bytes > 0 && out.bytes <= out.bytes_total);
    }

    #[test]
    fn resilient_classify_liar_cannot_break_agreement() {
        for style in [
            LiarStyle::AllOnes,
            LiarStyle::AllZeros,
            LiarStyle::Inverted,
            LiarStyle::RandomPerRecipient,
        ] {
            let cfg = ExperimentConfig::new(16, 5, 3, 10, Pipeline::Resilient)
                .with_adversary(AdversaryKind::ClassifyLiar(style));
            let out = cfg.run();
            assert!(out.agreement, "{style:?} broke agreement");
            assert!(out.rounds.is_some(), "{style:?} broke liveness");
        }
    }

    #[test]
    fn comm_eff_signed_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::CommEffSigned);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(out.rounds, Some(5), "6-round signed fast lane");
        assert_eq!(out.k_a, 0, "raw predictions are the probe surface");
        assert!(out.bytes > 0 && out.bytes <= out.bytes_total);
        // Same workload unsigned: the signed run pays signature bytes.
        let unsigned = cfg.with_pipeline(Pipeline::CommEff).run();
        assert!(
            out.bytes_total > unsigned.bytes_total,
            "signatures must cost bytes ({} vs {})",
            out.bytes_total,
            unsigned.bytes_total
        );
    }

    #[test]
    fn resilient_signed_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::ResilientSigned);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(out.k_a, 0, "aggregated classification is the probe");
        assert!(
            out.rounds.expect("decided") <= 2 + 2 * 5 + 1,
            "trusted throne order decides in the first phases"
        );
        let unsigned = cfg.with_pipeline(Pipeline::Resilient).run();
        assert!(
            out.bytes_total > unsigned.bytes_total,
            "the signed, echoed exchange must cost bytes ({} vs {})",
            out.bytes_total,
            unsigned.bytes_total
        );
    }

    #[test]
    fn signed_pipelines_survive_every_liar_style() {
        // Only the signed resilient family has a classification round
        // to lie in; for the signed committee pipeline every liar
        // style degrades to silence (see the driver docs), so one
        // representative case suffices there.
        for style in [
            LiarStyle::AllOnes,
            LiarStyle::AllZeros,
            LiarStyle::Inverted,
            LiarStyle::RandomPerRecipient,
        ] {
            let cfg = ExperimentConfig::new(16, 5, 3, 10, Pipeline::ResilientSigned)
                .with_adversary(AdversaryKind::ClassifyLiar(style));
            let out = cfg.run();
            assert!(out.agreement, "{style:?} broke agreement");
            assert!(out.rounds.is_some(), "{style:?} broke liveness");
        }
        let commeff = ExperimentConfig::new(16, 5, 3, 10, Pipeline::CommEffSigned)
            .with_adversary(AdversaryKind::ClassifyLiar(LiarStyle::AllZeros));
        let out = commeff.run();
        assert!(out.agreement && out.rounds.is_some());
    }

    #[test]
    fn unauth_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(16, 5, 2, 0, Pipeline::Unauth);
        let out = cfg.run();
        assert!(out.agreement, "perfect predictions, silent faults");
        assert!(out.validity_ok);
        assert_eq!(out.b_actual, 0);
        assert_eq!(out.k_a, 0);
        assert!(out.rounds.is_some());
    }

    #[test]
    fn auth_experiment_end_to_end() {
        let cfg = ExperimentConfig::new(10, 4, 3, 0, Pipeline::Auth);
        let out = cfg.run();
        assert!(out.agreement);
        assert!(out.rounds.is_some());
    }

    #[test]
    fn baseline_pipelines_run_through_the_same_path() {
        for pipeline in [Pipeline::PhaseKing, Pipeline::TruncatedDolevStrong] {
            let cfg = ExperimentConfig::new(10, 3, 2, 0, pipeline)
                .with_inputs(InputPattern::Unanimous(4));
            let out = cfg.run();
            assert!(out.agreement, "{pipeline:?} broke agreement");
            assert!(out.validity_ok, "{pipeline:?} broke unanimity");
            assert_eq!(out.k_a, 0, "baselines never classify");
        }
    }

    #[test]
    fn baselines_ignore_the_prediction_budget() {
        let base = ExperimentConfig::new(10, 3, 2, 0, Pipeline::PhaseKing);
        let noisy = base.clone().with_budget(10 * 10);
        let a = base.run();
        let b = noisy.run();
        assert_eq!(a.rounds, b.rounds, "budget must not affect a baseline");
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn unanimous_inputs_check_validity() {
        let cfg = ExperimentConfig::new(16, 5, 1, 5, Pipeline::Unauth)
            .with_inputs(InputPattern::Unanimous(9));
        let out = cfg.run();
        assert!(out.validity_ok, "decision must equal the unanimous input");
    }

    #[test]
    fn budget_is_respected() {
        let cfg = ExperimentConfig::new(16, 5, 2, 30, Pipeline::Unauth);
        let out = cfg.run();
        assert_eq!(out.b_actual, 30);
    }

    #[test]
    fn classify_liar_does_not_break_agreement() {
        for style in [
            LiarStyle::AllOnes,
            LiarStyle::AllZeros,
            LiarStyle::Inverted,
            LiarStyle::RandomPerRecipient,
        ] {
            let cfg = ExperimentConfig::new(16, 5, 3, 10, Pipeline::Unauth)
                .with_adversary(AdversaryKind::ClassifyLiar(style));
            let out = cfg.run();
            assert!(out.agreement, "{style:?} broke agreement");
        }
    }

    #[test]
    fn replay_adversary_is_harmless() {
        let cfg = ExperimentConfig::new(16, 5, 3, 8, Pipeline::Unauth)
            .with_adversary(AdversaryKind::Replay);
        let out = cfg.run();
        assert!(out.agreement);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ExperimentConfig::new(16, 5, 2, 20, Pipeline::Unauth);
        let a = cfg.run();
        let b = cfg.run();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.k_a, b.k_a);
    }

    #[test]
    fn perfect_predictions_decide_faster_than_garbage() {
        let good = ExperimentConfig::new(24, 7, 6, 0, Pipeline::Unauth).run();
        let bad = ExperimentConfig::new(24, 7, 6, 24 * 24, Pipeline::Unauth)
            .with_placement(ErrorPlacement::Concentrated)
            .run();
        assert!(good.agreement && bad.agreement);
        assert!(
            good.rounds.unwrap() <= bad.rounds.unwrap(),
            "accurate predictions must not be slower"
        );
    }

    #[test]
    fn builder_derives_t_from_the_pipeline() {
        let cfg = ExperimentConfig::builder()
            .n(32)
            .faults(7, FaultPlacement::Spread)
            .budget(12, ErrorPlacement::Concentrated)
            .adversary(AdversaryKind::Disruptor)
            .build();
        assert_eq!(cfg.t, 10, "(32 - 1) / 3");
        let auth = ExperimentConfig::builder()
            .n(32)
            .pipeline(Pipeline::Auth)
            .build();
        assert_eq!(auth.t, 15, "(32 - 1) / 2");
    }

    #[test]
    #[should_panic(expected = "exceeds t")]
    fn builder_rejects_f_above_t() {
        let _ = ExperimentConfig::builder()
            .n(10)
            .faults(4, FaultPlacement::Head)
            .build();
    }

    #[test]
    #[should_panic(expected = "tolerates at most")]
    fn run_rejects_t_beyond_the_pipeline_bound() {
        // t = 5 needs signatures at n = 12; the unauth driver must refuse.
        let _ = ExperimentConfig::new(12, 5, 2, 0, Pipeline::Unauth).run();
    }

    #[test]
    fn combinators_produce_modified_copies() {
        let base = ExperimentConfig::new(16, 5, 2, 8, Pipeline::Unauth);
        let tweaked = base
            .clone()
            .with_seed(7)
            .with_pipeline(Pipeline::Auth)
            .with_fault_placement(FaultPlacement::Head);
        assert_eq!(base.seed, 0);
        assert_eq!(tweaked.seed, 7);
        assert_eq!(tweaked.pipeline, Pipeline::Auth);
        assert_eq!(tweaked.fault_placement, FaultPlacement::Head);
        assert_eq!(base.pipeline, Pipeline::Unauth);
    }

    #[test]
    fn outcome_serializes_to_json() {
        let out = ExperimentConfig::new(16, 5, 2, 0, Pipeline::Unauth).run();
        let json = out.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"agreement\":true"));
        assert!(json.contains("\"rounds\":"));
        let undecided = ExperimentOutcome {
            rounds: None,
            ..out
        };
        assert!(undecided.to_json().contains("\"rounds\":null"));
    }
}
