//! Schedule-driven worst-case adversaries.
//!
//! The paper's upper bounds are worst-case: against weak adversaries
//! (silence, crashes) the wrapper usually converges in its very first
//! phase no matter how bad the predictions are, and the
//! `O(min{B/n + 1, f})` shape never shows. These adversaries are built to
//! *realize* the bound: they reconstruct the wrapper's deterministic
//! schedule, know exactly which sub-protocol runs in every round, and
//! play the strongest generic strategy in each:
//!
//! * **classification round** — vote "everyone is honest", shielding the
//!   coalition (so a `B_F` budget spent on them keeps them trusted);
//! * **every graded-consensus round** — equivocate: value 0 to
//!   even-numbered recipients, value 1 to odd ones, keeping honest
//!   processes split below every quorum;
//! * **conciliation** — equivocate `(value, listen-set)` claims so the
//!   leader-graph minima diverge;
//! * **king rounds** — a faulty king splits its broadcast;
//! * **truncated Dolev–Strong** — the classic last-round release: a
//!   chain signed by `k + 1` coalition members delivered to half the
//!   processes in the final round (possible exactly while `f > k`);
//! * **committee rounds (Algorithm 7)** — harvest a genuine committee
//!   certificate from received votes, then split plurality reports.
//!
//! A disruption phase ends, as the paper proves it must, once the phase
//! budget `k` reaches either the misclassification count (the
//! classification machinery locks the coalition out of every listen
//! block / committee) or the fault count (the early-stopping protocol
//! overpowers the coalition). The measured round curves in benches E1/E2
//! follow `min{B/n + 1, f}` because of exactly these two exits.

use ba_auth::chains::{committee_bytes, CommitteeCert, MessageChain};
use ba_core::schedule::{Slot, SlotKind};
use ba_core::{AuthWrapper, AuthWrapperMsg, BitVec, UnauthWrapper, UnauthWrapperMsg};
use ba_crypto::{Pki, Signature, SigningKey};
use ba_early::{EsUnauth, EsUnauthMsg, PhaseKingMsg};
use ba_graded::gradecast::value_bytes;
use ba_graded::{AuthGcMsg, UnauthGcMsg};
use ba_sim::{Adversary, AdversaryCtx, ProcessId, Value};
use ba_unauth::{Alg5Msg, ConcMsg, CoreSetGcMsg};
use std::sync::Arc;

/// The disruptor's per-recipient value: `Some(0)` — strictly below every
/// honest proposal in the bench workloads — for even identifiers,
/// *silence* for odd ones. Selective low values split Algorithm 4's
/// minima (an all-recipients value would just unify everyone on it), and
/// the silence half keeps quorums starved on the other side.
fn split_value(to: ProcessId) -> Option<Value> {
    to.0.is_multiple_of(2).then_some(Value(0))
}

/// Locates the slot covering `round` plus the local round within it.
fn locate(slots: &[Slot], round: u64) -> Option<(&Slot, u64)> {
    slots
        .iter()
        .find(|s| s.start <= round && round < s.end)
        .map(|s| (s, round - s.start))
}

/// Worst-case adversary against the unauthenticated wrapper.
pub struct UnauthDisruptor {
    n: usize,
    t: usize,
    faulty: Vec<ProcessId>,
    slots: Vec<Slot>,
}

impl UnauthDisruptor {
    /// Creates the disruptor for the given system parameters.
    pub fn new(n: usize, t: usize, faulty: Vec<ProcessId>) -> Self {
        let schedule = UnauthWrapper::schedule(n, t);
        UnauthDisruptor {
            n,
            t,
            faulty,
            slots: schedule.slots,
        }
    }

    /// The sustained-split strategy against Algorithm 5 (see the module
    /// docs): forge the quorum thresholds of Algorithm 3 toward a high
    /// value at *odd* recipients (a pair of in-block colluders plus one
    /// honest binding-holder reaches `2k + 1` there), so odd processes
    /// exit with grade 1 and ignore conciliation (line 8), while *even*
    /// recipients are fed a bottom value through conciliation. Odd and
    /// even halves then disagree for as long as the coalition keeps a
    /// pair inside every phase's listen block.
    fn alg5_msg(&self, k: usize, local: u64, to: ProcessId, me: ProcessId) -> Option<Alg5Msg> {
        let phase = (local / 5) as u16;
        if local >= 5 * (2 * k as u64 + 1) {
            return None;
        }
        let block = 3 * k + 1;
        let listen: Vec<ProcessId> = (0..block as u32)
            .map(ProcessId)
            .chain(std::iter::once(me))
            .take(block)
            .collect();
        let high = Value(2);
        let odd = to.0 % 2 == 1;
        Some(match local % 5 {
            0 if odd => Alg5Msg::GcA {
                phase,
                inner: Arc::new(CoreSetGcMsg::Input(high)),
            },
            1 if odd => Alg5Msg::GcA {
                phase,
                inner: Arc::new(CoreSetGcMsg::Binding(high)),
            },
            2 if !odd => Alg5Msg::Conc {
                phase,
                inner: Arc::new(ConcMsg {
                    value: split_value(to)?,
                    listen,
                }),
            },
            3 if odd => Alg5Msg::GcB {
                phase,
                inner: Arc::new(CoreSetGcMsg::Input(high)),
            },
            4 if odd => Alg5Msg::GcB {
                phase,
                inner: Arc::new(CoreSetGcMsg::Binding(high)),
            },
            _ => return None,
        })
    }

    fn king_msg(&self, local: u64, to: ProcessId) -> Option<PhaseKingMsg> {
        let phase = (local / 5) as u16;
        let v = split_value(to)?;
        Some(match local % 5 {
            0 => PhaseKingMsg::Main {
                phase,
                inner: Arc::new(UnauthGcMsg::Vote(v)),
            },
            1 => PhaseKingMsg::Main {
                phase,
                inner: Arc::new(UnauthGcMsg::Echo(v)),
            },
            2 => PhaseKingMsg::King { phase, value: v },
            3 => PhaseKingMsg::Detect {
                phase,
                inner: Arc::new(UnauthGcMsg::Vote(v)),
            },
            _ => PhaseKingMsg::Detect {
                phase,
                inner: Arc::new(UnauthGcMsg::Echo(v)),
            },
        })
    }
}

impl Adversary<UnauthWrapperMsg> for UnauthDisruptor {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, UnauthWrapperMsg>) {
        let Some((slot, local)) = locate(&self.slots, ctx.round) else {
            return;
        };
        let faulty = self.faulty.clone();
        for from in faulty {
            for to in ProcessId::all(self.n) {
                let msg = match slot.kind {
                    SlotKind::Classify => (local == 0)
                        .then(|| UnauthWrapperMsg::Classify(Arc::new(BitVec::ones(self.n)))),
                    SlotKind::GcA { .. } | SlotKind::GcB { .. } | SlotKind::GcC { .. } => {
                        split_value(to).and_then(|v| match local {
                            0 => Some(UnauthWrapperMsg::Gc {
                                slot: slot.idx,
                                inner: Arc::new(UnauthGcMsg::Vote(v)),
                            }),
                            1 => Some(UnauthWrapperMsg::Gc {
                                slot: slot.idx,
                                inner: Arc::new(UnauthGcMsg::Echo(v)),
                            }),
                            _ => None,
                        })
                    }
                    SlotKind::Es { k, .. } => {
                        let inner = if EsUnauth::uses_alg5(self.n, self.t, k) {
                            self.alg5_msg(k, local, to, from)
                                .map(|m| EsUnauthMsg::Alg5(Arc::new(m)))
                        } else {
                            self.king_msg(local, to)
                                .map(|m| EsUnauthMsg::King(Arc::new(m)))
                        };
                        inner.map(|inner| UnauthWrapperMsg::Es {
                            slot: slot.idx,
                            inner: Arc::new(inner),
                        })
                    }
                    SlotKind::Class { k, .. } => {
                        self.alg5_msg(k, local, to, from)
                            .map(|m| UnauthWrapperMsg::Class {
                                slot: slot.idx,
                                inner: Arc::new(m),
                            })
                    }
                };
                if let Some(msg) = msg {
                    ctx.send(from, to, msg);
                }
            }
        }
    }
}

/// Worst-case adversary against the authenticated wrapper.
pub struct AuthDisruptor {
    n: usize,
    faulty: Vec<ProcessId>,
    keys: Vec<SigningKey>,
    slots: Vec<Slot>,
    harvested_certs: Vec<Option<CommitteeCert>>,
}

impl AuthDisruptor {
    /// Creates the disruptor; it holds the signing keys of every
    /// corrupted process (handed over at corruption time, exactly as the
    /// model allows).
    pub fn new(n: usize, t: usize, faulty: Vec<ProcessId>, pki: &Pki) -> Self {
        let keys = faulty.iter().map(|p| pki.signing_key(p.0)).collect();
        let schedule = AuthWrapper::schedule(n, t);
        AuthDisruptor {
            n,
            faulty: faulty.clone(),
            keys,
            slots: schedule.slots,
            harvested_certs: vec![None; faulty.len()],
        }
    }

    /// The classic withheld-chain attack: a length-`k+1` chain signed by
    /// `k + 1` coalition members, deliverable in the last round.
    fn withheld_chain(
        &self,
        session: u64,
        starter_idx: usize,
        k: usize,
        value: Value,
    ) -> Option<MessageChain> {
        if self.keys.len() < k + 1 {
            return None;
        }
        let starter = &self.keys[starter_idx];
        let mut chain = MessageChain::start(session, starter.id(), value, starter, None);
        for key in self
            .keys
            .iter()
            .filter(|key| key.id() != starter.id())
            .take(k)
        {
            chain = chain.extend(session, starter.id(), key, None);
        }
        (chain.len() == k + 1).then_some(chain)
    }
}

impl Adversary<AuthWrapperMsg> for AuthDisruptor {
    fn act(&mut self, ctx: &mut AdversaryCtx<'_, AuthWrapperMsg>) {
        let Some((slot, local)) = locate(&self.slots, ctx.round) else {
            return;
        };
        let slot = *slot;
        let session = u64::from(slot.idx);
        match slot.kind {
            SlotKind::Classify => {
                if local == 0 {
                    for from in self.faulty.clone() {
                        ctx.broadcast(
                            from,
                            AuthWrapperMsg::Classify(Arc::new(BitVec::ones(self.n))),
                        );
                    }
                }
            }
            SlotKind::GcA { .. } | SlotKind::GcB { .. } | SlotKind::GcC { .. } => {
                // Equivocate the own gradecast instance's input between
                // the two halves; the certified gradecast collapses those
                // instances to ⊥, denying the graded consensus any
                // quorum the honest split did not already deny.
                if local == 0 {
                    for (i, from) in self.faulty.clone().into_iter().enumerate() {
                        let key = &self.keys[i];
                        for to in ProcessId::all(self.n) {
                            let Some(v) = split_value(to) else { continue };
                            let sig = key.sign(&value_bytes(session, from.0, v));
                            let item = ba_graded::gradecast::GcastItem::Input { value: v, sig };
                            ctx.send(
                                from,
                                to,
                                AuthWrapperMsg::Gc {
                                    slot: slot.idx,
                                    inner: Arc::new(AuthGcMsg {
                                        items: vec![(from.0, item)],
                                    }),
                                },
                            );
                        }
                    }
                }
            }
            SlotKind::Es { k, .. } => {
                // Last-round release: valid length-(k+1) chains to odd
                // recipients only. Requires k+1 coalition signers, i.e.
                // exactly the f > k regime the slot-declared budget k
                // cannot yet cover.
                if local == k as u64 {
                    // Value 2 tips the odd half's plurality away from the
                    // even half's smallest-tie-break winner.
                    for (i, from) in self.faulty.clone().into_iter().enumerate() {
                        if let Some(chain) = self.withheld_chain(session, i, k, Value(2)) {
                            for to in ProcessId::all(self.n).filter(|p| p.0 % 2 == 1) {
                                ctx.send(
                                    from,
                                    to,
                                    AuthWrapperMsg::Es {
                                        slot: slot.idx,
                                        inner: Arc::new(vec![(from.0, chain.clone())]),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            SlotKind::Class { k, .. } => {
                if local == 0 {
                    // Vote for the coalition's own committee membership
                    // (and the honest prefix, to look normal).
                    for (i, from) in self.faulty.clone().into_iter().enumerate() {
                        let key = self.keys[i].clone();
                        for cand in ProcessId::all(self.n).take(2 * k + 1) {
                            let sig = key.sign(&committee_bytes(session, cand.0));
                            ctx.send(
                                from,
                                cand,
                                AuthWrapperMsg::Class {
                                    slot: slot.idx,
                                    inner: Arc::new(ba_auth::Alg7Msg::CommitteeVote(sig)),
                                },
                            );
                        }
                    }
                }
                if local == 1 {
                    // Harvest genuine certificates from the votes that
                    // just arrived.
                    for (i, from) in self.faulty.clone().into_iter().enumerate() {
                        let votes: Vec<Signature> = ctx
                            .faulty_inboxes
                            .get(&from)
                            .into_iter()
                            .flatten()
                            .filter_map(|env| match &*env.payload {
                                AuthWrapperMsg::Class { slot: s, inner } if *s == slot.idx => {
                                    match &**inner {
                                        ba_auth::Alg7Msg::CommitteeVote(sig) => Some(*sig),
                                        _ => None,
                                    }
                                }
                                _ => None,
                            })
                            .collect();
                        // t is recoverable from the schedule context: the
                        // certificate threshold is t + 1; assemble with
                        // the largest t' the votes allow.
                        let t_assumed = votes.len().saturating_sub(1);
                        self.harvested_certs[i] =
                            CommitteeCert::assemble(from.0, &votes, t_assumed.min(self.n / 2));
                    }
                }
                if local == k as u64 + 2 {
                    // Split plurality reports under genuine certificates.
                    for (i, from) in self.faulty.clone().into_iter().enumerate() {
                        if let Some(cert) = self.harvested_certs[i].clone() {
                            for to in ProcessId::all(self.n) {
                                let Some(value) = split_value(to) else {
                                    continue;
                                };
                                ctx.send(
                                    from,
                                    to,
                                    AuthWrapperMsg::Class {
                                        slot: slot.idx,
                                        inner: Arc::new(ba_auth::Alg7Msg::Plurality {
                                            value,
                                            cert: cert.clone(),
                                        }),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unauth_disruptor_crafts_slot_consistent_messages() {
        let d = UnauthDisruptor::new(16, 5, vec![ProcessId(0)]);
        // Slot 0 is classify; slot 1 is GcA with 2 rounds.
        assert!(matches!(d.slots[0].kind, SlotKind::Classify));
        assert!(matches!(d.slots[1].kind, SlotKind::GcA { .. }));
        let (slot, local) = locate(&d.slots, 1).unwrap();
        assert_eq!(slot.idx, 1);
        assert_eq!(local, 0);
    }

    #[test]
    fn withheld_chain_needs_enough_signers() {
        let pki = Pki::new(8, 3);
        let d = AuthDisruptor::new(8, 3, vec![ProcessId(5), ProcessId(6), ProcessId(7)], &pki);
        assert!(d.withheld_chain(9, 0, 2, Value(0)).is_some(), "k+1 = 3 = f");
        assert!(d.withheld_chain(9, 0, 3, Value(0)).is_none(), "k+1 = 4 > f");
        let chain = d.withheld_chain(9, 0, 2, Value(0)).unwrap();
        assert!(chain.verify(9, 5, 3, false, &pki));
    }
}
