//! Markdown table rendering for the bench harnesses, plus the canonical
//! driver comparison table.
//!
//! Every experiment harness (E1–E9) prints its results as a GitHub-style
//! markdown table so the output can be pasted directly into
//! `EXPERIMENTS.md`. [`driver_table`] renders the one-row-per-pipeline
//! family overview (resilience, prediction use, round/communication
//! shapes); because it iterates [`Pipeline::ALL`], a new protocol
//! family appears in it the moment its variant lands — the table cannot
//! rot behind the code.

use crate::experiment::Pipeline;

/// A simple column-aligned markdown table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// The canonical protocol-family comparison: one row per
/// [`Pipeline::ALL`] entry with its resilience bound, prediction use,
/// and round/communication shapes.
pub fn driver_table() -> Table {
    let mut t = Table::new(
        "protocol families",
        &[
            "pipeline",
            "resilience",
            "predictions",
            "rounds",
            "communication",
        ],
    );
    for pipeline in Pipeline::ALL {
        let driver = pipeline.driver();
        t.row([
            driver.name(),
            pipeline.resilience_shape(),
            if driver.uses_predictions() {
                "yes"
            } else {
                "ignored"
            },
            pipeline.round_shape(),
            pipeline.comm_shape(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["B", "rounds"]);
        t.row(["0", "9"]).row(["1000", "42"]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| B    | rounds |"));
        assert!(s.contains("| 1000 | 42     |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn driver_table_lists_every_pipeline_family() {
        let rendered = driver_table().render();
        for pipeline in Pipeline::ALL {
            assert!(
                rendered.contains(pipeline.name()),
                "driver table is missing {}",
                pipeline.name()
            );
        }
        assert!(rendered.contains("resilient"));
        assert!(rendered.contains("2t < n"), "auth families present");
    }
}
