//! Minimal machine-readable JSON emission for harness results.
//!
//! `serde` is outside the offline container's dependency set (see
//! `crates/shims/README.md`), so the measurement types implement the
//! tiny [`ToJson`] trait instead of deriving `serde::Serialize`. The
//! emitted shape is plain JSON objects/arrays with snake_case keys —
//! exactly what a `#[derive(Serialize)]` would produce — so downstream
//! tooling (benchmark trajectory files, dashboards) consumes it
//! unchanged if serde ever replaces this module.

/// Types that can emit themselves as one JSON value.
pub trait ToJson {
    /// Renders a complete JSON value (no trailing newline).
    fn to_json(&self) -> String;
}

/// Renders a slice of serializable items as a JSON array.
pub fn to_json_array<T: ToJson>(items: &[T]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_json());
    }
    out.push(']');
    out
}

/// Escapes a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer used by the [`ToJson`] impls.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a raw, already-serialized JSON value.
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(raw);
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(self, key: &str, v: u64) -> Self {
        let raw = v.to_string();
        self.field_raw(key, &raw)
    }

    /// Appends an optional unsigned integer field (`null` when absent).
    pub fn field_opt_u64(self, key: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.field_u64(key, v),
            None => self.field_raw(key, "null"),
        }
    }

    /// Appends an optional float field (`null` when absent).
    pub fn field_opt_f64(self, key: &str, v: Option<f64>) -> Self {
        match v {
            Some(v) => self.field_f64(key, v),
            None => self.field_raw(key, "null"),
        }
    }

    /// Appends a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn field_f64(self, key: &str, v: f64) -> Self {
        if v.is_finite() {
            let raw = format!("{v}");
            self.field_raw(key, &raw)
        } else {
            self.field_raw(key, "null")
        }
    }

    /// Appends a boolean field.
    pub fn field_bool(self, key: &str, v: bool) -> Self {
        self.field_raw(key, if v { "true" } else { "false" })
    }

    /// Appends a string field (escaped).
    pub fn field_str(self, key: &str, v: &str) -> Self {
        let raw = format!("\"{}\"", escape(v));
        self.field_raw(key, &raw)
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair(u64, &'static str);

    impl ToJson for Pair {
        fn to_json(&self) -> String {
            JsonObject::new()
                .field_u64("k", self.0)
                .field_str("s", self.1)
                .finish()
        }
    }

    #[test]
    fn objects_render_all_field_kinds() {
        let json = JsonObject::new()
            .field_u64("a", 3)
            .field_opt_u64("b", None)
            .field_f64("c", 1.5)
            .field_f64("c_bad", f64::NAN)
            .field_bool("d", false)
            .field_str("e", "x\"y\\z\n")
            .field_opt_f64("f", Some(0.5))
            .field_opt_f64("g", None)
            .finish();
        assert_eq!(
            json,
            r#"{"a":3,"b":null,"c":1.5,"c_bad":null,"d":false,"e":"x\"y\\z\n","f":0.5,"g":null}"#
        );
    }

    #[test]
    fn arrays_concatenate_items() {
        assert_eq!(to_json_array::<Pair>(&[]), "[]");
        assert_eq!(
            to_json_array(&[Pair(1, "a"), Pair(2, "b")]),
            r#"[{"k":1,"s":"a"},{"k":2,"s":"b"}]"#
        );
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\t"), "\\t");
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
