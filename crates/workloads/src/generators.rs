//! Prediction and fault-set generators.
//!
//! The theorems of the paper are parameterized by the *number* of wrong
//! prediction bits `B`; how those bits are placed decides how much damage
//! they do. Every generator here spends an exact budget (or saturates and
//! reports it), so the bench sweeps control `B` precisely.

use ba_core::prediction::PredictionMatrix;
use ba_sim::ProcessId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// How a fault set is placed among the identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultIds {
    /// The highest identifiers (last in every priority order prefix —
    /// kindest to the classification machinery).
    Tail,
    /// The lowest identifiers (inside the first listen blocks — the
    /// adversarial placement for identity-like orderings).
    Head,
    /// Evenly spread.
    Spread,
    /// Adjacent pairs aligned to the width-4 listen blocks of the
    /// `k = 1` phases (`{0,1}, {4,5}, {8,9}, …`). Two colluding members
    /// inside one block are what lets the worst-case disruptor forge
    /// grade-1 outcomes of Algorithm 3 for half the processes and keep
    /// honest values split across phases.
    Pairs,
}

/// Builds a fault set of size `f`.
pub fn faults(n: usize, f: usize, placement: FaultIds) -> BTreeSet<ProcessId> {
    assert!(f <= n);
    match placement {
        FaultIds::Tail => ((n - f)..n).map(|i| ProcessId(i as u32)).collect(),
        FaultIds::Head => (0..f).map(|i| ProcessId(i as u32)).collect(),
        FaultIds::Spread => {
            if f == 0 {
                return BTreeSet::new();
            }
            (0..f).map(|i| ProcessId(((i * n) / f) as u32)).collect()
        }
        FaultIds::Pairs => {
            let mut ids = BTreeSet::new();
            let mut base = 0usize;
            while ids.len() < f && base + 1 < n {
                ids.insert(ProcessId(base as u32));
                if ids.len() < f {
                    ids.insert(ProcessId(base as u32 + 1));
                }
                base += 4;
            }
            // Fill up from the tail if the pair pattern ran out of room.
            let mut tail = n;
            while ids.len() < f {
                tail -= 1;
                ids.insert(ProcessId(tail as u32));
            }
            ids
        }
    }
}

/// Where the wrong bits go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorPlacement {
    /// Uniformly random wrong bits across honest rows and targets.
    Uniform,
    /// Concentrated per target: spend enough bits on one process to flip
    /// its classification before moving to the next — the placement that
    /// maximizes misclassified processes per wrong bit (the paper's
    /// worst case, `k_A ≈ B / (n/2 − f)`).
    Concentrated,
    /// Only missed detections (`B_F`): faulty processes predicted honest.
    MissedFaultsOnly,
    /// Only false accusations (`B_H`): honest processes predicted faulty.
    FalseAccusationsOnly,
    /// The adversarially optimal spend: concentrate exactly
    /// `⌈(n+1)/2⌉ − f` missed-detection bits on one faulty target after
    /// another (in identifier order), so that — with the coalition
    /// voting "everyone is honest" during classification — each fully
    /// funded target becomes *trusted by every honest process* at the
    /// cheapest possible price (Observation 1 of the paper).
    TrustedFaults,
}

/// Builds a prediction matrix with exactly `budget` wrong bits (or the
/// maximum the placement admits, whichever is smaller). Returns the
/// matrix; the actual spent budget can be re-measured with
/// [`PredictionMatrix::total_errors`].
pub fn predictions_with_budget(
    n: usize,
    faulty: &BTreeSet<ProcessId>,
    budget: usize,
    placement: ErrorPlacement,
    seed: u64,
) -> PredictionMatrix {
    let mut m = PredictionMatrix::perfect(n, faulty);
    let honest: Vec<ProcessId> = ProcessId::all(n).filter(|p| !faulty.contains(p)).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_ba11);
    let mut remaining = budget;

    let flip = |m: &mut PredictionMatrix, row: ProcessId, col: usize, remaining: &mut usize| {
        if *remaining == 0 {
            return false;
        }
        let cur = m.row(row).get(col);
        m.row_mut(row).set(col, !cur);
        *remaining -= 1;
        true
    };

    match placement {
        ErrorPlacement::Uniform => {
            // Sample (row, col) pairs without repetition until the budget
            // is spent or every bit is wrong.
            let mut cells: Vec<(ProcessId, usize)> = honest
                .iter()
                .flat_map(|&r| (0..n).map(move |c| (r, c)))
                .collect();
            cells.shuffle(&mut rng);
            for (r, c) in cells {
                if remaining == 0 {
                    break;
                }
                flip(&mut m, r, c, &mut remaining);
            }
        }
        ErrorPlacement::Concentrated => {
            // Walk targets in a seed-shuffled order; for each, flip the
            // bit in every honest row (a fully-flipped target is
            // misclassified everywhere).
            let mut targets: Vec<usize> = (0..n).collect();
            targets.shuffle(&mut rng);
            'outer: for c in targets {
                for &r in &honest {
                    if remaining == 0 {
                        break 'outer;
                    }
                    flip(&mut m, r, c, &mut remaining);
                }
            }
        }
        ErrorPlacement::MissedFaultsOnly => {
            let cols: Vec<usize> = faulty.iter().map(|p| p.index()).collect();
            let mut cells: Vec<(ProcessId, usize)> = honest
                .iter()
                .flat_map(|&r| cols.iter().map(move |&c| (r, c)))
                .collect();
            cells.shuffle(&mut rng);
            for (r, c) in cells {
                if remaining == 0 {
                    break;
                }
                flip(&mut m, r, c, &mut remaining);
            }
        }
        ErrorPlacement::FalseAccusationsOnly => {
            let cols: Vec<usize> = honest.iter().map(|p| p.index()).collect();
            let mut cells: Vec<(ProcessId, usize)> = honest
                .iter()
                .flat_map(|&r| cols.iter().map(move |&c| (r, c)))
                .collect();
            cells.shuffle(&mut rng);
            for (r, c) in cells {
                if remaining == 0 {
                    break;
                }
                flip(&mut m, r, c, &mut remaining);
            }
        }
        ErrorPlacement::TrustedFaults => {
            // Observation 1: flipping a faulty target to "trusted
            // everywhere" costs ⌈(n+1)/2⌉ − f wrong honest bits when the
            // f coalition votes endorse it.
            let per_target =
                (n.div_ceil(2) + usize::from(n.is_multiple_of(2))).saturating_sub(faulty.len());
            'outer: for col in faulty.iter().map(|p| p.index()) {
                for &r in honest.iter().take(per_target) {
                    if remaining == 0 {
                        break 'outer;
                    }
                    flip(&mut m, r, col, &mut remaining);
                }
            }
        }
    }
    let _ = rng.gen::<u8>(); // keep the stream length placement-dependent
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_placements() {
        let tail = faults(10, 3, FaultIds::Tail);
        assert!(tail.contains(&ProcessId(9)) && tail.contains(&ProcessId(7)));
        let head = faults(10, 3, FaultIds::Head);
        assert!(head.contains(&ProcessId(0)) && head.contains(&ProcessId(2)));
        let spread = faults(10, 2, FaultIds::Spread);
        assert_eq!(spread.len(), 2);
        assert!(faults(5, 0, FaultIds::Spread).is_empty());
    }

    #[test]
    fn budget_is_spent_exactly() {
        let f = faults(15, 3, FaultIds::Tail);
        for placement in [
            ErrorPlacement::Uniform,
            ErrorPlacement::Concentrated,
            ErrorPlacement::MissedFaultsOnly,
            ErrorPlacement::FalseAccusationsOnly,
        ] {
            let m = predictions_with_budget(15, &f, 20, placement, 7);
            assert_eq!(
                m.total_errors(&f),
                20,
                "{placement:?} spent a different budget"
            );
        }
    }

    #[test]
    fn budget_saturates_at_capacity() {
        // MissedFaultsOnly capacity: honest_rows × f = 12 × 3 = 36.
        let f = faults(15, 3, FaultIds::Tail);
        let m = predictions_with_budget(15, &f, 1000, ErrorPlacement::MissedFaultsOnly, 7);
        let (bf, bh) = m.error_counts(&f);
        assert_eq!((bf, bh), (36, 0));
    }

    #[test]
    fn missed_faults_only_produces_pure_bf() {
        let f = faults(12, 2, FaultIds::Spread);
        let m = predictions_with_budget(12, &f, 9, ErrorPlacement::MissedFaultsOnly, 3);
        let (bf, bh) = m.error_counts(&f);
        assert_eq!((bf, bh), (9, 0));
    }

    #[test]
    fn false_accusations_only_produces_pure_bh() {
        let f = faults(12, 2, FaultIds::Spread);
        let m = predictions_with_budget(12, &f, 9, ErrorPlacement::FalseAccusationsOnly, 3);
        let (bf, bh) = m.error_counts(&f);
        assert_eq!((bf, bh), (0, 9));
    }

    #[test]
    fn deterministic_per_seed() {
        let f = faults(10, 2, FaultIds::Tail);
        let a = predictions_with_budget(10, &f, 15, ErrorPlacement::Uniform, 42);
        let b = predictions_with_budget(10, &f, 15, ErrorPlacement::Uniform, 42);
        for i in ProcessId::all(10) {
            assert_eq!(a.row(i), b.row(i));
        }
    }
}
