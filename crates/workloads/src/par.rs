//! Deterministic parallel mapping over independent work items.
//!
//! `rayon` is outside the offline container's dependency set (see
//! `crates/shims/README.md`), so the sweep harness parallelizes with a
//! scoped-thread work queue instead. The contract that matters to the
//! harness is preserved exactly: **results are returned in input
//! order**, so a parallel sweep is byte-identical to a serial one —
//! each experiment is a pure function of its config, and ordering is
//! restored by index regardless of which worker ran it.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `available_parallelism` worker
/// threads, returning results in input order.
///
/// Falls back to a plain serial map for zero/one items or when only
/// one core is available, so callers need no special casing.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..200).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map_for_uneven_work() {
        // Work items with wildly different costs still land in order.
        let items: Vec<u64> = (0..64).map(|i| (i * 37) % 11).collect();
        let serial: Vec<u64> = items.iter().map(|&x| (0..x * 1000).sum::<u64>()).collect();
        let parallel = par_map(&items, |&x| (0..x * 1000).sum::<u64>());
        assert_eq!(serial, parallel);
    }
}
