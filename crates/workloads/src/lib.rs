//! # ba-workloads — workload generation and the experiment harness
//!
//! Everything the benchmark suite and the examples need to exercise the
//! *Byzantine Agreement with Predictions* implementation:
//!
//! * [`generators`] — prediction matrices with an exact budget of `B`
//!   wrong bits under several placement strategies (the paper's analysis
//!   is parameterized by `B` alone; placement controls how adversarial
//!   the noise is), plus fault-set placement;
//! * [`adversaries`] — Byzantine strategies against the wrapper
//!   (prediction liars, replayers, crashers);
//! * [`experiment`] — a declarative experiment runner: configuration in,
//!   `(rounds, messages, agreement, validity, k_A)` out, fully
//!   deterministic per seed;
//! * [`lower_bounds`] — the paper's lower-bound formulas (Theorems 13
//!   and 14) as checkable functions;
//! * [`tables`] — markdown table rendering for the bench harnesses.

pub mod adversaries;
pub mod disruptor;
pub mod experiment;
pub mod generators;
pub mod lower_bounds;
pub mod sweep;
pub mod tables;

pub use adversaries::{ClassifyLiar, LiarStyle};
pub use disruptor::{AuthDisruptor, UnauthDisruptor};
pub use sweep::{correlation, fit_power_law, summarize, sweep_seeds, SweepSummary};
pub use experiment::{
    AdversaryKind, ExperimentConfig, ExperimentOutcome, FaultPlacement, InputPattern, Pipeline,
};
pub use generators::{faults, predictions_with_budget, ErrorPlacement};
pub use lower_bounds::{message_lower_bound, round_lower_bound};
pub use tables::Table;
