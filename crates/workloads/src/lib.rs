//! # ba-workloads — workload generation and the experiment harness
//!
//! Everything the benchmark suite and the examples need to exercise the
//! *Byzantine Agreement with Predictions* implementation:
//!
//! * [`generators`] — prediction matrices with an exact budget of `B`
//!   wrong bits under several placement strategies (the paper's analysis
//!   is parameterized by `B` alone; placement controls how adversarial
//!   the noise is), plus fault-set placement;
//! * [`adversaries`] — Byzantine strategies against the wrapper
//!   (prediction liars, replayers, crashers);
//! * [`driver`] — the [`ProtocolDriver`] trait: each protocol family
//!   (the paper's two wrapper pipelines, the prediction-free
//!   `PhaseKing`/`TruncatedDolevStrong` baselines, the
//!   communication-efficient `CommEff` pipeline, and the
//!   gracefully-degrading `Resilient` pipeline) builds a type-erased
//!   session from a shared [`SessionSpec`], so one generic engine runs
//!   them all — measuring rounds, messages, *and* bytes uniformly.
//!   This is the extension point for future pipelines;
//! * [`experiment`] — the declarative experiment runner on top of the
//!   drivers: an [`ExperimentConfig`] (built fluently via
//!   [`ExperimentConfig::builder`] or tweaked with `with_*`
//!   combinators) in, `(rounds, messages, agreement, validity, k_A)`
//!   out, fully deterministic per seed;
//! * [`sweep`] — multi-seed aggregation ([`sweep_seeds`]) and parallel
//!   multi-config grids ([`sweep_grid`]) with deterministic ordering,
//!   plus curve-fitting helpers;
//! * [`json`] — machine-readable output ([`ToJson`]) for outcomes,
//!   summaries, and grid points;
//! * [`par`] — the scoped-thread parallel map behind [`sweep_grid`];
//! * [`lower_bounds`] — the paper's lower-bound formulas (Theorems 13
//!   and 14) as checkable functions;
//! * [`tables`] — markdown table rendering for the bench harnesses.

pub mod adversaries;
pub mod disruptor;
pub mod driver;
pub mod experiment;
pub mod generators;
pub mod json;
pub mod lower_bounds;
pub mod par;
pub mod sweep;
pub mod tables;

pub use adversaries::{ClassifyLiar, LiarStyle, SignedCertEquivocator};
pub use disruptor::{AuthDisruptor, UnauthDisruptor};
pub use driver::{
    k_a_from_probes, AuthWrapperDriver, CommEffDriver, CommEffSignedDriver, PhaseKingDriver,
    ProtocolDriver, ResilientDriver, ResilientSignedDriver, SessionSpec,
    TruncatedDolevStrongDriver, UnauthWrapperDriver,
};
pub use experiment::{
    AdversaryKind, ExperimentBuilder, ExperimentConfig, ExperimentOutcome, FaultPlacement,
    InputPattern, Pipeline,
};
pub use generators::{faults, predictions_with_budget, ErrorPlacement};
pub use json::{to_json_array, ToJson};
pub use lower_bounds::{message_lower_bound, round_lower_bound};
pub use par::par_map;
pub use sweep::{
    correlation, fit_power_law, grid_to_json, summarize, sweep_grid, sweep_grid_serial,
    sweep_seeds, GridPoint, SweepGrid, SweepSummary,
};
pub use tables::{driver_table, Table};
