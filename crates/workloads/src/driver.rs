//! The `ProtocolDriver` trait: every protocol family behind one API.
//!
//! The paper's headline claim — `O(min{B/n + 1, f})` rounds, never
//! worse than a prediction-free early-stopping baseline — is a
//! comparison *across protocol families*, so the harness must be able
//! to run all of them through one code path. A [`ProtocolDriver`] knows
//! how to turn a [`SessionSpec`] (system size, fault set, prediction
//! matrix, inputs, adversary, seed) into a type-erased
//! [`ErasedSession`]; the generic engine in
//! [`crate::experiment`] then runs it and measures, identically for
//! every family.
//!
//! Eight drivers ship today, one per [`crate::experiment::Pipeline`]
//! variant:
//!
//! | driver | protocol | resilience | predictions |
//! |---|---|---|---|
//! | [`UnauthWrapperDriver`] | Algorithm 1 over §7 (Theorem 11) | `3t < n` | yes |
//! | [`AuthWrapperDriver`] | Algorithm 1 over §8 (Theorem 12) | `2t < n` | yes |
//! | [`PhaseKingDriver`] | early-stopping phase-king baseline | `3t < n` | ignored |
//! | [`TruncatedDolevStrongDriver`] | full Dolev–Strong baseline | `2t < n` | ignored |
//! | [`CommEffDriver`] | committee-sampled fast lane + phase-king fallback (Dzulfikar–Gilbert) | `3t < n` | yes |
//! | [`ResilientDriver`] | suspicion-ordered king rotation (Dallot et al.) | `3t < n` | yes |
//! | [`CommEffSignedDriver`] | signed certify certificates + echo: unconditional lane choice | `3t < n` | yes |
//! | [`ResilientSignedDriver`] | signed classification exchange: agreeing views, `t + 2` phases, no suffix | `3t < n` | yes |
//!
//! This is the extension seam for related-work pipelines (sharded and
//! batched execution modes are the open ones): a new protocol plugs
//! into every bench, example, and sweep by implementing this trait and
//! (optionally) gaining a `Pipeline` variant. Since the runner charges
//! every session its [`ba_sim::WireSize`] byte cost, each driver's
//! communication profile is measured uniformly alongside its round
//! count.
//!
//! ## Adversary mapping for drivers without a classification round
//!
//! [`AdversaryKind`] names behaviours of the *wrapper* execution model.
//! The baselines and the communication-efficient pipelines have no
//! classification round to lie in, so for them `ClassifyLiar` degrades
//! to silence (its lies have no audience). `Disruptor` maps to the
//! strongest behaviour each family admits: the schedule-aware
//! coalitions for the resilient pair
//! ([`ba_resilient::ResilientDisruptor`] /
//! [`ba_resilient::SignedResilientDisruptor`]), the full
//! signature-equivocation menu for the signed committee pipeline
//! ([`crate::adversaries::SignedCertEquivocator`]), and a 1-round
//! replay coalition for the baselines and the unsigned committee
//! pipeline — documented deviations, chosen over panicking so that
//! sweeps can hold the adversary column fixed across pipelines.

use crate::adversaries::{ClassifyLiar, SignedCertEquivocator};
use crate::experiment::{AdversaryKind, InputPattern};
use ba_commeff::{CommEff, CommEffSigned};
use ba_core::{
    AuthWrapper, AuthWrapperMsg, BitVec, MisclassificationReport, PredictionMatrix, UnauthWrapper,
    UnauthWrapperMsg,
};
use ba_crypto::{Pki, SigningKey};
use ba_early::{PhaseKing, PhaseKingOutput, TruncatedDs};
use ba_resilient::{ResilientBa, ResilientDisruptor, ResilientSigned, SignedResilientDisruptor};
use ba_sim::{
    erase, Adversary, ErasedSession, MapOutput, ProcessId, ReplayAdversary, SilentAdversary, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything a driver needs to build one session. Produced by the
/// experiment engine from an
/// [`ExperimentConfig`](crate::experiment::ExperimentConfig); shared by
/// all drivers so that the same workload is presented to every
/// protocol family.
#[derive(Clone, Debug)]
pub struct SessionSpec<'a> {
    /// System size.
    pub n: usize,
    /// Fault tolerance bound.
    pub t: usize,
    /// The corrupted identifiers (`|faulty| = f ≤ t`).
    pub faulty: &'a BTreeSet<ProcessId>,
    /// Prediction matrix (budgeted wrong bits already injected).
    /// Prediction-free drivers ignore it.
    pub matrix: &'a PredictionMatrix,
    /// Honest input pattern.
    pub inputs: InputPattern,
    /// Byzantine behaviour.
    pub adversary: AdversaryKind,
    /// Seed for PKI and adversary randomness.
    pub seed: u64,
}

impl SessionSpec<'_> {
    /// The input of the honest process in enumeration slot `slot`.
    pub fn input_for(&self, slot: usize) -> Value {
        match self.inputs {
            InputPattern::Unanimous(v) => Value(v),
            // Split inputs start at 1: the worst-case disruptor injects
            // strictly smaller values (0) selectively to split the
            // minimum-based conciliation (Algorithm 4 line 4).
            InputPattern::Split => Value(1 + (slot % 2) as u64),
            InputPattern::Distinct => Value(slot as u64 + 100),
        }
    }

    /// Honest identifiers with their enumeration slots, in id order.
    pub fn honest_slots(&self) -> impl Iterator<Item = (usize, ProcessId)> + '_ {
        ProcessId::all(self.n)
            .filter(|p| !self.faulty.contains(p))
            .enumerate()
    }

    /// The corrupted identifiers as a vector (adversary constructors).
    pub fn faulty_vec(&self) -> Vec<ProcessId> {
        self.faulty.iter().copied().collect()
    }
}

/// A protocol family runnable by the generic experiment engine.
///
/// Implementations build their honest-process map and adversary from a
/// shared [`SessionSpec`] and erase the message type behind
/// [`ErasedSession`], so one engine can run, measure, and compare any
/// protocol.
pub trait ProtocolDriver {
    /// Stable display name (bench tables, JSON output).
    fn name(&self) -> &'static str;

    /// The largest fault bound `t` this protocol tolerates at size `n`
    /// (e.g. `⌊(n−1)/3⌋` for unauthenticated quorum protocols).
    fn max_faults(&self, n: usize) -> usize;

    /// Whether the protocol consumes the prediction matrix. Drivers
    /// returning `false` are the prediction-free baselines; the engine
    /// skips their (vacuous) misclassification measurement.
    fn uses_predictions(&self) -> bool;

    /// Round budget sufficient for termination at `(n, t)`.
    fn max_rounds(&self, n: usize, t: usize) -> u64;

    /// Builds the full session — honest processes and adversary — for
    /// one experiment.
    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession>;
}

/// Converts a classification bit vector into the erased probe format.
fn bits_of(c: &BitVec) -> Vec<bool> {
    (0..c.len()).map(|i| c.get(i)).collect()
}

/// Computes the realized misclassification count `k_A` from erased
/// probes — the one measurement path shared by every
/// prediction-consuming driver (previously copy-pasted per pipeline).
pub fn k_a_from_probes(
    n: usize,
    faulty: &BTreeSet<ProcessId>,
    probes: &[(ProcessId, Vec<bool>)],
) -> usize {
    let owned: Vec<(ProcessId, BitVec)> = probes
        .iter()
        .map(|(id, bits)| (*id, BitVec::from_bools(bits)))
        .collect();
    let refs: Vec<(ProcessId, &BitVec)> = owned.iter().map(|(id, c)| (*id, c)).collect();
    MisclassificationReport::compute(n, faulty, &refs).k_a()
}

/// Theorem 11 pipeline: Algorithm 1 over the unauthenticated
/// subprotocols (`3t < n`, no signatures).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnauthWrapperDriver;

impl ProtocolDriver for UnauthWrapperDriver {
    fn name(&self) -> &'static str {
        "unauth-wrapper"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, n: usize, t: usize) -> u64 {
        UnauthWrapper::schedule(n, t).total_steps + 4
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let mut honest: BTreeMap<ProcessId, UnauthWrapper> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                UnauthWrapper::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                ),
            );
        }
        let adversary: Box<dyn Adversary<UnauthWrapperMsg>> = match spec.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => {
                Box::new(ClassifyLiar::new(spec.n, spec.faulty_vec(), style, spec.seed).unauth())
            }
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(crate::disruptor::UnauthDisruptor::new(
                spec.n,
                spec.t,
                spec.faulty_vec(),
            )),
        };
        erase(spec.n, honest, adversary, |w: &UnauthWrapper| {
            w.classification().map(bits_of)
        })
    }
}

/// Theorem 12 pipeline: Algorithm 1 over the authenticated
/// subprotocols (`2t < n`, signatures).
#[derive(Clone, Copy, Debug, Default)]
pub struct AuthWrapperDriver;

impl ProtocolDriver for AuthWrapperDriver {
    fn name(&self) -> &'static str {
        "auth-wrapper"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, n: usize, t: usize) -> u64 {
        AuthWrapper::schedule(n, t).total_steps + 4
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let pki = Arc::new(Pki::new(spec.n, spec.seed ^ 0x91c1));
        let mut honest: BTreeMap<ProcessId, AuthWrapper> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                AuthWrapper::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let adversary: Box<dyn Adversary<AuthWrapperMsg>> = match spec.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => {
                Box::new(ClassifyLiar::new(spec.n, spec.faulty_vec(), style, spec.seed).auth())
            }
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(crate::disruptor::AuthDisruptor::new(
                spec.n,
                spec.t,
                spec.faulty_vec(),
                &pki,
            )),
        };
        erase(spec.n, honest, adversary, |w: &AuthWrapper| {
            w.classification().map(bits_of)
        })
    }
}

/// Maps an [`AdversaryKind`] onto a message type the prediction-free
/// baselines understand (see the module docs for the degradation
/// rules).
fn baseline_adversary<M: Clone + 'static>(kind: AdversaryKind) -> Box<dyn Adversary<M>> {
    match kind {
        AdversaryKind::Silent | AdversaryKind::ClassifyLiar(_) => Box::new(SilentAdversary),
        AdversaryKind::Replay | AdversaryKind::Disruptor => Box::new(ReplayAdversary::new(1)),
    }
}

/// Prediction-free unauthenticated baseline: early-stopping phase-king
/// with the full `t + 2` phase budget (`3t < n`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseKingDriver;

impl ProtocolDriver for PhaseKingDriver {
    fn name(&self) -> &'static str {
        "phase-king"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        false
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        PhaseKing::rounds(PhaseKing::phases_for(t)) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        type P = MapOutput<PhaseKing, fn(&PhaseKingOutput) -> Value>;
        fn decided(o: &PhaseKingOutput) -> Value {
            o.decision.unwrap_or(o.value)
        }
        let mut honest: BTreeMap<ProcessId, P> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                MapOutput::new(
                    PhaseKing::full(id, spec.n, spec.t, spec.input_for(slot)),
                    decided as fn(&PhaseKingOutput) -> Value,
                ),
            );
        }
        let adversary = baseline_adversary(spec.adversary);
        erase(spec.n, honest, adversary, |_: &P| None)
    }
}

/// Prediction-free authenticated baseline: full Dolev–Strong
/// (`k = t`, `2t < n`).
#[derive(Clone, Copy, Debug, Default)]
pub struct TruncatedDolevStrongDriver;

impl ProtocolDriver for TruncatedDolevStrongDriver {
    fn name(&self) -> &'static str {
        "truncated-dolev-strong"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }

    fn uses_predictions(&self) -> bool {
        false
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        TruncatedDs::rounds(t) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let pki = Arc::new(Pki::new(spec.n, spec.seed ^ 0x91c1));
        let session = spec.seed ^ 0x7d5;
        let mut honest: BTreeMap<ProcessId, TruncatedDs> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                TruncatedDs::full(
                    id,
                    spec.n,
                    spec.t,
                    session,
                    spec.input_for(slot),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let adversary = baseline_adversary(spec.adversary);
        erase(spec.n, honest, adversary, |_: &TruncatedDs| None)
    }
}

/// Communication-efficient BA with predictions (Dzulfikar–Gilbert):
/// committee-sampled dissemination in a 5-round fast lane, phase-king
/// fallback when the predictions prove unreliable (`3t < n`).
///
/// Consumes the prediction matrix raw (no Algorithm 2 refinement), so
/// its probe surface — and therefore its measured `k_A` — is the
/// prediction string itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommEffDriver;

impl ProtocolDriver for CommEffDriver {
    fn name(&self) -> &'static str {
        "comm-eff"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        CommEff::rounds(t) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let mut honest: BTreeMap<ProcessId, CommEff> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                CommEff::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                ),
            );
        }
        // No classification round, no schedule: the adversary kinds
        // degrade exactly like the prediction-free baselines'.
        let adversary = baseline_adversary(spec.adversary);
        erase(spec.n, honest, adversary, |p: &CommEff| {
            Some(bits_of(p.prediction()))
        })
    }
}

/// Resilient BA with predictions (Dallot et al.): a classification
/// exchange followed by a phase king whose throne order is the
/// aggregated suspicion order, so rounds degrade *gracefully* — one
/// phase per faulty identifier the error budget promotes — instead of
/// cliff-switching between a fast lane and a fallback (`3t < n`).
///
/// This family has a real classification round, so — unlike the
/// baselines and the committee pipeline — `ClassifyLiar` attacks it
/// natively, and `Disruptor` maps to the schedule-aware
/// [`ba_resilient::ResilientDisruptor`] coalition.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilientDriver;

impl ProtocolDriver for ResilientDriver {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        ResilientBa::rounds(t) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let mut honest: BTreeMap<ProcessId, ResilientBa> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                ResilientBa::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                ),
            );
        }
        let adversary: Box<dyn Adversary<ba_resilient::ResilientMsg>> = match spec.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => {
                Box::new(ClassifyLiar::new(spec.n, spec.faulty_vec(), style, spec.seed).resilient())
            }
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => {
                Box::new(ResilientDisruptor::new(spec.n, spec.t, spec.faulty_vec()))
            }
        };
        erase(spec.n, honest, adversary, |p: &ResilientBa| {
            p.classification().map(bits_of)
        })
    }
}

/// The signing keys of the corrupted identifiers — the only keys the
/// harness ever hands an adversary (simulated-PKI unforgeability is
/// exactly this discipline; see [`ba_crypto::Pki::signing_key`]).
fn corrupted_keys(pki: &Pki, faulty: &BTreeSet<ProcessId>) -> Vec<SigningKey> {
    faulty.iter().map(|p| pki.signing_key(p.0)).collect()
}

/// Signed communication-efficient BA with predictions: the same
/// committee-sampled fast lane as [`CommEffDriver`], with signed
/// submit/report/ack traffic and a transferable, echoed certify
/// certificate — so an equivocating aggregator can no longer split the
/// fast/fallback decision (`3t < n`).
///
/// `Disruptor` maps to the full signature-equivocation menu
/// ([`SignedCertEquivocator`]: forged tags, replayed honest signatures,
/// conflicting own-key reports, withheld genuine certificates);
/// `ClassifyLiar` degrades to silence exactly as for the unsigned
/// committee pipeline (no classification round to lie in).
#[derive(Clone, Copy, Debug, Default)]
pub struct CommEffSignedDriver;

impl ProtocolDriver for CommEffSignedDriver {
    fn name(&self) -> &'static str {
        "comm-eff-signed"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        CommEffSigned::rounds(t) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let pki = Arc::new(Pki::new(spec.n, spec.seed ^ 0x91c1));
        let mut honest: BTreeMap<ProcessId, CommEffSigned> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                CommEffSigned::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let adversary: Box<dyn Adversary<ba_commeff::CommEffSignedMsg>> = match spec.adversary {
            AdversaryKind::Silent | AdversaryKind::ClassifyLiar(_) => Box::new(SilentAdversary),
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(SignedCertEquivocator::new(
                spec.n,
                spec.t,
                corrupted_keys(&pki, spec.faulty),
                Arc::clone(&pki),
            )),
        };
        erase(spec.n, honest, adversary, |p: &CommEffSigned| {
            Some(bits_of(p.prediction()))
        })
    }
}

/// Signed resilient BA with predictions: the same suspicion-ordered
/// throne schedule as [`ResilientDriver`], but the classification
/// exchange is signed and echoed, equivocators are convicted by their
/// own signatures, and the honest suspicion views therefore agree —
/// shrinking the phase budget from `2t + 3` to `t + 2` and dropping
/// the identifier-rotation suffix (`3t < n`).
///
/// `ClassifyLiar` attacks the signed exchange natively (its vectors are
/// signed with the corrupted keys); `Disruptor` maps to the signed
/// schedule-aware coalition ([`SignedResilientDisruptor`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilientSignedDriver;

impl ProtocolDriver for ResilientSignedDriver {
    fn name(&self) -> &'static str {
        "resilient-signed"
    }

    fn max_faults(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn uses_predictions(&self) -> bool {
        true
    }

    fn max_rounds(&self, _n: usize, t: usize) -> u64 {
        ResilientSigned::rounds(t) + 2
    }

    fn build(&self, spec: &SessionSpec<'_>) -> Box<dyn ErasedSession> {
        let pki = Arc::new(Pki::new(spec.n, spec.seed ^ 0x91c1));
        let mut honest: BTreeMap<ProcessId, ResilientSigned> = BTreeMap::new();
        for (slot, id) in spec.honest_slots() {
            honest.insert(
                id,
                ResilientSigned::new(
                    id,
                    spec.n,
                    spec.t,
                    spec.input_for(slot),
                    spec.matrix.row(id).clone(),
                    Arc::clone(&pki),
                    pki.signing_key(id.0),
                ),
            );
        }
        let adversary: Box<dyn Adversary<ba_resilient::ResilientSignedMsg>> = match spec.adversary {
            AdversaryKind::Silent => Box::new(SilentAdversary),
            AdversaryKind::ClassifyLiar(style) => Box::new(
                ClassifyLiar::new(spec.n, spec.faulty_vec(), style, spec.seed)
                    .resilient_signed(corrupted_keys(&pki, spec.faulty)),
            ),
            AdversaryKind::Replay => Box::new(ReplayAdversary::new(1)),
            AdversaryKind::Disruptor => Box::new(SignedResilientDisruptor::new(
                spec.n,
                spec.t,
                corrupted_keys(&pki, spec.faulty),
                Arc::clone(&pki),
            )),
        };
        erase(spec.n, honest, adversary, |p: &ResilientSigned| {
            p.classification().map(bits_of)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn spec_parts(n: usize, f: usize) -> (BTreeSet<ProcessId>, PredictionMatrix) {
        let faulty = generators::faults(n, f, generators::FaultIds::Spread);
        let matrix = PredictionMatrix::perfect(n, &faulty);
        (faulty, matrix)
    }

    fn spec<'a>(
        n: usize,
        t: usize,
        faulty: &'a BTreeSet<ProcessId>,
        matrix: &'a PredictionMatrix,
    ) -> SessionSpec<'a> {
        SessionSpec {
            n,
            t,
            faulty,
            matrix,
            inputs: InputPattern::Unanimous(6),
            adversary: AdversaryKind::Silent,
            seed: 0,
        }
    }

    #[test]
    fn every_driver_reaches_unanimous_agreement() {
        let drivers: [&dyn ProtocolDriver; 8] = [
            &UnauthWrapperDriver,
            &AuthWrapperDriver,
            &PhaseKingDriver,
            &TruncatedDolevStrongDriver,
            &CommEffDriver,
            &ResilientDriver,
            &CommEffSignedDriver,
            &ResilientSignedDriver,
        ];
        let n = 10;
        let (faulty, matrix) = spec_parts(n, 2);
        for d in drivers {
            let t = d.max_faults(n).min(3);
            let s = spec(n, t, &faulty, &matrix);
            let mut session = d.build(&s);
            let report = session.run(d.max_rounds(n, t));
            assert!(report.agreement(), "{} broke agreement", d.name());
            assert_eq!(
                report.decision(),
                Some(&Value(6)),
                "{} broke unanimity",
                d.name()
            );
        }
    }

    #[test]
    fn resilience_bounds_match_protocol_families() {
        assert_eq!(UnauthWrapperDriver.max_faults(10), 3);
        assert_eq!(PhaseKingDriver.max_faults(10), 3);
        assert_eq!(CommEffDriver.max_faults(10), 3);
        assert_eq!(ResilientDriver.max_faults(10), 3);
        assert_eq!(CommEffSignedDriver.max_faults(10), 3);
        assert_eq!(ResilientSignedDriver.max_faults(10), 3);
        assert_eq!(AuthWrapperDriver.max_faults(10), 4);
        assert_eq!(TruncatedDolevStrongDriver.max_faults(10), 4);
        assert_eq!(UnauthWrapperDriver.max_faults(0), 0);
    }

    #[test]
    fn wrapper_probes_expose_classifications_baselines_do_not() {
        let n = 10;
        let (faulty, matrix) = spec_parts(n, 2);
        let s = spec(n, 3, &faulty, &matrix);

        let mut wrapper = UnauthWrapperDriver.build(&s);
        let _ = wrapper.run(UnauthWrapperDriver.max_rounds(n, 3));
        let probes = wrapper.probes();
        assert_eq!(probes.len(), n - 2, "every honest wrapper classifies");
        assert_eq!(k_a_from_probes(n, &faulty, &probes), 0, "perfect matrix");

        let mut baseline = PhaseKingDriver.build(&s);
        let _ = baseline.run(PhaseKingDriver.max_rounds(n, 3));
        assert!(
            baseline.probes().is_empty(),
            "baselines have no classification"
        );
    }

    #[test]
    fn k_a_helper_counts_misclassified_processes_once() {
        let n = 4;
        let faulty: BTreeSet<ProcessId> = [ProcessId(3)].into_iter().collect();
        // Two honest processes misclassify the same faulty id (counted
        // once) and one honest process accuses an honest id.
        let probes = vec![
            (ProcessId(0), vec![true, true, true, true]),
            (ProcessId(1), vec![true, false, true, true]),
            (ProcessId(2), vec![true, true, true, false]),
        ];
        assert_eq!(k_a_from_probes(n, &faulty, &probes), 2);
    }
}
