//! The paper's lower bounds as checkable formulas (§10).
//!
//! * **Theorem 13** (round complexity): every deterministic BA algorithm
//!   with classification predictions has, for every `f ≤ t < n − 1`, an
//!   execution with `f` faults taking at least
//!   `min{f + 2, t + 1, ⌊B/(n−f)⌋ + 2, ⌊B/(n−t)⌋ + 1}` rounds.
//! * **Theorem 14** (message complexity): even in executions with 100%
//!   correct predictions, `Ω(n + t²)` messages are sent by honest
//!   processes — predictions cannot buy message complexity. The proof's
//!   constants: at least `⌈n/4⌉` messages overall, and `⌈t/2⌉` messages
//!   to each of `⌊t/2⌋` cut-off processes, i.e. `≥ ⌊t/2⌋·⌈t/2⌉` ≈ `t²/4`.
//!
//! These are *worst-case existential* bounds: a particular measured
//! execution may beat the formula pointwise, but the E3/E4 bench
//! harnesses compare the measured curves against them as the paper's
//! predicted shape, and this repository's algorithms must never go below
//! the Theorem 14 floor because classification alone already costs
//! `n(n−1)` messages.

/// Theorem 13's bound on rounds for parameters `(n, t, f, B)`.
pub fn round_lower_bound(n: usize, t: usize, f: usize, b: usize) -> u64 {
    assert!(f <= t && t < n, "f ≤ t < n required");
    let a = f as u64 + 2;
    let c = t as u64 + 1;
    let d = (b / (n - f)) as u64 + 2;
    let e = (b / (n - t)) as u64 + 1;
    a.min(c).min(d).min(e)
}

/// Theorem 14's bound on honest messages: `max(⌈n/4⌉, ⌊t/2⌋·⌈t/2⌉)`.
pub fn message_lower_bound(n: usize, t: usize) -> u64 {
    let linear = n.div_ceil(4) as u64;
    let quadratic = ((t / 2) * t.div_ceil(2)) as u64;
    linear.max(quadratic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_zero_faults_lower_bound_is_one() {
        // B = 0, f = 0: min{2, t+1, 2, 1} = 1.
        assert_eq!(round_lower_bound(10, 3, 0, 0), 1);
    }

    #[test]
    fn large_b_recovers_the_classic_f_plus_2() {
        // Once both prediction terms exceed f + 2 — i.e.
        // B ≥ (f+1)(n−t) and B ≥ f(n−f) — the classic early-stopping
        // bound binds.
        let (n, t, f) = (10, 3, 2);
        let b = (f + 1) * (n - t);
        assert_eq!(round_lower_bound(n, t, f, b), f as u64 + 2);
    }

    #[test]
    fn b_term_caps_the_bound_when_predictions_are_good() {
        // Small B: the ⌊B/(n−t)⌋ + 1 term dominates.
        assert_eq!(round_lower_bound(100, 30, 20, 50), 1);
        assert_eq!(round_lower_bound(100, 30, 20, 200), 3, "⌊200/70⌋+1");
    }

    #[test]
    fn bound_monotone_in_b_until_f_caps() {
        let mut last = 0;
        for b in (0..3000).step_by(100) {
            let lb = round_lower_bound(100, 30, 25, b);
            assert!(lb >= last);
            last = lb;
        }
        assert_eq!(round_lower_bound(100, 30, 25, 1_000_000), 27, "f + 2");
    }

    #[test]
    fn message_bound_shapes() {
        assert_eq!(message_lower_bound(16, 0), 4, "Ω(n) term");
        assert_eq!(message_lower_bound(16, 5), 6, "2·3");
        assert_eq!(message_lower_bound(100, 33), 16 * 17);
    }

    #[test]
    #[should_panic(expected = "f ≤ t < n")]
    fn rejects_bad_parameters() {
        let _ = round_lower_bound(10, 3, 4, 0);
    }
}
