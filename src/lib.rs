//! # ba-predictions — Byzantine Agreement with Predictions
//!
//! A production-quality Rust reproduction of *Byzantine Agreement with
//! Predictions* (Ben-David, Dzulfikar, Ellen, Gilbert — PODC 2025,
//! arXiv:2505.01793), packaged as a workspace facade.
//!
//! The paper asks: can Byzantine agreement exploit unreliable hints — an
//! `n`-bit *classification prediction* per process, guessing who is
//! faulty, produced e.g. by a network security monitor? Its answers,
//! all reproduced and measured here:
//!
//! * **Yes, for time**: agreement in `O(min{B/n + 1, f})` rounds, where
//!   `B` is the total number of wrong prediction bits and `f` the actual
//!   fault count (Theorems 11 and 12; benches E1/E2), and that bound is
//!   optimal (Theorem 13; bench E3).
//! * **No, for messages**: `Ω(n + t²)` messages remain necessary even
//!   with perfectly accurate predictions (Theorem 14; bench E4).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`ba_sim`] | deterministic synchronous simulator, rushing Byzantine adversary |
//! | [`ba_crypto`] | SHA-256, HMAC, simulated PKI (substitution S1) |
//! | [`ba_graded`] | graded consensus: 2-round unauth (S2), certified gradecast + 5-round auth (S3) |
//! | [`ba_unauth`] | Algorithms 3, 4, 5 (§7) |
//! | [`ba_auth`] | committee certificates, message chains, Algorithms 6, 7 (§8) |
//! | [`ba_early`] | early-stopping substrates (S4, S5) and prediction-free baselines |
//! | [`ba_commeff`] | communication-efficient BA with predictions (Dzulfikar–Gilbert follow-up), unsigned + signed-certify variants |
//! | [`ba_resilient`] | gracefully-degrading BA with predictions (Dallot et al. follow-up), unsigned + signed-classification variants |
//! | [`ba_core`] | predictions, Algorithm 2, `π(c)` orderings, the Algorithm 1 wrapper |
//! | [`ba_workloads`] | generators, adversary gallery, `ProtocolDriver` experiment harness, parallel sweeps, lower bounds |
//!
//! ## Execution API
//!
//! Every protocol family runs through one seam: a
//! [`Pipeline`](ba_workloads::Pipeline) names a
//! [`ProtocolDriver`](ba_workloads::ProtocolDriver), and
//! [`ExperimentConfig::run`](ba_workloads::ExperimentConfig::run)
//! builds, executes, and measures the type-erased session identically
//! for all of them: rounds, honest messages, and honest bytes
//! ([`WireSize`](ba_sim::WireSize) accounting), so communication-vs-
//! rounds trade-offs are comparable across families. Eight families
//! ship; the authoritative comparison table is rendered live by
//! [`driver_table`](ba_workloads::driver_table) (it iterates
//! `Pipeline::ALL` and the shape strings it prints, so it cannot rot —
//! run `examples/pipelines_compared.rs` to see it). A snapshot:
//!
//! | pipeline | predictions | rounds | communication |
//! |---|---|---|---|
//! | `Unauth` (Thm 11, `3t < n`) | yes | `O(min{B/n + 1, f})` | `O(f·n²)` |
//! | `Auth` (Thm 12, `2t < n`) | yes | `O(min{B/n + 1, f})` | `O(n²)` chain batches |
//! | `PhaseKing` baseline (`3t < n`) | ignored | `O(f)` | `O(f·n²)` |
//! | `TruncatedDolevStrong` baseline (`2t < n`) | ignored | `t + 1` | `Ω(n²)` chain batches |
//! | `CommEff` (Dzulfikar–Gilbert, `3t < n`) | yes | 5 fast / `O(t)` fallback | `Θ(n·f̂)` fast lane |
//! | `Resilient` (Dallot et al., `3t < n`) | yes | `O(promoted(B) + 1)`, ≤ `2t + 3` phases | `O((promoted(B) + 1)·n²)` |
//! | `CommEffSigned` (`3t < n`) | yes | 6 fast / `O(t)` fallback, uniform lane | `O(n³)` certificate echo |
//! | `ResilientSigned` (`3t < n`) | yes | `O(promoted(B) + 1)`, ≤ `t + 2` phases | `O(n³)` signed exchange |
//!
//! The two lanes of the trade-off space: `CommEff` buys *communication*
//! and pays a fallback cliff when the hints betray it; `Resilient` buys
//! *round* degradation proportional to the realized error — each faulty
//! identifier the budget promotes up its suspicion-ordered throne
//! schedule costs exactly one stalled phase — and never cliffs. Both
//! are *conditional* on faulty processes not splitting honest views;
//! their signed variants buy the condition off with
//! [`Signed`](ba_crypto::Signed) envelopes (exactly 20 bytes per
//! signature in the [`WireSize`](ba_sim::WireSize) model — see the
//! `ba_sim` wire-module docs): `CommEffSigned` makes the fast/fallback
//! choice uniform under full signature equivocation (transferable,
//! echoed certify certificates), and `ResilientSigned` makes the
//! honest suspicion views agree (echoed signed classifications,
//! equivocators convicted by their own signatures), shrinking the
//! phase budget from `2t + 3` to `t + 2` with no rotation suffix.
//! Configurations are built fluently
//! ([`ExperimentConfig::builder`](ba_workloads::ExperimentConfig::builder),
//! `with_*` combinators); multi-config comparisons run in parallel via
//! [`SweepGrid`](ba_workloads::SweepGrid) /
//! [`sweep_grid`](ba_workloads::sweep_grid) with deterministic output,
//! serializable to JSON ([`ToJson`](ba_workloads::ToJson)). New
//! protocol variants (sharded or batched execution modes) plug in by
//! implementing `ProtocolDriver`.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use ba_predictions::prelude::*;
//!
//! let outcome = ExperimentConfig::new(16, 5, 2, /* B = */ 8, Pipeline::Unauth).run();
//! assert!(outcome.agreement && outcome.validity_ok);
//! println!("decided in {:?} rounds, {} messages", outcome.rounds, outcome.messages);
//!
//! // The same workload on the prediction-free baseline it must beat:
//! let baseline = ExperimentConfig::builder()
//!     .n(16)
//!     .faults(2, FaultPlacement::Spread)
//!     .pipeline(Pipeline::PhaseKing)
//!     .build()
//!     .run();
//! assert!(baseline.agreement);
//! ```

pub use ba_auth;
pub use ba_commeff;
pub use ba_core;
pub use ba_crypto;
pub use ba_early;
pub use ba_graded;
pub use ba_resilient;
pub use ba_sim;
pub use ba_unauth;
pub use ba_workloads;

/// The most common imports for running experiments against the paper's
/// algorithms.
pub mod prelude {
    pub use ba_core::{
        AuthWrapper, BitVec, Classify, MisclassificationReport, PredictionMatrix, UnauthWrapper,
    };
    pub use ba_sim::{
        ErasedSession, ProcessId, RunReport, Runner, SilentAdversary, Value, WireSize,
    };
    pub use ba_workloads::{
        driver_table, faults, grid_to_json, message_lower_bound, predictions_with_budget,
        round_lower_bound, sweep_grid, sweep_seeds, AdversaryKind, ErrorPlacement,
        ExperimentBuilder, ExperimentConfig, ExperimentOutcome, FaultPlacement, GridPoint,
        InputPattern, LiarStyle, Pipeline, ProtocolDriver, SessionSpec, SweepGrid, SweepSummary,
        Table, ToJson,
    };
}
